//! Fidelity tests on the real host: the paper's E.2 sanity check
//! ("we profiled the emulated application and compared the reported
//! system resource consumption results"), adaptive sampling, and
//! plan-from-profile tuning.

use synapse::config::ProfilerConfig;
use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
use synapse::Profiler;
use synapse_model::{compare_profiles, io_granularity, ProfileKey, Tags};
use synapse_workloads::{PhaseOp, PhaseScript};

#[test]
fn profiling_the_emulation_reproduces_the_profile() {
    // 1. Profile a synthetic application with known demands.
    let script = PhaseScript::new(vec![
        PhaseOp::Compute { flops: 60_000_000 },
        PhaseOp::DiskWrite {
            bytes: 2 << 20,
            block: 1 << 20,
        },
        PhaseOp::Compute { flops: 60_000_000 },
    ]);
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("fidelity-app", Tags::new());
    let (app_outcome, _) = profiler
        .profile_fn(key, || script.execute().unwrap())
        .expect("profile the application");
    let app_profile = &app_outcome.profile;
    let app_cycles = app_profile.totals().cycles;
    if app_cycles == 0 {
        eprintln!("no cycles observed (very fast host?); skipping");
        return;
    }

    // 2. Emulate it while profiling the emulation itself.
    let plan = EmulationPlan {
        kernel: KernelChoice::Spin,
        emulate_network: false,
        ..Default::default()
    };
    let emulator = Emulator::new(plan);
    let key2 = ProfileKey::new("fidelity-emulation", Tags::new());
    let (emu_outcome, emu_report) = profiler
        .profile_fn(key2, || emulator.emulate(app_profile).unwrap())
        .expect("profile the emulation");

    // 3. Compare: the emulation consumed what the profile directed...
    assert_eq!(emu_report.consumed.directed_cycles, app_cycles);
    // ...and the *profiler watching the emulation* sees comparable
    // consumption ("the values are in excellent agreement" — we allow
    // a generous factor for the shared-host test environment).
    let comparison = compare_profiles(app_profile, &emu_outcome.profile);
    if let Some(cycle_err) = comparison.cycles {
        assert!(
            cycle_err < 100.0,
            "re-profiled cycles within 2x of the original: {cycle_err:.1}%"
        );
    }
}

#[test]
fn adaptive_sampling_produces_dense_startup_then_sparse_tail() {
    // 10 Hz for the first 0.3 s, then 2 Hz.
    let profiler = Profiler::new(ProfilerConfig::adaptive(0.3, 2.0));
    let key = ProfileKey::new("adaptive", Tags::new());
    let outcome = profiler
        .profile_command("/bin/sleep", &["1.2"], key)
        .expect("profile under adaptive schedule");
    let profile = &outcome.profile;
    assert!(profile.len() >= 4, "got {} samples", profile.len());
    // Early samples are 0.1 s wide, late ones 0.5 s wide.
    let first_dt = profile.samples.first().unwrap().dt;
    let last_dt = profile.samples.last().unwrap().dt;
    assert!((first_dt - 0.1).abs() < 1e-9, "startup dt {first_dt}");
    assert!((last_dt - 0.5).abs() < 1e-9, "steady dt {last_dt}");
    // Timestamps strictly increase and are consistent with dt.
    for w in profile.samples.windows(2) {
        assert!((w[0].t + w[0].dt - w[1].t).abs() < 1e-9);
    }
    // The recorded nominal rate is the steady one.
    assert_eq!(profile.sample_rate_hz, 2.0);
}

#[test]
fn plan_from_profile_adopts_profiled_granularity() {
    // Profile a writer with a distinctive block size, then derive the
    // plan: it should adopt the profiled granularity.
    let script = PhaseScript::new(vec![PhaseOp::DiskWrite {
        bytes: 1 << 20,
        block: 64 << 10,
    }]);
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("granularity", Tags::new());
    let (outcome, _) = profiler
        .profile_fn(key, || script.execute().unwrap())
        .unwrap();
    let g = io_granularity(&outcome.profile);
    let plan = EmulationPlan::from_profile(&outcome.profile);
    match g.write_block {
        Some(block) => {
            assert_eq!(plan.io_write_block, block.clamp(512, 64 << 20));
            // The profiled block size should be in the vicinity of
            // what the script used (the process also writes a little
            // elsewhere, so allow a broad band).
            assert!(block >= 1 << 10, "block {block} suspiciously small");
        }
        None => {
            // /proc io denied: plan falls back to the default.
            assert_eq!(plan.io_write_block, 1 << 20);
        }
    }
    assert!(plan.threads >= 1);
}

#[test]
fn emulation_report_totals_match_profile_demands_exactly() {
    // Accounting invariant on the real backend, with all atoms on.
    let mut profile = synapse_model::Profile::new(
        ProfileKey::new("accounting", Tags::new()),
        synapse_model::SystemInfo::default(),
        2.0,
    );
    profile.runtime = 1.5;
    for i in 0..3u64 {
        let mut s = synapse_model::Sample::at(i as f64 * 0.5, 0.5);
        s.compute.cycles = 2_000_000 * (i + 1);
        s.storage.bytes_written = 100_000 * (i + 1);
        s.storage.bytes_read = 50_000;
        s.memory.allocated = 300_000;
        s.memory.freed = if i == 2 { 900_000 } else { 0 };
        s.network.bytes_sent = 10_000;
        s.network.bytes_recv = 5_000;
        profile.push(s).unwrap();
    }
    let report = Emulator::new(EmulationPlan {
        kernel: KernelChoice::Spin,
        ..Default::default()
    })
    .emulate(&profile)
    .unwrap();
    let t = profile.totals();
    assert_eq!(report.consumed.directed_cycles, t.cycles);
    assert_eq!(report.consumed.bytes_written, t.bytes_written);
    assert_eq!(report.consumed.bytes_read, t.bytes_read);
    assert_eq!(report.consumed.mem_allocated, t.mem_allocated);
    assert_eq!(report.consumed.mem_freed, t.mem_freed);
    assert_eq!(report.consumed.net_sent, t.net_sent);
    assert_eq!(report.consumed.net_recv, t.net_recv);
}
