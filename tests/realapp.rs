//! Black-box profiling of the real mini-MD application binary
//! (`synapse-mdsim`) — the closest live analogue of the paper's
//! Gromacs runs: CPU and disk output scale with the step count, disk
//! input and memory stay constant.

use std::path::PathBuf;

use synapse::config::ProfilerConfig;
use synapse::Profiler;
use synapse_model::{ProfileKey, Tags};

/// Locate the built `synapse-mdsim` binary next to the test
/// executable; skip when absent.
fn mdsim_binary() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join("synapse-mdsim");
    candidate.exists().then_some(candidate)
}

fn profile_mdsim(steps: u64) -> Option<synapse_model::Profile> {
    let bin = mdsim_binary()?;
    let out = std::env::temp_dir().join(format!(
        "synapse-realapp-{}-{steps}.trj",
        std::process::id()
    ));
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("synapse-mdsim", Tags::new().with("steps", steps));
    let outcome = profiler
        .profile_command(
            bin.to_str().unwrap(),
            &[
                "--steps",
                &steps.to_string(),
                "--particles",
                "48",
                "--frame-interval",
                "50",
                "--out",
                out.to_str().unwrap(),
                "--quiet",
            ],
            key,
        )
        .expect("profile mdsim");
    assert_eq!(outcome.timed.exit_code, 0, "mdsim ran cleanly");
    let _ = std::fs::remove_file(out);
    Some(outcome.profile)
}

#[test]
fn mdsim_profiles_cleanly_and_scales_with_steps() {
    let Some(small) = profile_mdsim(800) else {
        eprintln!("synapse-mdsim not built; skipping");
        return;
    };
    let large = profile_mdsim(4000).unwrap();
    assert!(small.validate().is_ok());
    assert!(large.validate().is_ok());

    // Tx scales with steps (the Fig. 4 x-axis behaviour, live).
    assert!(
        large.runtime > small.runtime,
        "runtime scales: {} vs {}",
        small.runtime,
        large.runtime
    );

    // CPU consumption scales with steps.
    let cs = small.totals().cycles;
    let cl = large.totals().cycles;
    if cs > 0 {
        assert!(cl > cs, "cycles scale: {cs} vs {cl}");
    }

    // Disk output scales; roughly 5x the frames -> noticeably more
    // bytes (only checkable where /proc io is readable).
    let ws = small.totals().bytes_written;
    let wl = large.totals().bytes_written;
    if ws > 0 {
        assert!(wl > 2 * ws, "output scales: {ws} vs {wl}");
    }
}

#[test]
fn mdsim_memory_is_constant_in_steps() {
    let Some(small) = profile_mdsim(600) else {
        eprintln!("synapse-mdsim not built; skipping");
        return;
    };
    let large = profile_mdsim(3000).unwrap();
    let ms = small.totals().mem_peak;
    let ml = large.totals().mem_peak;
    assert!(ms > 0 && ml > 0, "memory observed");
    // Same particle count -> same footprint (within 50 % to absorb
    // allocator noise).
    let ratio = ml as f64 / ms as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "memory constant in steps: {ms} vs {ml}"
    );
}

#[test]
fn mdsim_profile_feeds_emulation_roundtrip() {
    use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
    let Some(profile) = profile_mdsim(1500) else {
        eprintln!("synapse-mdsim not built; skipping");
        return;
    };
    let report = Emulator::new(EmulationPlan {
        kernel: KernelChoice::Spin,
        emulate_network: false,
        ..Default::default()
    })
    .emulate(&profile)
    .expect("emulate the real profile");
    assert_eq!(report.consumed.directed_cycles, profile.totals().cycles);
    assert_eq!(
        report.consumed.bytes_written,
        profile.totals().bytes_written
    );
    assert!(report.tx > 0.0);
}
