//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use synapse_model::{
    stats, ComputeSample, MemorySample, NetworkSample, Profile, ProfileKey, Sample, StorageSample,
    Summary, SystemInfo, Tags,
};
use synapse_sim::{FsKind, FsModel, IoOp, KernelProfile, VirtualClock};
use synapse_store::{Collection, DbProfileStore, Document, DocumentDb, ProfileStore, Query};

use std::sync::Arc;

fn arb_sample(max_t: f64) -> impl Strategy<Value = Sample> {
    (
        0.0..max_t,
        0.001..2.0f64,
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(t, dt, cycles, instr, rd, wr, alloc)| Sample {
            t,
            dt,
            compute: ComputeSample {
                cycles: cycles as u64,
                instructions: instr as u64,
                stalled_frontend: (cycles / 7) as u64,
                stalled_backend: (cycles / 5) as u64,
                flops: (cycles / 2) as u64,
                threads: 1 + cycles % 8,
            },
            memory: MemorySample {
                allocated: alloc as u64,
                freed: (alloc / 2) as u64,
                rss: alloc as u64,
                peak: alloc as u64 + 1,
            },
            storage: StorageSample {
                bytes_read: rd as u64,
                bytes_written: wr as u64,
                read_ops: (rd % 1000) as u64,
                write_ops: (wr % 1000) as u64,
            },
            network: NetworkSample {
                bytes_sent: (rd % 4096) as u64,
                bytes_recv: (wr % 4096) as u64,
            },
        })
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    proptest::collection::vec(arb_sample(1000.0), 0..40).prop_map(|mut samples| {
        samples.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());
        let mut p = Profile::new(
            ProfileKey::new("prop", Tags::parse("kind=prop")),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = samples.last().map_or(0.0, |s| s.t + s.dt);
        for s in samples {
            p.push(s).expect("sorted samples push cleanly");
        }
        p
    })
}

proptest! {
    #[test]
    fn profile_json_roundtrip(p in arb_profile()) {
        let json = p.to_json().unwrap();
        let back = Profile::from_json(&json).unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn downsample_conserves_totals(p in arb_profile(), factor in 1usize..10) {
        let d = p.downsample(factor);
        prop_assert_eq!(p.totals(), d.totals());
        prop_assert!(d.len() <= p.len());
        prop_assert!(d.validate().is_ok());
    }

    #[test]
    fn db_store_roundtrips_profiles(p in arb_profile()) {
        let store = DbProfileStore::new(Arc::new(DocumentDb::new()));
        store.save(&p).unwrap();
        let got = store.load_matching(&p.key).unwrap();
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0], &p);
    }

    #[test]
    fn db_truncation_preserves_prefix(p in arb_profile(), limit in 512usize..8192) {
        let store = DbProfileStore::new(Arc::new(DocumentDb::with_limit(limit)));
        match store.save(&p) {
            Ok(report) => {
                prop_assert_eq!(report.stored_samples + report.dropped_samples, p.len());
                let got = store.load_matching(&p.key).unwrap();
                prop_assert_eq!(got[0].samples.as_slice(), &p.samples[..report.stored_samples]);
            }
            Err(_) => {
                // Even the empty shell exceeded the limit — legal for
                // tiny limits.
            }
        }
    }

    #[test]
    fn summary_bounds_hold(values in proptest::collection::vec(-1e12..1e12f64, 1..100)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.mean + 1e-6 * s.mean.abs().max(1.0));
        prop_assert!(s.mean <= s.max + 1e-6 * s.mean.abs().max(1.0));
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.ci99() >= 0.0);
    }

    #[test]
    fn welford_matches_summary(values in proptest::collection::vec(-1e6..1e6f64, 2..200)) {
        let mut w = stats::Welford::new();
        for v in &values {
            w.push(*v);
        }
        let s = Summary::of(&values).unwrap();
        prop_assert!((w.mean() - s.mean).abs() <= 1e-6 * s.mean.abs().max(1.0));
        prop_assert!((w.std() - s.std).abs() <= 1e-6 * s.std.max(1.0));
    }

    #[test]
    fn tags_display_parse_roundtrip(pairs in proptest::collection::vec(("[a-z]{1,8}", "[a-z0-9]{0,8}"), 0..8)) {
        let tags = Tags::from_pairs(pairs);
        let back = Tags::parse(&tags.to_string());
        prop_assert_eq!(tags, back);
    }

    #[test]
    fn subset_tags_always_match_superset(
        base in proptest::collection::vec(("[a-z]{1,6}", "[a-z0-9]{1,6}"), 0..6),
        extra in proptest::collection::vec(("[A-Z]{1,6}", "[a-z0-9]{1,6}"), 0..4),
    ) {
        let query = Tags::from_pairs(base.clone());
        let mut all = base;
        all.extend(extra);
        let stored = Tags::from_pairs(all);
        prop_assert!(stored.matches(&query));
    }

    #[test]
    fn kernel_consumed_cycles_invariants(
        directed in 0u64..1_000_000_000,
        unit in 1u64..10_000_000,
        overhead in 0.0..0.5f64,
    ) {
        let k = KernelProfile {
            ipc: 2.0,
            efficiency: 0.8,
            overhead_frac: overhead,
            unit_cycles: unit,
        };
        let consumed = k.consumed_cycles(directed);
        prop_assert!(consumed >= directed, "never undershoots");
        if directed > 0 {
            // Bounded by one extra unit plus the overhead fraction
            // (floating point slack of one cycle).
            let bound = ((directed + unit) as f64 * (1.0 + overhead)) as u64 + 1;
            prop_assert!(consumed <= bound, "consumed {consumed} > bound {bound}");
        }
    }

    #[test]
    fn io_time_monotone_in_bytes_and_antitone_in_block(
        bytes_a in 1u64..1_000_000_000,
        extra in 0u64..1_000_000_000,
        block_small in 512u64..65_536,
        factor in 2u64..64,
    ) {
        let fs = FsModel {
            kind: FsKind::Local,
            read_latency: 1e-5,
            write_latency: 1e-4,
            read_bandwidth: 5e8,
            write_bandwidth: 1e8,
        };
        let block_large = block_small * factor;
        // More bytes cost more.
        prop_assert!(
            fs.io_time(bytes_a + extra, block_small, IoOp::Write)
                >= fs.io_time(bytes_a, block_small, IoOp::Write)
        );
        // Larger blocks never cost more.
        prop_assert!(
            fs.io_time(bytes_a, block_large, IoOp::Write)
                <= fs.io_time(bytes_a, block_small, IoOp::Write) + 1e-12
        );
    }

    #[test]
    fn virtual_clock_is_monotone(durations in proptest::collection::vec(-1.0..10.0f64, 0..50)) {
        let mut clock = VirtualClock::new();
        let mut last = clock.now();
        for d in durations {
            clock.advance(d);
            prop_assert!(clock.now() >= last);
            last = clock.now();
        }
    }

    #[test]
    fn collection_find_returns_only_matches(ns in proptest::collection::vec(0i64..5, 1..50)) {
        let mut col = Collection::new("prop");
        for (i, n) in ns.iter().enumerate() {
            col.insert(Document {
                id: format!("d{i}"),
                body: serde_json::json!({"n": n}),
            }).unwrap();
        }
        for target in 0i64..5 {
            let q = Query::all().field("n", target);
            let found = col.find(&q);
            let expected = ns.iter().filter(|&&n| n == target).count();
            prop_assert_eq!(found.len(), expected);
            for d in found {
                prop_assert_eq!(d.body["n"].as_i64().unwrap(), target);
            }
        }
    }

    #[test]
    fn error_pct_is_symmetric_in_magnitude(a in 0.1..1e6f64, b in 0.1..1e6f64) {
        // |err(a vs b)| uses b as reference; scaling both by the same
        // factor leaves it unchanged.
        let e1 = stats::error_pct(a, b).unwrap();
        let e2 = stats::error_pct(a * 7.0, b * 7.0).unwrap();
        prop_assert!((e1 - e2).abs() < 1e-9 * e1.abs().max(1.0));
    }
}

mod sim_emulator_props {
    use proptest::prelude::*;
    use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
    use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
    use synapse_sim::{machine_by_name, MACHINE_NAMES};

    fn profile_of(cycles: Vec<u32>) -> Profile {
        let mut p = Profile::new(
            ProfileKey::new("prop-sim", Tags::new()),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = cycles.len() as f64;
        for (i, c) in cycles.iter().enumerate() {
            let mut s = Sample::at(i as f64, 1.0);
            s.compute.cycles = *c as u64 * 1000;
            s.storage.bytes_written = *c as u64;
            p.push(s).unwrap();
        }
        p
    }

    proptest! {
        #[test]
        fn simulated_tx_is_finite_positive_and_monotone_in_work(
            cycles in proptest::collection::vec(1u32..u32::MAX, 1..20),
            machine_idx in 0usize..6,
        ) {
            let machine = machine_by_name(MACHINE_NAMES[machine_idx]).unwrap();
            let emulator = Emulator::new(EmulationPlan {
                sim_startup_seconds: 0.0,
                ..Default::default()
            });
            let base = emulator.simulate(&profile_of(cycles.clone()), &machine);
            prop_assert!(base.tx.is_finite());
            prop_assert!(base.tx > 0.0);
            // Doubling every sample's demand cannot make it faster.
            let doubled: Vec<u32> = cycles.iter().map(|c| c.saturating_mul(2)).collect();
            let more = emulator.simulate(&profile_of(doubled), &machine);
            prop_assert!(more.tx >= base.tx);
        }

        #[test]
        fn merged_replay_is_never_slower(
            cycles in proptest::collection::vec(1u32..u32::MAX, 2..20),
        ) {
            // Disabling sample ordering can only increase concurrency,
            // so simulated Tx can only shrink (Fig. 2's mechanism).
            let machine = machine_by_name("thinkie").unwrap();
            let p = profile_of(cycles);
            let ordered = Emulator::new(EmulationPlan {
                sim_startup_seconds: 0.0,
                ..Default::default()
            }).simulate(&p, &machine);
            let merged = Emulator::new(EmulationPlan {
                sim_startup_seconds: 0.0,
                preserve_sample_order: false,
                ..Default::default()
            }).simulate(&p, &machine);
            prop_assert!(merged.tx <= ordered.tx + 1e-9);
            prop_assert_eq!(merged.consumed.directed_cycles, ordered.consumed.directed_cycles);
        }

        #[test]
        fn more_workers_never_slow_compute_only_replay(
            cycles in proptest::collection::vec(1_000u32..u32::MAX, 1..10),
            workers in 2u32..16,
        ) {
            let machine = machine_by_name("stampede").unwrap();
            let p = profile_of(cycles);
            let plan = |threads| EmulationPlan {
                threads,
                emulate_storage: false,
                emulate_memory: false,
                emulate_network: false,
                sim_startup_seconds: 0.0,
                ..Default::default()
            };
            let serial = Emulator::new(plan(1)).simulate(&p, &machine);
            let parallel = Emulator::new(plan(workers)).simulate(&p, &machine);
            // With zero startup cost in the plan, the per-sample
            // parallel duration is (serial/n)(1+contention) which is
            // below serial whenever contention < n-1 — true for all
            // catalog machines up to their core counts.
            prop_assert!(parallel.tx <= serial.tx + 1e-9);
        }

        #[test]
        fn c_kernel_overshoot_never_exceeds_asm_on_e3_machines(
            cycles in 1_000_000u64..100_000_000_000,
        ) {
            for name in ["comet", "supermic"] {
                let machine = machine_by_name(name).unwrap();
                let c = machine.kernel(synapse_sim::KernelClass::CMatmul).consumed_cycles(cycles);
                let asm = machine.kernel(synapse_sim::KernelClass::AsmMatmul).consumed_cycles(cycles);
                // ASM has both a smaller unit and a much larger
                // overhead; beyond one unit its consumption dominates.
                if cycles > 10_000_000 {
                    prop_assert!(c <= asm, "{name}: C {c} vs ASM {asm} for {cycles}");
                }
                prop_assert!(c >= cycles);
                prop_assert!(asm >= cycles);
            }
        }

        #[test]
        fn kernel_choice_is_pure_labeling(seed in 0u64..1000) {
            // build() returns a working kernel for every choice.
            let choices = [KernelChoice::Asm, KernelChoice::C, KernelChoice::Spin];
            let choice = &choices[(seed % 3) as usize];
            let kernel = choice.build();
            prop_assert!(kernel.unit_cycles() > 0);
            prop_assert!(!choice.name().is_empty());
        }
    }
}
