//! End-to-end tests of the `synapse` command-line binary.

use std::path::PathBuf;
use std::process::Command;

/// Locate the built `synapse` binary next to the test executable
/// (target/<profile>/synapse). Skips the test when it has not been
/// built (e.g. `cargo test -p synapse-repro` alone).
fn cli_binary() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop(); // test binary name
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join("synapse");
    candidate.exists().then_some(candidate)
}

fn run_cli(args: &[&str]) -> Option<(i32, String, String)> {
    let bin = cli_binary()?;
    let output = Command::new(bin).args(args).output().ok()?;
    Some((
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    ))
}

#[test]
fn table1_subcommand_prints_registry() {
    let Some((code, stdout, _)) = run_cli(&["table1"]) else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_eq!(code, 0);
    assert!(stdout.contains("FLOPs"));
    assert!(stdout.contains("Network"));
}

#[test]
fn machines_subcommand_lists_catalog() {
    let Some((code, stdout, _)) = run_cli(&["machines"]) else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_eq!(code, 0);
    for name in [
        "thinkie", "stampede", "archer", "supermic", "comet", "titan",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn profile_then_stats_then_emulate_through_the_binary() {
    let store = std::env::temp_dir().join(format!("synapse-cli-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let store_s = store.to_str().unwrap();

    let Some((code, stdout, stderr)) = run_cli(&[
        "profile",
        "sleep 0.15",
        "--tags",
        "via=cli",
        "--store",
        store_s,
    ]) else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_eq!(code, 0, "profile failed: {stderr}");
    assert!(stdout.contains("Tx="), "{stdout}");

    let (code, stdout, stderr) = run_cli(&[
        "stats",
        "sleep 0.15",
        "--tags",
        "via=cli",
        "--store",
        store_s,
    ])
    .unwrap();
    assert_eq!(code, 0, "stats failed: {stderr}");
    assert!(stdout.contains("1 runs"), "{stdout}");

    let (code, stdout, stderr) = run_cli(&[
        "emulate",
        "sleep 0.15",
        "--tags",
        "via=cli",
        "--kernel",
        "spin",
        "--store",
        store_s,
    ])
    .unwrap();
    assert_eq!(code, 0, "emulate failed: {stderr}");
    assert!(stdout.contains("emulated"), "{stdout}");

    let (code, stdout, _) = run_cli(&[
        "inspect",
        "sleep 0.15",
        "--tags",
        "via=cli",
        "--store",
        store_s,
    ])
    .unwrap();
    assert_eq!(code, 0);
    assert!(stdout.contains("\"runtime\""));

    let _ = std::fs::remove_dir_all(store);
}

#[test]
fn bad_invocations_exit_nonzero_with_usage() {
    let Some((code, _, stderr)) = run_cli(&["frobnicate"]) else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_ne!(code, 0);
    assert!(stderr.contains("USAGE"));
    let (code, _, stderr) = run_cli(&["emulate", "never profiled"]).unwrap();
    assert_ne!(code, 0);
    assert!(stderr.contains("error"));
}

#[test]
fn worker_subcommand_consumes_cycles() {
    let Some((code, stdout, stderr)) =
        run_cli(&["worker", "--kernel", "spin", "--cycles", "5000000"])
    else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_eq!(code, 0, "worker failed: {stderr}");
    let consumed: u64 = stdout
        .trim()
        .strip_prefix("consumed=")
        .expect("worker reports consumption")
        .parse()
        .unwrap();
    assert!(consumed >= 5_000_000);
}

#[test]
fn mpi_mode_emulation_spawns_worker_processes() {
    // Drive the MPI-analogue path directly through the emulator with
    // the CLI binary as the worker executable.
    use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
    use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
    use synapse_sim::ParallelMode;

    let Some(worker) = cli_binary() else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    let mut profile = Profile::new(
        ProfileKey::new("mpi-test", Tags::new()),
        SystemInfo::default(),
        1.0,
    );
    profile.runtime = 1.0;
    let mut s = Sample::at(0.0, 1.0);
    s.compute.cycles = 40_000_000;
    profile.push(s).unwrap();

    let plan = EmulationPlan {
        kernel: KernelChoice::Spin,
        threads: 3,
        mode: ParallelMode::Mpi,
        worker_binary: Some(worker),
        emulate_memory: false,
        emulate_storage: false,
        emulate_network: false,
        ..Default::default()
    };
    let report = Emulator::new(plan).emulate(&profile).unwrap();
    assert!(
        report.consumed.cycles >= 40_000_000,
        "workers covered the budget: {}",
        report.consumed.cycles
    );
}

#[test]
fn mpi_mode_without_worker_degrades_to_threads() {
    use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
    use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
    use synapse_sim::ParallelMode;

    let mut profile = Profile::new(
        ProfileKey::new("mpi-degrade", Tags::new()),
        SystemInfo::default(),
        1.0,
    );
    profile.runtime = 1.0;
    let mut s = Sample::at(0.0, 1.0);
    s.compute.cycles = 10_000_000;
    profile.push(s).unwrap();

    let plan = EmulationPlan {
        kernel: KernelChoice::Spin,
        threads: 2,
        mode: ParallelMode::Mpi,
        worker_binary: Some(std::path::PathBuf::from("/no/such/worker")),
        emulate_memory: false,
        emulate_storage: false,
        emulate_network: false,
        ..Default::default()
    };
    let report = Emulator::new(plan).emulate(&profile).unwrap();
    assert!(
        report.consumed.cycles >= 10_000_000,
        "thread fallback covered the budget"
    );
}

#[test]
fn campaign_plan_covers_the_ablation_example() {
    let spec = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/ablation.toml");
    let Some((code, stdout, stderr)) = run_cli(&["campaign", "plan", spec]) else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_eq!(code, 0, "campaign plan failed: {stderr}");
    assert!(stdout.contains("72 points"), "{stdout}");
    assert!(stdout.contains("3 filesystems"), "{stdout}");
    assert!(stdout.contains("3 atom sets"), "{stdout}");
    assert!(stdout.contains("2 sample orders"), "{stdout}");
    assert!(
        stdout.contains("fs=local") || stdout.contains("fs=default"),
        "{stdout}"
    );
    assert!(
        stdout.contains("order=preserve") || stdout.contains("order=shuffle"),
        "{stdout}"
    );
}

#[test]
fn serve_submit_watch_cancel_shutdown_through_the_binary() {
    // The full client/server loop against the real `synapse serve`
    // process: submit --watch streams NDJSON, an identical
    // resubmission is all cache hits, and POST /shutdown ends the
    // process cleanly (exit 0, no leak).
    let Some(bin) = cli_binary() else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    let dir = std::env::temp_dir().join(format!("synapse-it-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("sweep.toml");
    std::fs::write(
        &spec_path,
        r#"
        name = "it-serve"
        seed = 3
        machines = ["thinkie", "comet"]
        kernels = ["asm", "c"]
        atoms = ["all", "no-storage"]

        [[workloads]]
        app = "gromacs"
        steps = [10000]
        "#,
    )
    .unwrap();

    let mut child = Command::new(&bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache",
            dir.join("cache").to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn synapse serve");
    // The first stdout line announces the bound (ephemeral) address.
    // Keep the reader (and with it the pipe) alive until the process
    // exits — the server writes a farewell line on shutdown.
    use std::io::{BufRead, BufReader};
    let mut serve_stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let addr = {
        let mut line = String::new();
        serve_stdout.read_line(&mut line).unwrap();
        assert!(line.contains("listening on"), "{line}");
        line.split_whitespace()
            .find(|w| w.contains(':'))
            .expect("address in banner")
            .to_string()
    };

    let submit = |expect_hit_rate: f64| {
        let (code, stdout, stderr) = run_cli(&[
            "campaign",
            "submit",
            spec_path.to_str().unwrap(),
            "--server",
            &addr,
            "--watch",
        ])
        .unwrap();
        assert_eq!(code, 0, "submit --watch failed: {stderr}");
        let last = stdout.lines().last().unwrap();
        let summary: serde_json::Value = serde_json::from_str(last).unwrap();
        assert_eq!(summary["event"].as_str(), Some("completed"), "{stdout}");
        assert_eq!(summary["points"].as_u64(), Some(8));
        assert_eq!(summary["cache_hit_rate"].as_f64(), Some(expect_hit_rate));
        let streamed_points = stdout
            .lines()
            .filter(|l| l.contains("\"event\":\"point\""))
            .count();
        assert_eq!(streamed_points, 8, "{stdout}");
    };
    submit(0.0);
    submit(1.0);

    // Cancel against a finished job echoes its terminal status.
    let (code, stdout, _) = run_cli(&["campaign", "status", "--server", &addr]).unwrap();
    assert_eq!(code, 0);
    let listing: serde_json::Value = serde_json::from_str(stdout.trim()).unwrap();
    assert_eq!(listing["campaigns"].as_array().unwrap().len(), 2);

    // Graceful shutdown: the serve process exits 0.
    synapse_server::Client::new(addr).shutdown().unwrap();
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");
    let mut farewell = String::new();
    serve_stdout.read_line(&mut farewell).unwrap();
    assert!(farewell.contains("shut down"), "{farewell}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn campaign_run_sweeps_and_memoizes_through_the_binary() {
    // The acceptance sweep: examples/campaign.toml expands to ≥100
    // points across ≥3 machines × ≥2 kernels; a second run must serve
    // ≥90 % of points from the result cache.
    let spec = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/campaign.toml");
    let cache =
        std::env::temp_dir().join(format!("synapse-cli-campaign-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let cache_s = cache.to_str().unwrap();

    let Some((code, stdout, stderr)) = run_cli(&["campaign", "plan", spec]) else {
        eprintln!("synapse binary not built; skipping");
        return;
    };
    assert_eq!(code, 0, "campaign plan failed: {stderr}");
    assert!(stdout.contains("192 points"), "{stdout}");

    let (code, stdout, stderr) = run_cli(&["campaign", "run", spec, "--cache", cache_s]).unwrap();
    assert_eq!(code, 0, "campaign run failed: {stderr}");
    assert!(stdout.contains("192 points"), "{stdout}");
    assert!(stdout.contains("192 simulated, 0 from cache"), "{stdout}");
    assert!(stdout.contains("p50="), "aggregates rendered: {stdout}");
    assert!(
        stdout.contains("vs thinkie"),
        "reference errors rendered: {stdout}"
    );

    let (code, stdout, stderr) = run_cli(&["campaign", "run", spec, "--cache", cache_s]).unwrap();
    assert_eq!(code, 0, "cached campaign run failed: {stderr}");
    assert!(
        stdout.contains("0 simulated, 192 from cache (100% hit rate)"),
        "{stdout}"
    );

    let _ = std::fs::remove_dir_all(&cache);
}
