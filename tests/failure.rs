//! Failure injection: the toolkit must degrade cleanly when the
//! observed application crashes, vanishes, or the environment denies
//! resources.

use synapse::config::ProfilerConfig;
use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
use synapse::{api, Profiler, SynapseError};
use synapse_model::{ProfileKey, Sample, SystemInfo, Tags};
use synapse_store::{DbProfileStore, DocumentDb, FileStore, StoreError};

use std::sync::Arc;

#[test]
fn crashing_application_still_produces_a_profile() {
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("crasher", Tags::new());
    let outcome = profiler
        .profile_command(
            "/bin/sh",
            &[
                "-c",
                "i=0; while [ $i -lt 50000 ]; do i=$((i+1)); done; exit 42",
            ],
            key,
        )
        .expect("profiling a crashing app is not an error");
    assert_eq!(outcome.timed.exit_code, 42);
    assert!(outcome.profile.validate().is_ok());
    assert!(outcome.profile.runtime > 0.0);
}

#[test]
fn signal_killed_application_is_reported() {
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("suicide", Tags::new());
    let outcome = profiler
        .profile_command("/bin/sh", &["-c", "kill -KILL $$"], key)
        .expect("profiling survives the signal death");
    assert_eq!(outcome.timed.exit_code, 128 + libc::SIGKILL);
}

#[test]
fn nonexistent_binary_fails_fast() {
    let profiler = Profiler::new(ProfilerConfig::default());
    let err = profiler.profile_command("/definitely/not/here", &[], ProfileKey::default());
    assert!(err.is_err());
}

#[test]
fn instantly_exiting_application_yields_consistent_profile() {
    // The extreme race: the process is gone before the first sample.
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("true", Tags::new());
    let outcome = profiler
        .profile_command("/bin/true", &[], key)
        .expect("profiling /bin/true");
    assert_eq!(outcome.timed.exit_code, 0);
    assert!(outcome.profile.validate().is_ok());
    // At least the final full period exists.
    assert!(!outcome.profile.is_empty());
}

#[test]
fn emulation_with_unwritable_io_dir_errors_cleanly() {
    let mut profile = synapse_model::Profile::new(
        ProfileKey::new("io", Tags::new()),
        SystemInfo::default(),
        1.0,
    );
    profile.runtime = 1.0;
    let mut s = Sample::at(0.0, 1.0);
    s.storage.bytes_written = 4096;
    profile.push(s).unwrap();

    let plan = EmulationPlan {
        kernel: KernelChoice::Spin,
        io_dir: std::path::PathBuf::from("/proc/definitely-unwritable"),
        ..Default::default()
    };
    let err = Emulator::new(plan).emulate(&profile);
    assert!(matches!(err, Err(SynapseError::Io(_))));
}

#[test]
fn db_backend_with_hopeless_limit_reports_document_too_large() {
    let db = Arc::new(DocumentDb::with_limit(8));
    let store = DbProfileStore::new(db);
    let config = ProfilerConfig::with_rate(10.0);
    let err = api::profile("sleep 0.1", None, &store, &config);
    match err {
        Err(SynapseError::Store(StoreError::DocumentTooLarge { limit, .. })) => {
            assert_eq!(limit, 8);
        }
        other => panic!("expected DocumentTooLarge, got {other:?}"),
    }
}

#[test]
fn emulating_unprofiled_commands_is_a_named_error() {
    let dir = std::env::temp_dir().join(format!("synapse-fail-{}", std::process::id()));
    let store = FileStore::open(&dir).unwrap();
    let err = api::emulate("ghost command", None, &store, &EmulationPlan::default());
    match err {
        Err(SynapseError::ProfileNotFound(key)) => assert!(key.contains("ghost")),
        other => panic!("expected ProfileNotFound, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn invalid_sampling_rates_are_rejected_before_spawning() {
    let dir = std::env::temp_dir().join(format!("synapse-rate-{}", std::process::id()));
    let store = FileStore::open(&dir).unwrap();
    let config = ProfilerConfig::with_rate(-3.0);
    let err = api::profile("sleep 1", None, &store, &config);
    assert!(matches!(err, Err(SynapseError::Config(_))));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupted_profile_files_surface_as_store_errors() {
    let dir = std::env::temp_dir().join(format!("synapse-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FileStore::open(&dir).unwrap();
    let mut profile = synapse_model::Profile::new(
        ProfileKey::new("victim", Tags::new()),
        SystemInfo::default(),
        1.0,
    );
    profile.runtime = 1.0;
    let path = store.save(&profile).unwrap();
    std::fs::write(&path, "{ this is not json").unwrap();
    let err = store.load_matching(&profile.key);
    assert!(err.is_err());
    let _ = std::fs::remove_dir_all(dir);
}
