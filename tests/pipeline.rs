//! End-to-end pipeline tests on the real host: profile → store →
//! emulate, exercising every crate together.

use synapse::config::ProfilerConfig;
use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
use synapse::{api, Profiler};
use synapse_model::{ProfileKey, Tags};
use synapse_store::{DbProfileStore, DocumentDb, FileStore, ProfileStore};
use synapse_workloads::{PhaseOp, PhaseScript};

use std::sync::Arc;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("synapse-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn profile_fn_captures_synthetic_script_resources() {
    // An in-process synthetic application with known ground truth.
    let script = PhaseScript::new(vec![
        PhaseOp::Compute { flops: 40_000_000 },
        PhaseOp::DiskWrite {
            bytes: 4 << 20,
            block: 1 << 20,
        },
        PhaseOp::Compute { flops: 20_000_000 },
    ]);
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("synthetic-script", Tags::parse("case=pipeline"));
    let (outcome, report) = profiler
        .profile_fn(key, || script.execute().expect("script runs"))
        .expect("profiling works");
    assert_eq!(report.flops, 60_000_000);
    assert_eq!(report.bytes_written, 4 << 20);

    let profile = &outcome.profile;
    assert!(profile.validate().is_ok());
    assert!(profile.runtime > 0.0);
    let totals = profile.totals();
    // The CPU watcher saw the flop burn (exact cycles depend on the
    // counter backend; presence is what matters).
    assert!(totals.cycles > 0, "compute activity observed");
    // The I/O watcher saw the write — unless the container denies
    // /proc/<pid>/io, in which case it degrades to zero.
    if totals.bytes_written > 0 {
        assert!(
            totals.bytes_written >= 4 << 20,
            "write volume observed: {}",
            totals.bytes_written
        );
    }
    assert!(totals.mem_peak > 0, "memory gauge observed");
}

#[test]
fn profile_store_emulate_roundtrip_via_db_backend() {
    let db = Arc::new(DocumentDb::new());
    let store = DbProfileStore::new(db);
    let config = ProfilerConfig::with_rate(10.0);
    let outcome = api::profile("sleep 0.2", Some(Tags::parse("it=db")), &store, &config)
        .expect("profile sleep");
    assert_eq!(outcome.timed.exit_code, 0);

    let plan = EmulationPlan {
        kernel: KernelChoice::Spin,
        ..Default::default()
    };
    let report = api::emulate("sleep 0.2", Some(Tags::parse("it=db")), &store, &plan)
        .expect("emulate from db");
    assert!(report.samples >= 1);
    // A sleeping process demands almost nothing of the atoms.
    assert!(report.tx < 5.0);
}

#[test]
fn repeated_profiles_feed_statistics_and_representative_selection() {
    let dir = tmpdir("stats");
    let store = FileStore::open(&dir).unwrap();
    let config = ProfilerConfig::with_rate(10.0);
    for _ in 0..3 {
        api::profile("sleep 0.15", Some(Tags::parse("it=stats")), &store, &config)
            .expect("repeated profiling");
    }
    let key = ProfileKey::new("sleep 0.15", Tags::parse("it=stats"));
    let set = store.load_set(&key).unwrap();
    assert_eq!(set.len(), 3);
    let rt = set.runtime_summary().unwrap();
    assert!(rt.mean >= 0.14, "mean runtime {}", rt.mean);
    assert!(rt.std < 0.5, "repeated sleeps are consistent");
    let rep = store.load_representative(&key).unwrap();
    assert!((rep.runtime - rt.mean).abs() <= (rt.max - rt.min) + 1e-9);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn emulation_consumes_comparable_cpu_to_profiled_burn() {
    // Profile an in-process CPU burn, then emulate it with the spin
    // kernel: the emulation's consumed cycles must be within a factor
    // of two of what was profiled (both sides use the same calibrated
    // cycle definition).
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("burn", Tags::parse("it=cpu"));
    let (outcome, _) = profiler
        .profile_fn(key, || {
            std::hint::black_box(synapse_perf::calibration::spin_cycles(400_000_000))
        })
        .expect("profile burn");
    let profiled_cycles = outcome.profile.totals().cycles;
    assert!(profiled_cycles > 0);

    let plan = EmulationPlan {
        kernel: KernelChoice::Spin,
        emulate_memory: false,
        emulate_storage: false,
        emulate_network: false,
        ..Default::default()
    };
    let report = Emulator::new(plan).emulate(&outcome.profile).unwrap();
    assert_eq!(report.consumed.directed_cycles, profiled_cycles);
    assert!(report.consumed.cycles >= profiled_cycles);
    assert!(
        report.consumed.cycles < profiled_cycles * 2,
        "overshoot bounded: directed {profiled_cycles}, consumed {}",
        report.consumed.cycles
    );
}

#[test]
fn file_and_db_backends_agree_on_content() {
    let dir = tmpdir("agree");
    let fstore = FileStore::open(&dir).unwrap();
    let db = Arc::new(DocumentDb::new());
    let dstore = DbProfileStore::new(db);
    let config = ProfilerConfig::with_rate(10.0);

    let profiler = Profiler::new(config);
    let key = ProfileKey::new("sleep 0.1", Tags::parse("it=agree"));
    let outcome = profiler
        .profile_command("/bin/sleep", &["0.1"], key.clone())
        .unwrap();
    ProfileStore::save(&fstore, &outcome.profile).unwrap();
    ProfileStore::save(&dstore, &outcome.profile).unwrap();

    let from_file = fstore.load_representative(&key).unwrap();
    let from_db = dstore.load_representative(&key).unwrap();
    assert_eq!(from_file, from_db);
    assert_eq!(from_file, outcome.profile);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn order_preservation_affects_real_replay_structure() {
    // Build a profile with distinct per-sample demands and check the
    // ordering ablation collapses it to one sample on the real
    // backend as well.
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let key = ProfileKey::new("burst", Tags::parse("it=order"));
    let (outcome, _) = profiler
        .profile_fn(key, || {
            for _ in 0..3 {
                std::hint::black_box(synapse_perf::calibration::spin_cycles(80_000_000));
                std::thread::sleep(std::time::Duration::from_millis(120));
            }
        })
        .unwrap();
    assert!(outcome.profile.len() >= 3, "several samples collected");

    let ordered = Emulator::new(EmulationPlan {
        kernel: KernelChoice::Spin,
        ..Default::default()
    })
    .emulate(&outcome.profile)
    .unwrap();
    let merged = Emulator::new(EmulationPlan {
        kernel: KernelChoice::Spin,
        preserve_sample_order: false,
        ..Default::default()
    })
    .emulate(&outcome.profile)
    .unwrap();
    assert_eq!(merged.samples, 1);
    assert!(ordered.samples >= 3);
    assert_eq!(
        ordered.consumed.directed_cycles, merged.consumed.directed_cycles,
        "ablation changes structure, not volume"
    );
}
