//! Cross-resource integration tests: the simulated "profile once,
//! emulate anywhere" pipeline spanning synapse-workloads, synapse-sim,
//! synapse and synapse-pilot.

use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
use synapse_pilot::{PilotAgent, ProxyTask, SchedulerPolicy};
use synapse_sim::{machine_by_name, thinkie, KernelClass, Noise, MACHINE_NAMES};
use synapse_workloads::AppModel;

#[test]
fn thinkie_profile_replays_on_every_catalog_machine() {
    let app = AppModel::default();
    let profile = app.simulate_profile(&thinkie(), 1_000_000, 1.0, &mut Noise::none());
    let emulator = Emulator::new(EmulationPlan::default());
    for name in MACHINE_NAMES {
        let machine = machine_by_name(name).unwrap();
        let report = emulator.simulate(&profile, &machine);
        assert!(report.tx.is_finite() && report.tx > 0.0, "{name}");
        assert_eq!(
            report.consumed.directed_cycles,
            profile.totals().cycles,
            "{name}: every directed cycle accounted"
        );
        assert!(report.consumed.cycles >= report.consumed.directed_cycles);
        assert_eq!(report.backend, format!("sim:{name}"));
    }
}

#[test]
fn portability_directions_match_the_paper() {
    // Fig. 7's converged directions: faster-than-app on Stampede,
    // slower-than-app on Archer; near-parity on the profiling host.
    let app = AppModel::default();
    let steps = 5_000_000;
    let profile = app.simulate_profile(&thinkie(), steps, 1.0, &mut Noise::none());
    let emulator = Emulator::new(EmulationPlan::default());

    let check = |name: &str| {
        let machine = machine_by_name(name).unwrap();
        let app_tx = app.execute(&machine, steps, &mut Noise::none()).tx;
        let emu_tx = emulator.simulate(&profile, &machine).tx;
        (emu_tx - app_tx) / app_tx
    };
    assert!(
        check("thinkie").abs() < 0.05,
        "parity on the profiling host"
    );
    assert!(
        check("stampede") < -0.3,
        "emulation much faster on stampede"
    );
    assert!(check("archer") > 0.25, "emulation much slower on archer");
}

#[test]
fn kernel_choice_changes_fidelity_not_volume() {
    let app = AppModel::default();
    let machine = machine_by_name("comet").unwrap();
    let profile = app.simulate_profile(&machine, 50_000, 1.0, &mut Noise::none());
    let directed = profile.totals().cycles;

    let run = |kernel: KernelChoice| {
        let plan = EmulationPlan {
            kernel,
            emulate_storage: false,
            emulate_memory: false,
            sim_startup_seconds: 0.0,
            ..Default::default()
        };
        Emulator::new(plan).simulate(&profile, &machine)
    };
    let c = run(KernelChoice::C);
    let asm = run(KernelChoice::Asm);
    assert_eq!(c.consumed.directed_cycles, directed);
    assert_eq!(asm.consumed.directed_cycles, directed);
    // Both overshoot; C overshoots less (E.3's fidelity claim).
    let over_c = c.consumed.cycles - directed;
    let over_asm = asm.consumed.cycles - directed;
    assert!(over_c < over_asm, "C {over_c} < ASM {over_asm}");
    // IPC ordering carries into instruction counts.
    assert!(c.consumed.instructions < asm.consumed.instructions);
}

#[test]
fn malleability_tune_memory_beyond_the_application() {
    // §2.1: "we can increase the amount of memory required by the same
    // proxy application to a specific value, even if the science
    // problem ... does not require that amount".
    let app = AppModel::default();
    let machine = thinkie();
    let mut profile = app.simulate_profile(&machine, 100_000, 1.0, &mut Noise::none());
    let original_alloc = profile.totals().mem_allocated;
    // Tune: demand 10x the memory in the first sample.
    profile.samples[0].memory.allocated += original_alloc * 9;
    if let Some(last) = profile.samples.last_mut() {
        last.memory.freed += original_alloc * 9;
    }
    let report = Emulator::new(EmulationPlan {
        sim_startup_seconds: 0.0,
        ..Default::default()
    })
    .simulate(&profile, &machine);
    assert_eq!(report.consumed.mem_allocated, original_alloc * 10);
    assert_eq!(report.consumed.mem_allocated, report.consumed.mem_freed);
}

#[test]
fn pilot_workload_is_machine_sensitive() {
    // The same proxy workload finishes sooner on the faster node —
    // the cross-machine reasoning the pilot substrate enables.
    let app = AppModel::default();
    let mk_tasks = |machine: &synapse_sim::MachineModel| -> Vec<ProxyTask> {
        (0..8)
            .map(|i| {
                let profile = app.simulate_profile(machine, 1_000_000, 1.0, &mut Noise::none());
                ProxyTask::new(
                    format!("t{i}"),
                    2,
                    profile,
                    EmulationPlan {
                        sim_startup_seconds: 0.2,
                        ..Default::default()
                    },
                )
            })
            .collect()
    };
    let titan = machine_by_name("titan").unwrap();
    let supermic = machine_by_name("supermic").unwrap();
    let titan_report =
        PilotAgent::new(titan.clone(), SchedulerPolicy::Backfill).execute(&mk_tasks(&titan));
    let sm_report =
        PilotAgent::new(supermic.clone(), SchedulerPolicy::Backfill).execute(&mk_tasks(&supermic));
    assert!(
        sm_report.makespan < titan_report.makespan,
        "supermic ({}) beats titan ({})",
        sm_report.makespan,
        titan_report.makespan
    );
}

#[test]
fn application_kernel_class_is_the_profiling_baseline() {
    // Emulating with the Application "kernel" reproduces the app
    // exactly (zero overhead) — the sanity anchor of the model.
    let machine = thinkie();
    let k = machine.kernel(KernelClass::Application);
    assert_eq!(k.consumed_cycles(123_456_789), 123_456_789);
}
