//! Ensemble-toolkit scenario (use case 2.3): stages of proxy tasks
//! with varying duration and width, executed by the pilot agent.
//!
//! ```text
//! cargo run --release --example md_ensemble
//! ```
//!
//! Advanced-sampling workflows alternate wide "simulation" stages and
//! narrow "analysis" stages. With Synapse, each member is a proxy task
//! replaying a profiled MD run whose duration the developer can *tune*
//! — including durations the real science problem would never produce
//! (requirement E.3, malleability).

use synapse::emulator::EmulationPlan;
use synapse_pilot::{PilotAgent, ProxyTask, SchedulerPolicy};
use synapse_sim::{supermic, Noise};
use synapse_workloads::AppModel;

fn main() {
    let machine = supermic();
    let app = AppModel::default();
    let agent = PilotAgent::new(machine.clone(), SchedulerPolicy::Backfill);
    let mut noise = Noise::new(7, 0.02);

    println!(
        "ensemble on {} ({} cores)",
        machine.name, machine.cpu.ncores
    );
    println!();

    let mut total_makespan = 0.0;
    for (stage, (members, cores, steps)) in [
        // (ensemble members, cores each, MD steps each)
        (8usize, 2u32, 2_000_000u64), // simulation stage
        (1, 4, 500_000),              // analysis stage
        (8, 2, 4_000_000),            // longer simulation stage
        (1, 4, 500_000),              // analysis stage
    ]
    .iter()
    .enumerate()
    {
        let tasks: Vec<ProxyTask> = (0..*members)
            .map(|i| {
                // Each member gets a profile whose workload varies a
                // little (the paper: "vary the duration and number of
                // task instances between different stages").
                let steps = (*steps as f64 * (1.0 + 0.1 * (i % 3) as f64)) as u64;
                let profile = app.simulate_profile(&machine, steps, 1.0, &mut noise);
                ProxyTask::new(
                    format!("stage{stage}-member{i}"),
                    *cores,
                    profile,
                    EmulationPlan {
                        sim_startup_seconds: 0.5,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let report = agent.execute(&tasks);
        println!(
            "stage {stage}: {members:2} members × {cores} cores  \
             makespan {:8.1}s  utilization {:5.1}%  mean task {:7.1}s",
            report.makespan,
            report.utilization() * 100.0,
            report.mean_duration()
        );
        total_makespan += report.makespan;
    }
    println!();
    println!("workflow makespan (stages serialized): {total_makespan:.1}s");
}
