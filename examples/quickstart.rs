//! Quickstart: profile a real command, inspect the profile, replay it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This exercises the whole paper pipeline on the local host: the
//! black-box profiler observes a short shell workload (CPU burn plus a
//! file write), the profile is stored in a file store, and the
//! emulator replays it through the real atoms — consuming roughly the
//! same resources the original command consumed.

use synapse::api;
use synapse::config::ProfilerConfig;
use synapse::emulator::{EmulationPlan, KernelChoice};
use synapse::Profiler;
use synapse_model::{ProfileKey, Tags};
use synapse_store::FileStore;

fn main() {
    let store_dir = std::env::temp_dir().join("synapse-quickstart");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = FileStore::open(&store_dir).expect("open profile store");

    // A small real workload: burn CPU in the shell, then write 2 MiB.
    let scratch = std::env::temp_dir().join("synapse-quickstart.dat");
    // Writes happen through the shell's `echo` builtin so the watched
    // process itself issues them (like the paper, Synapse does not
    // follow child processes).
    let script = format!(
        "i=0; while [ $i -lt 200000 ]; do i=$((i+1)); done; \
         j=0; while [ $j -lt 4000 ]; do \
         echo 0123456789012345678901234567890123456789012345678901234567890123; \
         j=$((j+1)); done > {}",
        scratch.display()
    );
    // The shell script contains spaces, so use the lower-level
    // Profiler API with a prepared Command (api::profile would
    // whitespace-split the command string).
    let profiler = Profiler::new(ProfilerConfig::with_rate(10.0));
    let mut cmd = std::process::Command::new("/bin/sh");
    cmd.args(["-c", &script])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    let key = ProfileKey::new("quickstart-workload", Tags::new());
    let outcome = profiler
        .profile_spawned(cmd, key)
        .expect("profile the workload");
    store.save(&outcome.profile).expect("store profile");

    let totals = outcome.profile.totals();
    let derived = outcome.profile.derived();
    println!("== profiled ==");
    println!("  Tx            : {:.3} s", outcome.profile.runtime);
    println!("  samples       : {}", outcome.profile.len());
    println!("  cycles        : {}", totals.cycles);
    println!("  instructions  : {}", totals.instructions);
    println!("  bytes written : {}", totals.bytes_written);
    println!("  peak RSS      : {}", totals.mem_peak);
    if let Some(eff) = derived.efficiency {
        println!("  efficiency    : {eff:.3}");
    }
    if let Some(ipc) = derived.ipc {
        println!("  IPC           : {ipc:.3}");
    }

    // Replay it: same resource consumption, now synthetic.
    let plan = EmulationPlan {
        kernel: KernelChoice::Asm,
        ..Default::default()
    };
    let report = api::emulate("quickstart-workload", None, &store, &plan)
        .expect("emulate the stored profile");
    println!("== emulated ==");
    println!("  Tx            : {:.3} s", report.tx);
    println!("  samples       : {}", report.samples);
    println!("  directed cyc  : {}", report.consumed.directed_cycles);
    println!("  consumed cyc  : {}", report.consumed.cycles);
    println!("  bytes written : {}", report.consumed.bytes_written);

    let diff =
        synapse_model::stats::diff_pct(report.tx, outcome.profile.runtime).unwrap_or(f64::NAN);
    println!("== comparison ==");
    println!("  emulation Tx differs from application Tx by {diff:+.1} %");

    let _ = std::fs::remove_file(scratch);
    let _ = std::fs::remove_dir_all(store_dir);
}
