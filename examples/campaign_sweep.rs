//! Run a scenario-sweep campaign programmatically.
//!
//! The declarative twin of this example lives in
//! `examples/campaign.toml` (run it with `synapse campaign run
//! examples/campaign.toml`); here the spec is built in code, executed
//! twice against a persistent cache to show memoization, and the
//! aggregate statistics are printed.
//!
//! ```sh
//! cargo run --release --example campaign_sweep
//! ```

use synapse_repro::synapse_campaign::{run_campaign, CampaignSpec, RunConfig, WorkloadSpec};

fn main() {
    let spec = CampaignSpec::from_toml(
        r#"
        name = "example-sweep"
        seed = 2016
        machines = ["thinkie", "stampede", "supermic", "comet", "titan"]
        kernels = ["asm", "c"]
        modes = ["openmp", "mpi"]

        [[workloads]]
        app = "gromacs"
        steps = [10000, 100000, 1000000]

        [[workloads]]
        app = "amber"
        steps = [100000]
        "#,
    )
    .expect("spec parses");
    // Specs are plain data — grow an axis programmatically.
    let mut spec = spec;
    spec.workloads.push(WorkloadSpec {
        app: "gromacs".into(),
        steps: vec![5_000_000],
    });

    let cache_dir = std::env::temp_dir().join("synapse-campaign-example");
    let config = RunConfig::default();

    let first = run_campaign(&spec, &config, Some(&cache_dir)).expect("campaign runs");
    println!("{}", first.report.render_summary());
    println!(
        "first run : {} points in {:.3}s ({:.0} points/s), {} simulated",
        first.stats.points,
        first.stats.wall_secs,
        first.stats.points_per_sec(),
        first.stats.simulated,
    );

    let second = run_campaign(&spec, &config, Some(&cache_dir)).expect("campaign repeats");
    println!(
        "second run: {} points in {:.3}s ({:.0} points/s), {} simulated, {:.0}% cache hits",
        second.stats.points,
        second.stats.wall_secs,
        second.stats.points_per_sec(),
        second.stats.simulated,
        second.stats.hit_rate() * 100.0,
    );
    assert_eq!(
        first.report.to_json().expect("report serializes"),
        second.report.to_json().expect("report serializes"),
        "memoized replay reproduces the report byte-for-byte"
    );
}
