//! Middleware development with proxy tasks (use case 2.1): compare
//! pilot scheduler policies on a heterogeneous Synapse workload.
//!
//! ```text
//! cargo run --release --example pilot_scheduler
//! ```
//!
//! This is exactly what the paper motivates: tuning "the properties of
//! a single proxy application instead of refactoring multiple
//! scientific applications" to exercise a pilot agent across task
//! shapes (single-core/multi-core, short/long).

use synapse::emulator::EmulationPlan;
use synapse_pilot::{PilotAgent, ProxyTask, SchedulerPolicy};
use synapse_sim::{machine_by_name, Noise};
use synapse_workloads::AppModel;

fn main() {
    let app = AppModel::default();
    let mut noise = Noise::new(42, 0.02);

    for machine_name in ["titan", "supermic"] {
        let machine = machine_by_name(machine_name).expect("catalog machine");
        // A heterogeneous bag of proxy tasks: mixed widths and lengths.
        let mut tasks = Vec::new();
        for i in 0..24 {
            let cores = [1u32, 1, 2, 4, 8, 16][i % 6];
            let steps = [500_000u64, 2_000_000, 8_000_000][i % 3];
            let profile = app.simulate_profile(&machine, steps, 1.0, &mut noise);
            tasks.push(ProxyTask::new(
                format!("task-{i:02}"),
                cores,
                profile,
                EmulationPlan {
                    sim_startup_seconds: 0.5,
                    ..Default::default()
                },
            ));
        }

        println!("== {} ({} cores) ==", machine.name, machine.cpu.ncores);
        for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::Backfill] {
            let agent = PilotAgent::new(machine.clone(), policy);
            let report = agent.execute(&tasks);
            println!(
                "  {:<9?}: makespan {:9.1}s  utilization {:5.1}%  tasks {}",
                policy,
                report.makespan,
                report.utilization() * 100.0,
                report.tasks.len()
            );
        }
        println!();
    }
    println!("Backfill packs the heterogeneous proxy workload tighter than FIFO —");
    println!("the kind of middleware comparison Synapse proxy tasks make cheap.");
}
