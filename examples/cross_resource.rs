//! Profile once, emulate anywhere (the E.2 portability story).
//!
//! ```text
//! cargo run --release --example cross_resource
//! ```
//!
//! Profiles the Gromacs-like application on the Thinkie model and
//! replays the *same profile* on Stampede, Archer, Comet, Supermic and
//! Titan models, printing the Tx offsets the paper reports in Fig. 7
//! (emulation ~40 % faster on Stampede, ~33 % slower on Archer).

use synapse::emulator::{EmulationPlan, Emulator};
use synapse_model::stats::diff_pct;
use synapse_sim::{machine_by_name, thinkie, Noise};
use synapse_workloads::AppModel;

fn main() {
    let app = AppModel::default();
    let profiling_host = thinkie();
    let steps = 5_000_000;

    // Profile once, on the profiling host.
    let profile = app.simulate_profile(&profiling_host, steps, 1.0, &mut Noise::none());
    println!(
        "profiled 'gromacs mdrun' (steps={steps}) on {}: Tx={:.1}s, {} samples",
        profiling_host.name,
        profile.runtime,
        profile.len()
    );
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "machine", "app Tx (s)", "emu Tx (s)", "diff (%)"
    );

    // Emulate anywhere.
    let emulator = Emulator::new(EmulationPlan::default());
    for name in [
        "thinkie", "stampede", "archer", "comet", "supermic", "titan",
    ] {
        let machine = machine_by_name(name).expect("catalog machine");
        // What the *application* would do on that machine (ground truth).
        let app_run = app.execute(&machine, steps, &mut Noise::none());
        // What the emulation of the thinkie profile does there.
        let emu = emulator.simulate(&profile, &machine);
        let diff = diff_pct(emu.tx, app_run.tx).unwrap_or(f64::NAN);
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>+10.1}",
            name, app_run.tx, emu.tx, diff
        );
    }
    println!();
    println!("(negative diff: emulation faster than the application, as on Stampede;");
    println!(" positive: slower, as on Archer — compare the paper's Fig. 7)");
}
