//! I/O malleability (E.5): tune filesystem and block size of an
//! emulation, on models and for real.
//!
//! ```text
//! cargo run --release --example io_tuning
//! ```
//!
//! First sweeps the simulated filesystems of Titan and Supermic across
//! block sizes (the paper's Fig. 15 axes), then runs a small *real*
//! block-size sweep through the storage atom on this host's temp
//! filesystem.

use synapse_atoms::StorageAtom;
use synapse_sim::{machine_by_name, FsKind, IoOp};

fn main() {
    let bytes: u64 = 64 << 20; // 64 MiB workload
    let blocks: [u64; 5] = [4 << 10, 64 << 10, 1 << 20, 4 << 20, 16 << 20];

    println!("simulated I/O time (s) for {} MiB:", bytes >> 20);
    println!(
        "{:<10} {:<8} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "machine", "fs", "op", "4KiB", "64KiB", "1MiB", "4MiB", "16MiB"
    );
    for machine_name in ["titan", "supermic"] {
        let machine = machine_by_name(machine_name).expect("catalog machine");
        for fs in [FsKind::Local, FsKind::Lustre] {
            if machine.fs(fs).is_none() {
                continue;
            }
            for op in [IoOp::Read, IoOp::Write] {
                let times: Vec<String> = blocks
                    .iter()
                    .map(|&b| format!("{:10.3}", machine.io_time(bytes, b, op, fs)))
                    .collect();
                println!(
                    "{:<10} {:<8} {:<6} {}",
                    machine.name,
                    fs.name(),
                    if op == IoOp::Read { "read" } else { "write" },
                    times.join(" ")
                );
            }
        }
    }

    // A small real sweep on this host (8 MiB so it stays quick).
    println!();
    println!("real write throughput on this host (8 MiB through the storage atom):");
    let real_bytes: u64 = 8 << 20;
    for &block in &blocks {
        let dir = std::env::temp_dir().join("synapse-io-tuning");
        let mut atom =
            StorageAtom::with_config(&dir, block, block, 64 << 20).expect("storage atom");
        let report = atom.write(real_bytes).expect("write sweep");
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        println!(
            "  block {:>9}: {:>8.1} MiB/s ({} ops)",
            format!("{} KiB", block >> 10),
            real_bytes as f64 / (1 << 20) as f64 / secs,
            report.operations
        );
        atom.cleanup();
    }
    println!();
    println!("Small blocks pay per-operation latency — the Fig. 15 mechanism.");
}
