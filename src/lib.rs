#![forbid(unsafe_code)]
//! Umbrella crate for the Synapse reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can
//! use one dependency. Downstream users would normally depend on the
//! individual crates (`synapse`, `synapse-sim`, ...) directly.

pub use synapse;
pub use synapse_atoms;
pub use synapse_campaign;
pub use synapse_model;
pub use synapse_perf;
pub use synapse_pilot;
pub use synapse_proc;
pub use synapse_sim;
pub use synapse_store;
pub use synapse_workloads;
