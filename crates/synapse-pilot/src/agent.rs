//! The pilot agent: core slots plus a scheduler, running in virtual
//! time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use synapse_sim::MachineModel;

use crate::report::{ScheduleReport, TaskRecord};
use crate::task::ProxyTask;

/// Scheduling policy of the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict arrival order: a task that does not fit blocks the queue.
    Fifo,
    /// Arrival order with backfill: later tasks may start early when
    /// they fit into currently free cores.
    Backfill,
}

/// A node-local pilot agent executing proxy tasks on a machine model.
pub struct PilotAgent {
    machine: MachineModel,
    policy: SchedulerPolicy,
}

/// Totally-ordered f64 end-times for the event heap.
#[derive(PartialEq)]
struct EndEvent {
    time: f64,
    cores: u32,
}

impl Eq for EndEvent {}

impl PartialOrd for EndEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EndEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.cores.cmp(&other.cores))
    }
}

impl PilotAgent {
    /// An agent occupying one full node of `machine`.
    pub fn new(machine: MachineModel, policy: SchedulerPolicy) -> Self {
        PilotAgent { machine, policy }
    }

    /// The machine the agent runs on.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Execute a workload; returns the schedule.
    ///
    /// Virtual-time event loop: tasks start when enough cores are
    /// free; under [`SchedulerPolicy::Backfill`] the scheduler scans
    /// past a blocked head-of-queue task for smaller ones that fit.
    pub fn execute(&self, tasks: &[ProxyTask]) -> ScheduleReport {
        let total_cores = self.machine.cpu.ncores;
        let mut pending: Vec<(usize, &ProxyTask)> = tasks.iter().enumerate().collect();
        let mut running: BinaryHeap<Reverse<EndEvent>> = BinaryHeap::new();
        let mut free = total_cores;
        let mut now = 0.0f64;
        let mut records: Vec<TaskRecord> = Vec::with_capacity(tasks.len());

        while !pending.is_empty() || !running.is_empty() {
            // Start everything that fits under the policy.
            let mut started = Vec::new();
            for (slot, (_, task)) in pending.iter().enumerate() {
                let cores = task.cores.min(total_cores);
                if cores <= free {
                    let duration = task.duration_on(&self.machine);
                    records.push(TaskRecord {
                        id: task.id.clone(),
                        cores,
                        start: now,
                        end: now + duration,
                    });
                    running.push(Reverse(EndEvent {
                        time: now + duration,
                        cores,
                    }));
                    free -= cores;
                    started.push(slot);
                    if free == 0 {
                        break;
                    }
                } else if self.policy == SchedulerPolicy::Fifo {
                    break; // FIFO: blocked head blocks everyone
                }
            }
            for slot in started.into_iter().rev() {
                pending.remove(slot);
            }
            // Advance time to the next completion.
            if let Some(Reverse(event)) = running.pop() {
                now = now.max(event.time);
                free += event.cores;
                // Drain every completion at the same instant.
                while let Some(Reverse(next)) = running.peek() {
                    if next.time <= now {
                        free += next.cores;
                        running.pop();
                    } else {
                        break;
                    }
                }
            } else if !pending.is_empty() {
                // Nothing running and nothing fits: impossible since
                // requests are clamped to the node size; defensive
                // break to avoid an infinite loop on malformed input.
                break;
            }
        }

        records.sort_by(|a, b| a.end.partial_cmp(&b.end).unwrap());
        let makespan = records.last().map_or(0.0, |r| r.end);
        ScheduleReport {
            tasks: records,
            total_cores,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse::emulator::EmulationPlan;
    use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
    use synapse_sim::titan;

    fn profile(cycles: u64) -> Profile {
        let mut p = Profile::new(
            ProfileKey::new("task", Tags::new()),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = 1.0;
        let mut s = Sample::at(0.0, 1.0);
        s.compute.cycles = cycles;
        p.push(s).unwrap();
        p
    }

    fn task(id: &str, cores: u32, cycles: u64) -> ProxyTask {
        let plan = EmulationPlan {
            sim_startup_seconds: 0.1,
            ..Default::default()
        };
        ProxyTask::new(id, cores, profile(cycles), plan)
    }

    #[test]
    fn single_task_runs_alone() {
        let agent = PilotAgent::new(titan(), SchedulerPolicy::Fifo);
        let report = agent.execute(&[task("only", 4, 10_000_000_000)]);
        assert_eq!(report.tasks.len(), 1);
        assert!(report.makespan > 0.0);
        assert_eq!(report.tasks[0].start, 0.0);
    }

    #[test]
    fn parallel_tasks_share_the_node() {
        let agent = PilotAgent::new(titan(), SchedulerPolicy::Fifo);
        // Titan has 16 cores: four 4-core tasks run concurrently.
        let tasks: Vec<ProxyTask> = (0..4)
            .map(|i| task(&format!("t{i}"), 4, 10_000_000_000))
            .collect();
        let report = agent.execute(&tasks);
        assert_eq!(report.tasks.len(), 4);
        // All started at 0 (they fit together).
        assert!(report.tasks.iter().all(|t| t.start == 0.0));
        assert!(report.utilization() > 0.9);
    }

    #[test]
    fn oversubscription_serializes() {
        let agent = PilotAgent::new(titan(), SchedulerPolicy::Fifo);
        // Two 16-core tasks cannot overlap on a 16-core node.
        let tasks = [
            task("first", 16, 10_000_000_000),
            task("second", 16, 10_000_000_000),
        ];
        let report = agent.execute(&tasks);
        let first = report.tasks.iter().find(|t| t.id == "first").unwrap();
        let second = report.tasks.iter().find(|t| t.id == "second").unwrap();
        assert!(second.start >= first.end - 1e-9);
    }

    #[test]
    fn backfill_reduces_makespan_vs_fifo() {
        // Head-of-queue: a 16-core task after a 12-core task; FIFO
        // blocks the small 4-core task behind it, backfill slots it in.
        let workload = [
            task("wide", 12, 40_000_000_000),
            task("full", 16, 40_000_000_000),
            task("small", 4, 40_000_000_000),
        ];
        let fifo = PilotAgent::new(titan(), SchedulerPolicy::Fifo).execute(&workload);
        let bf = PilotAgent::new(titan(), SchedulerPolicy::Backfill).execute(&workload);
        assert!(
            bf.makespan < fifo.makespan - 1e-9,
            "backfill {} vs fifo {}",
            bf.makespan,
            fifo.makespan
        );
        // Both ran everything.
        assert_eq!(fifo.tasks.len(), 3);
        assert_eq!(bf.tasks.len(), 3);
    }

    #[test]
    fn requests_wider_than_node_are_clamped() {
        let agent = PilotAgent::new(titan(), SchedulerPolicy::Fifo);
        let report = agent.execute(&[task("huge", 64, 1_000_000_000)]);
        assert_eq!(report.tasks.len(), 1);
        assert_eq!(report.tasks[0].cores, 16);
    }

    #[test]
    fn empty_workload_is_empty_report() {
        let agent = PilotAgent::new(titan(), SchedulerPolicy::Backfill);
        let report = agent.execute(&[]);
        assert!(report.tasks.is_empty());
        assert_eq!(report.makespan, 0.0);
    }

    #[test]
    fn heterogeneous_workload_utilization_is_positive() {
        // Use case 2.3: ensemble stages with varying durations/widths.
        let agent = PilotAgent::new(titan(), SchedulerPolicy::Backfill);
        let tasks: Vec<ProxyTask> = (0..12)
            .map(|i| {
                task(
                    &format!("member-{i}"),
                    1 + (i % 4) as u32,
                    2_000_000_000 * (1 + i % 3),
                )
            })
            .collect();
        let report = agent.execute(&tasks);
        assert_eq!(report.tasks.len(), 12);
        assert!(report.utilization() > 0.3);
        assert!(report.utilization() <= 1.0);
    }
}
