//! Proxy tasks: units of work the pilot agent schedules.

use synapse::emulator::{EmulationPlan, Emulator};
use synapse_model::Profile;
use synapse_sim::MachineModel;

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting in the agent queue.
    Pending,
    /// Executing on some cores.
    Running,
    /// Finished.
    Done,
}

/// A Synapse proxy task: a profile replayed with a plan, requesting a
/// number of cores on the pilot's node.
#[derive(Clone)]
pub struct ProxyTask {
    /// Task identifier (unique within a workload).
    pub id: String,
    /// Cores the task occupies while running.
    pub cores: u32,
    /// The profile the task replays.
    pub profile: Profile,
    /// How the profile is replayed (kernel, parallelism, I/O tuning).
    pub plan: EmulationPlan,
}

impl ProxyTask {
    /// Create a task.
    pub fn new(id: impl Into<String>, cores: u32, profile: Profile, plan: EmulationPlan) -> Self {
        ProxyTask {
            id: id.into(),
            cores: cores.max(1),
            profile,
            plan,
        }
    }

    /// The task's execution time on a machine model: the simulated
    /// emulation Tx with the task's plan (threads follow the core
    /// request, matching how a pilot launches multi-core tasks).
    pub fn duration_on(&self, machine: &MachineModel) -> f64 {
        let mut plan = self.plan.clone();
        plan.threads = self.cores;
        Emulator::new(plan).simulate(&self.profile, machine).tx
    }
}

impl std::fmt::Debug for ProxyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyTask")
            .field("id", &self.id)
            .field("cores", &self.cores)
            .field("samples", &self.profile.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::{ProfileKey, Sample, SystemInfo, Tags};
    use synapse_sim::thinkie;

    fn profile(cycles: u64) -> Profile {
        let mut p = Profile::new(
            ProfileKey::new("task", Tags::new()),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = 1.0;
        let mut s = Sample::at(0.0, 1.0);
        s.compute.cycles = cycles;
        p.push(s).unwrap();
        p
    }

    #[test]
    fn duration_scales_with_work() {
        let small = ProxyTask::new("s", 1, profile(1_000_000_000), EmulationPlan::default());
        let large = ProxyTask::new("l", 1, profile(20_000_000_000), EmulationPlan::default());
        let m = thinkie();
        assert!(large.duration_on(&m) > small.duration_on(&m));
    }

    #[test]
    fn more_cores_shorten_compute_heavy_tasks() {
        let t1 = ProxyTask::new("a", 1, profile(50_000_000_000), EmulationPlan::default());
        let t4 = ProxyTask::new("b", 4, profile(50_000_000_000), EmulationPlan::default());
        let m = thinkie();
        assert!(t4.duration_on(&m) < t1.duration_on(&m));
    }

    #[test]
    fn core_request_clamps_to_one() {
        let t = ProxyTask::new("z", 0, profile(1), EmulationPlan::default());
        assert_eq!(t.cores, 1);
    }
}
