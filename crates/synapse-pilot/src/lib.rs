#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! A miniature pilot-job agent executing Synapse proxy tasks.
//!
//! Use case 2.1 of the paper: RADICAL-Pilot's agent must be engineered
//! for "optimal resource utilization while maintaining full
//! generality" across task shapes — and Synapse proxy tasks are the
//! tool for exercising it without deploying real scientific codes.
//! This crate provides that downstream consumer: a node-local pilot
//! agent with core slots, a FIFO/backfill scheduler, and tasks whose
//! runtimes come from emulating Synapse profiles on a machine model.
//!
//! The agent runs in virtual time, so middleware experiments
//! (scheduler policies, task heterogeneity, pilot sizing) execute in
//! microseconds regardless of the workload's nominal hours.

pub mod agent;
pub mod report;
pub mod skeleton;
pub mod task;

pub use agent::{PilotAgent, SchedulerPolicy};
pub use report::{ScheduleReport, TaskRecord};
pub use skeleton::{Skeleton, SkeletonError};
pub use task::{ProxyTask, TaskState};
