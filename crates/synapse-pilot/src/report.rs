//! Schedule reports: what the pilot agent did with a workload.

/// Execution record of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Task id.
    pub id: String,
    /// Cores occupied.
    pub cores: u32,
    /// Virtual start time (seconds since agent start).
    pub start: f64,
    /// Virtual end time.
    pub end: f64,
}

impl TaskRecord {
    /// Task duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Outcome of executing a workload through the agent.
#[derive(Debug, Clone, Default)]
pub struct ScheduleReport {
    /// Per-task records, in completion order.
    pub tasks: Vec<TaskRecord>,
    /// Total cores of the pilot.
    pub total_cores: u32,
    /// Time the last task finished.
    pub makespan: f64,
}

impl ScheduleReport {
    /// Core-seconds actually used divided by core-seconds available:
    /// the utilization metric pilot developers optimize (use case 2.1).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.total_cores == 0 {
            return 0.0;
        }
        let used: f64 = self
            .tasks
            .iter()
            .map(|t| t.duration() * t.cores as f64)
            .sum();
        used / (self.makespan * self.total_cores as f64)
    }

    /// Mean task turnaround (start→end).
    pub fn mean_duration(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(TaskRecord::duration).sum::<f64>() / self.tasks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_perfect_packing() {
        let report = ScheduleReport {
            tasks: vec![
                TaskRecord {
                    id: "a".into(),
                    cores: 2,
                    start: 0.0,
                    end: 10.0,
                },
                TaskRecord {
                    id: "b".into(),
                    cores: 2,
                    start: 0.0,
                    end: 10.0,
                },
            ],
            total_cores: 4,
            makespan: 10.0,
        };
        assert!((report.utilization() - 1.0).abs() < 1e-12);
        assert!((report.mean_duration() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_half_idle_pilot() {
        let report = ScheduleReport {
            tasks: vec![TaskRecord {
                id: "a".into(),
                cores: 1,
                start: 0.0,
                end: 10.0,
            }],
            total_cores: 2,
            makespan: 10.0,
        };
        assert!((report.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_reports_are_zero() {
        let empty = ScheduleReport::default();
        assert_eq!(empty.utilization(), 0.0);
        assert_eq!(empty.mean_duration(), 0.0);
    }
}
