//! Application Skeletons integration: DAGs of proxy tasks.
//!
//! The paper's related work (§7, ref. \[24\] Katz et al.) discusses how
//! "Synapse can be used to complement Application Skeletons, in that
//! it provides configuration parameters at the level of individual DAG
//! components": Skeletons describe the logical and data dependencies
//! between application components, Synapse makes each component a
//! tunable proxy. This module provides that DAG layer on top of the
//! pilot agent: tasks with explicit dependencies, executed in
//! dependency order under the node's core constraints.

use std::collections::{BTreeMap, BTreeSet};

use synapse_sim::MachineModel;

use crate::report::{ScheduleReport, TaskRecord};
use crate::task::ProxyTask;

/// A DAG of proxy tasks.
#[derive(Default)]
pub struct Skeleton {
    tasks: Vec<ProxyTask>,
    /// Edges by task id: `deps[b]` contains `a` when `a → b`.
    deps: BTreeMap<String, BTreeSet<String>>,
}

/// Errors constructing or executing a skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkeletonError {
    /// A dependency references an unknown task id.
    UnknownTask(String),
    /// A task id was added twice.
    DuplicateTask(String),
    /// The dependency graph contains a cycle involving this task.
    Cycle(String),
}

impl std::fmt::Display for SkeletonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkeletonError::UnknownTask(id) => write!(f, "unknown task {id}"),
            SkeletonError::DuplicateTask(id) => write!(f, "duplicate task {id}"),
            SkeletonError::Cycle(id) => write!(f, "dependency cycle through {id}"),
        }
    }
}

impl std::error::Error for SkeletonError {}

impl Skeleton {
    /// Empty skeleton.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task node.
    pub fn add_task(&mut self, task: ProxyTask) -> Result<(), SkeletonError> {
        if self.tasks.iter().any(|t| t.id == task.id) {
            return Err(SkeletonError::DuplicateTask(task.id));
        }
        self.deps.entry(task.id.clone()).or_default();
        self.tasks.push(task);
        Ok(())
    }

    /// Declare that `after` depends on (runs after) `before`.
    pub fn add_dependency(&mut self, before: &str, after: &str) -> Result<(), SkeletonError> {
        for id in [before, after] {
            if !self.tasks.iter().any(|t| t.id == id) {
                return Err(SkeletonError::UnknownTask(id.to_string()));
            }
        }
        self.deps
            .entry(after.to_string())
            .or_default()
            .insert(before.to_string());
        Ok(())
    }

    /// Number of task nodes.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the skeleton has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Convenience: an ensemble pipeline of `stages`, where every task
    /// of stage `i+1` depends on every task of stage `i` (the
    /// Ensemble-Toolkit pattern of use case 2.3).
    pub fn pipeline(stages: Vec<Vec<ProxyTask>>) -> Result<Skeleton, SkeletonError> {
        let mut sk = Skeleton::new();
        let mut prev_ids: Vec<String> = Vec::new();
        for stage in stages {
            let ids: Vec<String> = stage.iter().map(|t| t.id.clone()).collect();
            for task in stage {
                sk.add_task(task)?;
            }
            for before in &prev_ids {
                for after in &ids {
                    sk.add_dependency(before, after)?;
                }
            }
            prev_ids = ids;
        }
        Ok(sk)
    }

    /// Execute the DAG on a machine in virtual time.
    ///
    /// Event-driven list scheduling: a task becomes *eligible* when
    /// all its dependencies completed; eligible tasks start when
    /// enough cores are free (smaller-first backfill among eligibles).
    pub fn execute(&self, machine: &MachineModel) -> Result<ScheduleReport, SkeletonError> {
        self.check_acyclic()?;
        let total_cores = machine.cpu.ncores;
        let mut done: BTreeSet<String> = BTreeSet::new();
        let mut done_time: BTreeMap<String, f64> = BTreeMap::new();
        let mut running: Vec<(f64, String, u32)> = Vec::new(); // (end, id, cores)
        let mut pending: Vec<&ProxyTask> = self.tasks.iter().collect();
        let mut free = total_cores;
        let mut now = 0.0f64;
        let mut records = Vec::with_capacity(self.tasks.len());

        while !pending.is_empty() || !running.is_empty() {
            // Start every eligible task that fits, smallest first.
            let mut started: Vec<usize> = Vec::new();
            let mut eligible: Vec<(usize, &ProxyTask)> = pending
                .iter()
                .enumerate()
                .filter(|(_, t)| self.deps[&t.id].iter().all(|d| done.contains(d)))
                .map(|(i, t)| (i, *t))
                .collect();
            eligible.sort_by_key(|(_, t)| t.cores);
            for (idx, task) in eligible {
                let cores = task.cores.min(total_cores);
                if cores <= free {
                    // A task may not start before its dependencies'
                    // completion instants.
                    let ready_at = self.deps[&task.id]
                        .iter()
                        .map(|d| done_time[d])
                        .fold(0.0f64, f64::max);
                    let start = now.max(ready_at);
                    let duration = task.duration_on(machine);
                    records.push(TaskRecord {
                        id: task.id.clone(),
                        cores,
                        start,
                        end: start + duration,
                    });
                    running.push((start + duration, task.id.clone(), cores));
                    free -= cores;
                    started.push(idx);
                }
            }
            started.sort_unstable_by(|a, b| b.cmp(a));
            for idx in started {
                pending.remove(idx);
            }

            // Advance to the next completion.
            if running.is_empty() {
                if !pending.is_empty() {
                    // Nothing runnable and nothing running: the DAG is
                    // acyclic (checked), so this cannot happen.
                    unreachable!("scheduler stalled on an acyclic DAG");
                }
                break;
            }
            running.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let (end, id, cores) = running.remove(0);
            now = now.max(end);
            free += cores;
            done_time.insert(id.clone(), end);
            done.insert(id);
        }

        records.sort_by(|a, b| a.end.partial_cmp(&b.end).unwrap());
        let makespan = records.last().map_or(0.0, |r| r.end);
        Ok(ScheduleReport {
            tasks: records,
            total_cores,
            makespan,
        })
    }

    /// Kahn's algorithm cycle check.
    fn check_acyclic(&self) -> Result<(), SkeletonError> {
        let mut indeg: BTreeMap<&str, usize> = self
            .tasks
            .iter()
            .map(|t| (t.id.as_str(), self.deps[&t.id].len()))
            .collect();
        let mut queue: Vec<&str> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut seen = 0usize;
        while let Some(id) = queue.pop() {
            seen += 1;
            for (after, befores) in &self.deps {
                if befores.contains(id) {
                    let d = indeg.get_mut(after.as_str()).expect("known task");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(after);
                    }
                }
            }
        }
        if seen != self.tasks.len() {
            let stuck = indeg
                .iter()
                .find(|(_, &d)| d > 0)
                .map(|(&id, _)| id.to_string())
                .unwrap_or_default();
            return Err(SkeletonError::Cycle(stuck));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse::emulator::EmulationPlan;
    use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
    use synapse_sim::titan;

    fn task(id: &str, cores: u32, cycles: u64) -> ProxyTask {
        let mut p = Profile::new(
            ProfileKey::new("t", Tags::new()),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = 1.0;
        let mut s = Sample::at(0.0, 1.0);
        s.compute.cycles = cycles;
        p.push(s).unwrap();
        ProxyTask::new(
            id,
            cores,
            p,
            EmulationPlan {
                sim_startup_seconds: 0.1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn linear_chain_serializes() {
        let mut sk = Skeleton::new();
        for id in ["a", "b", "c"] {
            sk.add_task(task(id, 4, 5_000_000_000)).unwrap();
        }
        sk.add_dependency("a", "b").unwrap();
        sk.add_dependency("b", "c").unwrap();
        let report = sk.execute(&titan()).unwrap();
        let by_id = |id: &str| report.tasks.iter().find(|t| t.id == id).unwrap().clone();
        assert!(by_id("b").start >= by_id("a").end - 1e-9);
        assert!(by_id("c").start >= by_id("b").end - 1e-9);
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut sk = Skeleton::new();
        for i in 0..4 {
            sk.add_task(task(&format!("t{i}"), 4, 5_000_000_000))
                .unwrap();
        }
        let report = sk.execute(&titan()).unwrap();
        assert!(report.tasks.iter().all(|t| t.start == 0.0));
        assert!(report.utilization() > 0.9);
    }

    #[test]
    fn diamond_dag_respects_both_branches() {
        // a -> (b, c) -> d; b is much longer than c.
        let mut sk = Skeleton::new();
        sk.add_task(task("a", 2, 1_000_000_000)).unwrap();
        sk.add_task(task("b", 2, 20_000_000_000)).unwrap();
        sk.add_task(task("c", 2, 2_000_000_000)).unwrap();
        sk.add_task(task("d", 2, 1_000_000_000)).unwrap();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")] {
            sk.add_dependency(x, y).unwrap();
        }
        let report = sk.execute(&titan()).unwrap();
        let by_id = |id: &str| report.tasks.iter().find(|t| t.id == id).unwrap().clone();
        // d waits for the longer branch.
        assert!(by_id("d").start >= by_id("b").end - 1e-9);
        // b and c overlap (both depend only on a).
        assert!(by_id("c").start < by_id("b").end);
    }

    #[test]
    fn pipeline_builder_is_stage_ordered() {
        let stages = vec![
            (0..3)
                .map(|i| task(&format!("sim{i}"), 4, 8_000_000_000))
                .collect(),
            vec![task("analysis", 8, 2_000_000_000)],
            (0..3)
                .map(|i| task(&format!("sim2-{i}"), 4, 8_000_000_000))
                .collect(),
        ];
        let sk = Skeleton::pipeline(stages).unwrap();
        assert_eq!(sk.len(), 7);
        let report = sk.execute(&titan()).unwrap();
        let by_id = |id: &str| report.tasks.iter().find(|t| t.id == id).unwrap().clone();
        let stage0_end = (0..3)
            .map(|i| by_id(&format!("sim{i}")).end)
            .fold(0.0f64, f64::max);
        assert!(by_id("analysis").start >= stage0_end - 1e-9);
        assert!(by_id("sim2-0").start >= by_id("analysis").end - 1e-9);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut sk = Skeleton::new();
        sk.add_task(task("a", 1, 1)).unwrap();
        sk.add_task(task("b", 1, 1)).unwrap();
        sk.add_dependency("a", "b").unwrap();
        sk.add_dependency("b", "a").unwrap();
        assert!(matches!(sk.execute(&titan()), Err(SkeletonError::Cycle(_))));
    }

    #[test]
    fn unknown_and_duplicate_tasks_are_rejected() {
        let mut sk = Skeleton::new();
        sk.add_task(task("a", 1, 1)).unwrap();
        assert!(matches!(
            sk.add_task(task("a", 1, 1)),
            Err(SkeletonError::DuplicateTask(_))
        ));
        assert!(matches!(
            sk.add_dependency("a", "ghost"),
            Err(SkeletonError::UnknownTask(_))
        ));
    }

    #[test]
    fn empty_skeleton_executes_trivially() {
        let sk = Skeleton::new();
        assert!(sk.is_empty());
        let report = sk.execute(&titan()).unwrap();
        assert!(report.tasks.is_empty());
        assert_eq!(report.makespan, 0.0);
    }
}
