//! Cartesian expansion of campaign axes into concrete scenario points.

use serde::{Deserialize, Serialize};
use synapse::emulator::KernelChoice;
use synapse_pilot::SchedulerPolicy;
use synapse_sim::{FsKind, ParallelMode};
use synapse_workloads::AppModel;

use crate::spec::CampaignSpec;

/// One concrete scenario: a fully-bound combination of axis values.
///
/// The point carries everything that determines its simulation outcome
/// (including campaign-level knobs like the profiling machine and the
/// noise level), so its content fingerprint is a sound memoization key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Position in deterministic grid order.
    pub index: usize,
    /// Workload/application name.
    pub workload: String,
    /// Iteration count.
    pub steps: u64,
    /// Target machine (catalog name).
    pub machine: String,
    /// Compute kernel (`asm` | `c` | `spin`).
    pub kernel: String,
    /// Parallel mode (`openmp` | `mpi`).
    pub mode: String,
    /// Worker width.
    pub threads: u32,
    /// I/O block size in bytes.
    pub io_block: u64,
    /// Profiling sample rate in Hz.
    pub sample_rate: f64,
    /// Target filesystem (`default` ⇒ the machine's own default).
    pub fs: String,
    /// Atom-enable ablation set (`all`, `compute+storage`, `no-network`,
    /// ... — see [`atoms_by_name`]).
    pub atoms: String,
    /// Sample-ordering mode (`preserve` | `shuffle` — the Fig. 2
    /// ordering ablation, see [`sample_order_by_name`]).
    pub sample_order: String,
    /// Machine the synthetic profile is taken on.
    pub profile_machine: String,
    /// Measurement-noise coefficient of variation.
    pub noise_cv: f64,
    /// Per-point seed, derived deterministically from the campaign
    /// seed and the point's axis values (not its index, so growing an
    /// axis never reshuffles existing points' seeds).
    pub seed: u64,
}

impl ScenarioPoint {
    /// Human-readable one-line label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}steps on {} [{}･{}×{} io={} rate={} fs={} atoms={} order={}]",
            self.workload,
            self.steps,
            self.machine,
            self.kernel,
            self.mode,
            self.threads,
            self.io_block,
            self.sample_rate,
            self.fs,
            self.atoms,
            self.sample_order,
        )
    }
}

/// Resolve a workload name to its application model.
pub fn app_by_name(name: &str) -> Option<AppModel> {
    match name.to_ascii_lowercase().as_str() {
        "gromacs" => Some(AppModel::gromacs()),
        "amber" => Some(AppModel::amber()),
        _ => None,
    }
}

/// Resolve a kernel name to a [`KernelChoice`].
pub fn kernel_by_name(name: &str) -> Option<KernelChoice> {
    match name.to_ascii_lowercase().as_str() {
        "asm" => Some(KernelChoice::Asm),
        "c" => Some(KernelChoice::C),
        "spin" => Some(KernelChoice::Spin),
        _ => None,
    }
}

/// Resolve a parallel-mode name.
pub fn mode_by_name(name: &str) -> Option<ParallelMode> {
    match name.to_ascii_lowercase().as_str() {
        "openmp" | "omp" => Some(ParallelMode::OpenMp),
        "mpi" | "openmpi" => Some(ParallelMode::Mpi),
        _ => None,
    }
}

/// Resolve a target-filesystem axis value. `default` (or an empty
/// string) means "the machine's own default filesystem" and resolves
/// to `None`; anything else must be a modelled [`FsKind`].
pub fn fs_by_name(name: &str) -> Option<Option<FsKind>> {
    match name.to_ascii_lowercase().as_str() {
        "default" | "" => Some(None),
        other => FsKind::parse(other).map(Some),
    }
}

/// Which emulation atoms a scenario point enables (the ablation
/// dimension already plumbed through
/// [`synapse::emulator::EmulationPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomSet {
    /// Run the compute atom.
    pub compute: bool,
    /// Run the memory atom.
    pub memory: bool,
    /// Run the storage atom.
    pub storage: bool,
    /// Run the network atom.
    pub network: bool,
}

impl AtomSet {
    /// Every atom enabled (the non-ablated default).
    pub fn all() -> AtomSet {
        AtomSet {
            compute: true,
            memory: true,
            storage: true,
            network: true,
        }
    }

    /// The canonical spelling of this set — the one stored in
    /// [`ScenarioPoint::atoms`], so that every equivalent input
    /// spelling (`ALL`, `storage+compute`, ...) produces the same
    /// fingerprint and per-point seed.
    pub fn canonical(self) -> String {
        let on = [
            (self.compute, "compute"),
            (self.memory, "memory"),
            (self.storage, "storage"),
            (self.network, "network"),
        ];
        let enabled: Vec<&str> = on.iter().filter(|(e, _)| *e).map(|(_, n)| *n).collect();
        match enabled.len() {
            4 => "all".into(),
            3 => {
                let off = on.iter().find(|(e, _)| !e).expect("one disabled").1;
                format!("no-{off}")
            }
            _ => enabled.join("+"),
        }
    }
}

/// Resolve an atom-ablation name: `all`, a `+`-joined subset of
/// `compute`/`memory`/`storage`/`network` (e.g. `compute+storage`), or
/// `no-<atom>` for all-but-one.
pub fn atoms_by_name(name: &str) -> Option<AtomSet> {
    let name = name.to_ascii_lowercase();
    if name == "all" {
        return Some(AtomSet::all());
    }
    if let Some(dropped) = name.strip_prefix("no-") {
        let mut set = AtomSet::all();
        match dropped {
            "compute" => set.compute = false,
            "memory" => set.memory = false,
            "storage" => set.storage = false,
            "network" => set.network = false,
            _ => return None,
        }
        return Some(set);
    }
    let mut set = AtomSet {
        compute: false,
        memory: false,
        storage: false,
        network: false,
    };
    for part in name.split('+') {
        match part.trim() {
            "compute" => set.compute = true,
            "memory" => set.memory = true,
            "storage" => set.storage = true,
            "network" => set.network = true,
            _ => return None,
        }
    }
    Some(set)
}

/// Resolve a sample-order axis value to its canonical spelling:
/// `preserve` replays the profile's samples in profiled order;
/// `shuffle` ablates ordering by merging the whole profile into one
/// all-concurrent sample (the paper's Fig. 2 sample-ordering
/// ablation, `EmulationPlan::preserve_sample_order = false`).
pub fn sample_order_by_name(name: &str) -> Option<&'static str> {
    match name.to_ascii_lowercase().as_str() {
        "preserve" | "ordered" | "" => Some("preserve"),
        "shuffle" | "merge" | "unordered" => Some("shuffle"),
        _ => None,
    }
}

/// Whether a canonical sample-order value preserves profiled order.
pub fn sample_order_preserves(canonical: &str) -> bool {
    canonical != "shuffle"
}

/// Resolve a pilot scheduler policy name.
pub fn policy_by_name(name: &str) -> Option<SchedulerPolicy> {
    match name.to_ascii_lowercase().as_str() {
        "fifo" => Some(SchedulerPolicy::Fifo),
        "backfill" => Some(SchedulerPolicy::Backfill),
        _ => None,
    }
}

/// FNV-1a 64-bit, the workspace-wide stable hash for seeds and
/// fingerprints (no `DefaultHasher` — its output may change between
/// Rust releases, which would silently invalidate caches).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf29ce484222325u64 ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Expand a validated spec into its full scenario grid, in
/// deterministic axis order (workloads ▸ steps ▸ machines ▸ kernels ▸
/// modes ▸ threads ▸ io_blocks ▸ sample_rates ▸ filesystems ▸ atoms ▸
/// sample_order).
pub fn expand(spec: &CampaignSpec) -> Vec<ScenarioPoint> {
    expand_range(spec, 0, usize::MAX)
}

/// Expand only grid indices `start..end` of the spec's scenario grid
/// (the unit a cluster lease executes): identical order and content to
/// the corresponding slice of [`expand`] — points keep their *global*
/// `index` — but only the requested range is materialized and the
/// walk stops at `end`, so serving a lease costs the lease, not the
/// grid.
pub fn expand_range(spec: &CampaignSpec, start: usize, end: usize) -> Vec<ScenarioPoint> {
    let total = spec.point_count();
    let mut points = Vec::with_capacity(end.min(total).saturating_sub(start.min(total)));
    let mut index = 0usize;
    'grid: for workload in &spec.workloads {
        for &steps in &workload.steps {
            for machine in &spec.machines {
                for kernel in &spec.kernels {
                    for mode in &spec.modes {
                        for &threads in &spec.threads {
                            for &io_block in &spec.io_blocks {
                                for &sample_rate in &spec.sample_rates {
                                    for fs in &spec.filesystems {
                                        for atoms in &spec.atoms {
                                            for order in &spec.sample_order {
                                                if index >= end {
                                                    break 'grid;
                                                }
                                                if index >= start {
                                                    let axes = format!(
                                                        "{}|{steps}|{machine}|{kernel}|{mode}|{threads}|{io_block}|{sample_rate}|{fs}|{atoms}|{order}|{}|{}",
                                                        workload.app, spec.profile_machine, spec.noise_cv,
                                                    );
                                                    points.push(ScenarioPoint {
                                                        index,
                                                        workload: workload.app.clone(),
                                                        steps,
                                                        machine: machine.clone(),
                                                        kernel: kernel.clone(),
                                                        mode: mode.clone(),
                                                        threads,
                                                        io_block,
                                                        sample_rate,
                                                        fs: fs.clone(),
                                                        atoms: atoms.clone(),
                                                        sample_order: order.clone(),
                                                        profile_machine: spec
                                                            .profile_machine
                                                            .clone(),
                                                        noise_cv: spec.noise_cv,
                                                        seed: fnv1a(axes.as_bytes(), spec.seed),
                                                    });
                                                }
                                                index += 1;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "grid"
            seed = 3
            machines = ["thinkie", "comet", "titan"]
            kernels = ["asm", "c"]
            modes = ["openmp", "mpi"]
            threads = [1, 4]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 100000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn expansion_matches_point_count_and_indices() {
        let s = spec();
        let points = expand(&s);
        assert_eq!(points.len(), s.point_count());
        assert_eq!(points.len(), 2 * 3 * 2 * 2 * 2);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = expand(&spec());
        let b = expand(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn range_expansion_matches_the_full_grid_slice() {
        let s = spec();
        let full = expand(&s);
        for (start, end) in [
            (0, full.len()),
            (3, 17),
            (0, 1),
            (full.len() - 1, full.len()),
        ] {
            let ranged = expand_range(&s, start, end);
            assert_eq!(ranged, full[start..end], "{start}..{end}");
        }
        // Global indices survive slicing; out-of-range is empty.
        assert_eq!(expand_range(&s, 5, 8)[0].index, 5);
        assert!(expand_range(&s, full.len(), full.len() + 4).is_empty());
        assert!(expand_range(&s, 9, 9).is_empty());
    }

    #[test]
    fn seeds_differ_per_point_but_are_stable_under_axis_growth() {
        let s = spec();
        let points = expand(&s);
        let mut seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), points.len(), "all seeds distinct");

        // Growing the machines axis keeps existing points' seeds.
        let mut grown = s.clone();
        grown.machines.push("stampede".into());
        let grown_points = expand(&grown);
        for p in &points {
            let same = grown_points
                .iter()
                .find(|q| {
                    q.machine == p.machine
                        && q.steps == p.steps
                        && q.kernel == p.kernel
                        && q.mode == p.mode
                        && q.threads == p.threads
                })
                .unwrap();
            assert_eq!(same.seed, p.seed, "seed survives axis growth");
        }
    }

    #[test]
    fn campaign_seed_changes_all_point_seeds() {
        let s = spec();
        let mut reseeded = s.clone();
        reseeded.seed = 4;
        let a = expand(&s);
        let b = expand(&reseeded);
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn name_resolvers() {
        assert!(app_by_name("GROMACS").is_some());
        assert!(app_by_name("amber").is_some());
        assert!(app_by_name("namd").is_none());
        assert!(kernel_by_name("ASM").is_some());
        assert!(kernel_by_name("rust").is_none());
        assert!(mode_by_name("mpi").is_some());
        assert!(mode_by_name("serial").is_none());
        assert!(policy_by_name("backfill").is_some());
        assert!(policy_by_name("sjf").is_none());
    }

    #[test]
    fn fs_and_atom_resolvers() {
        assert_eq!(fs_by_name("default"), Some(None));
        assert_eq!(fs_by_name(""), Some(None));
        assert_eq!(fs_by_name("lustre"), Some(Some(FsKind::Lustre)));
        assert_eq!(fs_by_name("LOCAL"), Some(Some(FsKind::Local)));
        assert_eq!(fs_by_name("gpfs"), None);

        assert_eq!(atoms_by_name("all"), Some(AtomSet::all()));
        let no_storage = atoms_by_name("no-storage").unwrap();
        assert!(no_storage.compute && no_storage.memory && no_storage.network);
        assert!(!no_storage.storage);
        let cs = atoms_by_name("compute+storage").unwrap();
        assert!(cs.compute && cs.storage);
        assert!(!cs.memory && !cs.network);
        assert_eq!(atoms_by_name("compute"), atoms_by_name("COMPUTE"));
        assert!(atoms_by_name("no-everything").is_none());
        assert!(atoms_by_name("compute+gpu").is_none());

        // Canonical spellings round-trip; variants collapse onto them.
        for name in ["all", "no-storage", "compute+storage", "memory"] {
            assert_eq!(atoms_by_name(name).unwrap().canonical(), name);
        }
        assert_eq!(
            atoms_by_name("storage+compute").unwrap().canonical(),
            "compute+storage"
        );
        assert_eq!(
            atoms_by_name("compute+memory+network").unwrap().canonical(),
            "no-storage"
        );
    }

    #[test]
    fn fs_and_atom_axes_expand_and_differentiate_seeds() {
        let toml = format!(
            "filesystems = [\"default\", \"nfs\"]\natoms = [\"all\", \"compute\"]\n{}",
            r#"
            name = "fs-atoms"
            seed = 3
            machines = ["thinkie"]
            kernels = ["asm"]

            [[workloads]]
            app = "gromacs"
            steps = [10000]
            "#
        );
        let spec = CampaignSpec::from_toml(&toml).unwrap();
        let points = expand(&spec);
        assert_eq!(points.len(), 4);
        let labels: Vec<String> = points.iter().map(|p| p.label()).collect();
        assert!(labels[0].contains("fs=default"), "{}", labels[0]);
        assert!(labels[3].contains("fs=nfs"), "{}", labels[3]);
        assert!(labels[1].contains("atoms=compute"), "{}", labels[1]);
        let mut seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "fs/atoms feed the per-point seed");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: if this changes, persisted caches invalidate.
        assert_eq!(fnv1a(b"synapse", 0), 0x617e928964c1b218);
        assert_eq!(fnv1a(b"", 0), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a", 0), fnv1a(b"a", 1));
    }
}
