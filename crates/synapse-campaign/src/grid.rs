//! Cartesian expansion of campaign axes into concrete scenario points.

use serde::{Deserialize, Serialize};
use synapse::emulator::KernelChoice;
use synapse_pilot::SchedulerPolicy;
use synapse_sim::ParallelMode;
use synapse_workloads::AppModel;

use crate::spec::CampaignSpec;

/// One concrete scenario: a fully-bound combination of axis values.
///
/// The point carries everything that determines its simulation outcome
/// (including campaign-level knobs like the profiling machine and the
/// noise level), so its content fingerprint is a sound memoization key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Position in deterministic grid order.
    pub index: usize,
    /// Workload/application name.
    pub workload: String,
    /// Iteration count.
    pub steps: u64,
    /// Target machine (catalog name).
    pub machine: String,
    /// Compute kernel (`asm` | `c` | `spin`).
    pub kernel: String,
    /// Parallel mode (`openmp` | `mpi`).
    pub mode: String,
    /// Worker width.
    pub threads: u32,
    /// I/O block size in bytes.
    pub io_block: u64,
    /// Profiling sample rate in Hz.
    pub sample_rate: f64,
    /// Machine the synthetic profile is taken on.
    pub profile_machine: String,
    /// Measurement-noise coefficient of variation.
    pub noise_cv: f64,
    /// Per-point seed, derived deterministically from the campaign
    /// seed and the point's axis values (not its index, so growing an
    /// axis never reshuffles existing points' seeds).
    pub seed: u64,
}

impl ScenarioPoint {
    /// Human-readable one-line label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}steps on {} [{}･{}×{} io={} rate={}]",
            self.workload,
            self.steps,
            self.machine,
            self.kernel,
            self.mode,
            self.threads,
            self.io_block,
            self.sample_rate,
        )
    }
}

/// Resolve a workload name to its application model.
pub fn app_by_name(name: &str) -> Option<AppModel> {
    match name.to_ascii_lowercase().as_str() {
        "gromacs" => Some(AppModel::gromacs()),
        "amber" => Some(AppModel::amber()),
        _ => None,
    }
}

/// Resolve a kernel name to a [`KernelChoice`].
pub fn kernel_by_name(name: &str) -> Option<KernelChoice> {
    match name.to_ascii_lowercase().as_str() {
        "asm" => Some(KernelChoice::Asm),
        "c" => Some(KernelChoice::C),
        "spin" => Some(KernelChoice::Spin),
        _ => None,
    }
}

/// Resolve a parallel-mode name.
pub fn mode_by_name(name: &str) -> Option<ParallelMode> {
    match name.to_ascii_lowercase().as_str() {
        "openmp" | "omp" => Some(ParallelMode::OpenMp),
        "mpi" | "openmpi" => Some(ParallelMode::Mpi),
        _ => None,
    }
}

/// Resolve a pilot scheduler policy name.
pub fn policy_by_name(name: &str) -> Option<SchedulerPolicy> {
    match name.to_ascii_lowercase().as_str() {
        "fifo" => Some(SchedulerPolicy::Fifo),
        "backfill" => Some(SchedulerPolicy::Backfill),
        _ => None,
    }
}

/// FNV-1a 64-bit, the workspace-wide stable hash for seeds and
/// fingerprints (no `DefaultHasher` — its output may change between
/// Rust releases, which would silently invalidate caches).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf29ce484222325u64 ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Expand a validated spec into its full scenario grid, in
/// deterministic axis order (workloads ▸ steps ▸ machines ▸ kernels ▸
/// modes ▸ threads ▸ io_blocks ▸ sample_rates).
pub fn expand(spec: &CampaignSpec) -> Vec<ScenarioPoint> {
    let mut points = Vec::with_capacity(spec.point_count());
    for workload in &spec.workloads {
        for &steps in &workload.steps {
            for machine in &spec.machines {
                for kernel in &spec.kernels {
                    for mode in &spec.modes {
                        for &threads in &spec.threads {
                            for &io_block in &spec.io_blocks {
                                for &sample_rate in &spec.sample_rates {
                                    let axes = format!(
                                        "{}|{steps}|{machine}|{kernel}|{mode}|{threads}|{io_block}|{sample_rate}|{}|{}",
                                        workload.app, spec.profile_machine, spec.noise_cv,
                                    );
                                    points.push(ScenarioPoint {
                                        index: points.len(),
                                        workload: workload.app.clone(),
                                        steps,
                                        machine: machine.clone(),
                                        kernel: kernel.clone(),
                                        mode: mode.clone(),
                                        threads,
                                        io_block,
                                        sample_rate,
                                        profile_machine: spec.profile_machine.clone(),
                                        noise_cv: spec.noise_cv,
                                        seed: fnv1a(axes.as_bytes(), spec.seed),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "grid"
            seed = 3
            machines = ["thinkie", "comet", "titan"]
            kernels = ["asm", "c"]
            modes = ["openmp", "mpi"]
            threads = [1, 4]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 100000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn expansion_matches_point_count_and_indices() {
        let s = spec();
        let points = expand(&s);
        assert_eq!(points.len(), s.point_count());
        assert_eq!(points.len(), 2 * 3 * 2 * 2 * 2);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = expand(&spec());
        let b = expand(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ_per_point_but_are_stable_under_axis_growth() {
        let s = spec();
        let points = expand(&s);
        let mut seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), points.len(), "all seeds distinct");

        // Growing the machines axis keeps existing points' seeds.
        let mut grown = s.clone();
        grown.machines.push("stampede".into());
        let grown_points = expand(&grown);
        for p in &points {
            let same = grown_points
                .iter()
                .find(|q| {
                    q.machine == p.machine
                        && q.steps == p.steps
                        && q.kernel == p.kernel
                        && q.mode == p.mode
                        && q.threads == p.threads
                })
                .unwrap();
            assert_eq!(same.seed, p.seed, "seed survives axis growth");
        }
    }

    #[test]
    fn campaign_seed_changes_all_point_seeds() {
        let s = spec();
        let mut reseeded = s.clone();
        reseeded.seed = 4;
        let a = expand(&s);
        let b = expand(&reseeded);
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn name_resolvers() {
        assert!(app_by_name("GROMACS").is_some());
        assert!(app_by_name("amber").is_some());
        assert!(app_by_name("namd").is_none());
        assert!(kernel_by_name("ASM").is_some());
        assert!(kernel_by_name("rust").is_none());
        assert!(mode_by_name("mpi").is_some());
        assert!(mode_by_name("serial").is_none());
        assert!(policy_by_name("backfill").is_some());
        assert!(policy_by_name("sjf").is_none());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: if this changes, persisted caches invalidate.
        assert_eq!(fnv1a(b"synapse", 0), 0x617e928964c1b218);
        assert_eq!(fnv1a(b"", 0), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a", 0), fnv1a(b"a", 1));
    }
}
