#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `synapse-campaign` — a parallel scenario-sweep engine over the
//! Synapse simulator.
//!
//! The paper's promise is *cheap exploration*: profile an application
//! once, then ask "how would it behave on machine M with kernel K,
//! parallel mode P, I/O block B?" without owning machine M. One-shot
//! questions go through [`synapse::Emulator::simulate`]; this crate
//! scales that to **campaigns** — declarative sweeps over the
//! cartesian product of those axes, run in parallel, memoized, and
//! summarized:
//!
//! * [`spec`] — [`CampaignSpec`], deserializable from TOML (subset,
//!   see [`toml`]) or JSON, declaring the axes;
//! * [`grid`] — cartesian expansion into [`ScenarioPoint`]s with
//!   deterministic per-point seeds;
//! * [`runner`] — a worker pool driving the simulator in virtual time;
//! * [`cache`] — fingerprint-keyed memoization persisted through
//!   `synapse-store`'s sharded store (256 shard files by fingerprint
//!   prefix, dirty-shard-only saves), so re-running a grown campaign
//!   only simulates new points and only rewrites the shards it adds;
//! * [`aggregate`] — mean/p50/p95/p99 per axis slice plus
//!   relative-error-vs-reference-machine views;
//! * [`report`] — deterministic JSON/CSV reports (identical spec +
//!   seed ⇒ byte-identical JSON);
//! * [`partition`](mod@partition) — deterministic grid partitioning and the lease
//!   table backing distributed fan-out across cooperating serve
//!   processes (`synapse-cluster`).
//!
//! ```
//! use synapse_campaign::{run_campaign, CampaignSpec, RunConfig};
//!
//! let spec = CampaignSpec::from_toml(r#"
//!     name = "quick"
//!     machines = ["thinkie", "comet"]
//!     kernels = ["asm", "c"]
//!
//!     [[workloads]]
//!     app = "gromacs"
//!     steps = [10000]
//! "#).unwrap();
//! let outcome = run_campaign(&spec, &RunConfig::default(), None).unwrap();
//! assert_eq!(outcome.report.points, 4);
//! println!("{}", outcome.report.render_summary());
//! ```

pub mod aggregate;
pub mod cache;
pub mod engine;
pub mod error;
pub mod grid;
pub mod live;
mod metrics;
pub mod partition;
pub mod report;
pub mod runner;
pub mod sketch;
pub mod spec;
pub mod toml;

use std::path::Path;

pub use aggregate::{AxisSlice, Percentiles, ReferenceError};
pub use cache::{campaign_trace_id, fingerprint, ResultCache, ENGINE_VERSION};
pub use engine::{CampaignEngine, CancelToken, PointEvent};
pub use error::CampaignError;
pub use grid::{
    atoms_by_name, expand, expand_range, fs_by_name, sample_order_by_name, AtomSet, ScenarioPoint,
};
pub use live::{AggregateMetrics, LiveAggregates, AGGREGATES_VERSION};
pub use partition::{
    partition, partition_weighted, plan_leases, Lease, LeaseState, LeaseTable, MAX_PROBE_POINTS,
};
pub use report::{CampaignReport, PilotSummary, PointRow};
pub use runner::{simulate_point, PointResult, RunConfig, RunStats};
pub use sketch::QuantileSketch;
pub use spec::{CampaignSpec, PilotSpec, WorkloadSpec};

/// A finished campaign: the deterministic report plus this run's
/// execution counters.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Deterministic aggregate report.
    pub report: CampaignReport,
    /// This run's counters (simulated vs. cached, wall time).
    pub stats: RunStats,
}

/// Expand, execute and summarize a campaign.
///
/// With a `cache_dir`, results persist across invocations: a re-run
/// (or a grown campaign) only simulates points whose fingerprints are
/// missing, and the cache is written back afterwards.
pub fn run_campaign(
    spec: &CampaignSpec,
    config: &RunConfig,
    cache_dir: Option<&Path>,
) -> Result<CampaignOutcome, CampaignError> {
    let cache = match cache_dir {
        // Warm the cache with the same worker budget the sweep gets:
        // shard files load in parallel, so warm-up scales with cores.
        Some(dir) => ResultCache::open_with_workers(dir, config.workers)?,
        None => ResultCache::in_memory(),
    };
    run_campaign_on(spec, config, &cache, &|_| {}, &CancelToken::new())
}

/// [`run_campaign`] against a caller-owned cache handle, observing
/// every [`PointEvent`] and honoring a [`CancelToken`].
///
/// This is the form long-running frontends use: one process-wide
/// [`ResultCache`] shared across concurrent campaigns, with per-point
/// progress streamed out as it happens. Mutated shards are persisted
/// before returning (also on cancellation, so landed points survive).
pub fn run_campaign_on(
    spec: &CampaignSpec,
    config: &RunConfig,
    cache: &ResultCache,
    observer: &(dyn Fn(PointEvent) + Sync),
    cancel: &CancelToken,
) -> Result<CampaignOutcome, CampaignError> {
    let engine_metrics = crate::metrics::EngineMetrics::get();
    let run_started = std::time::Instant::now();
    let points = expand(spec);
    let expand_secs = run_started.elapsed().as_secs_f64();
    engine_metrics.stage_expansion.observe(expand_secs);
    let swept = CampaignEngine::new(&points, cache, config).run(observer, cancel);
    let aggregate_started = std::time::Instant::now();
    cache.persist()?;
    let (results, mut stats) = swept?;
    let report = CampaignReport::assemble(spec, &results)?;
    stats.expand_secs = expand_secs;
    stats.aggregate_secs = aggregate_started.elapsed().as_secs_f64();
    stats.wall_secs = run_started.elapsed().as_secs_f64();
    engine_metrics
        .stage_aggregation
        .observe(stats.aggregate_secs);
    engine_metrics.campaigns.inc();
    Ok(CampaignOutcome { report, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "integration"
            seed = 99
            machines = ["thinkie", "supermic", "titan"]
            kernels = ["asm", "c"]
            modes = ["openmp", "mpi"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 100000]

            [[workloads]]
            app = "amber"
            steps = [50000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_run_produces_full_report() {
        let s = spec();
        let outcome = run_campaign(&s, &RunConfig::default(), None).unwrap();
        assert_eq!(outcome.report.points, 3 * 3 * 2 * 2);
        assert_eq!(outcome.stats.simulated, outcome.report.points);
        assert_eq!(outcome.stats.cache_hits, 0);
        assert!(outcome.stats.points_per_sec() > 0.0);
    }

    #[test]
    fn determinism_same_spec_same_seed_byte_identical_json() {
        let s = spec();
        let a = run_campaign(&s, &RunConfig { workers: 1 }, None).unwrap();
        let b = run_campaign(&s, &RunConfig { workers: 8 }, None).unwrap();
        assert_eq!(
            a.report.to_json().unwrap(),
            b.report.to_json().unwrap(),
            "worker count must not leak into the report"
        );
        let mut reseeded = s.clone();
        reseeded.seed = 100;
        let c = run_campaign(&reseeded, &RunConfig::default(), None).unwrap();
        assert_ne!(a.report.to_json().unwrap(), c.report.to_json().unwrap());
    }

    #[test]
    fn persistent_cache_across_invocations() {
        let dir = std::env::temp_dir().join(format!("synapse-campaign-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec();
        let first = run_campaign(&s, &RunConfig::default(), Some(&dir)).unwrap();
        assert_eq!(first.stats.simulated, s.point_count());
        let second = run_campaign(&s, &RunConfig::default(), Some(&dir)).unwrap();
        assert_eq!(second.stats.simulated, 0);
        assert_eq!(second.stats.cache_hits, s.point_count());
        assert_eq!(
            first.report.to_json().unwrap(),
            second.report.to_json().unwrap(),
            "cached replay reproduces the report byte-for-byte"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
