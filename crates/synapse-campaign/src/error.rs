//! Campaign error type.

use std::fmt;

/// Anything that can go wrong declaring, expanding or running a
/// campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec text could not be parsed (TOML/JSON syntax or shape).
    Spec(String),
    /// The spec references a machine the catalog does not model.
    UnknownMachine(String),
    /// The spec references an unknown compute kernel.
    UnknownKernel(String),
    /// The spec references an unknown parallel mode.
    UnknownMode(String),
    /// The spec references an unknown workload/application.
    UnknownWorkload(String),
    /// The spec references an unknown target filesystem.
    UnknownFilesystem(String),
    /// The spec references an unknown atom-ablation set.
    UnknownAtomSet(String),
    /// The spec references an unknown sample-order mode.
    UnknownSampleOrder(String),
    /// An axis expanded to nothing (empty grid).
    EmptyAxis(&'static str),
    /// Distributed (cluster) execution failed.
    Cluster(String),
    /// The run was cancelled cooperatively before draining the grid.
    Cancelled {
        /// Points that completed before cancellation took effect.
        done: usize,
        /// Total points in the grid.
        total: usize,
    },
    /// Result-cache persistence failed.
    Store(synapse_store::StoreError),
    /// Reading the spec file failed.
    Io(std::io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::UnknownMachine(m) => {
                write!(f, "unknown machine {m:?} (catalog: thinkie, stampede, archer, supermic, comet, titan)")
            }
            CampaignError::UnknownKernel(k) => {
                write!(f, "unknown kernel {k:?} (asm | c | spin)")
            }
            CampaignError::UnknownMode(m) => {
                write!(f, "unknown parallel mode {m:?} (openmp | mpi)")
            }
            CampaignError::UnknownWorkload(w) => {
                write!(f, "unknown workload {w:?} (gromacs | amber)")
            }
            CampaignError::UnknownFilesystem(fs) => {
                write!(
                    f,
                    "unknown filesystem {fs:?} (default | local | lustre | nfs)"
                )
            }
            CampaignError::UnknownAtomSet(a) => {
                write!(
                    f,
                    "unknown atom set {a:?} (all, no-<atom>, or a '+'-joined subset of compute/memory/storage/network)"
                )
            }
            CampaignError::UnknownSampleOrder(o) => {
                write!(f, "unknown sample order {o:?} (preserve | shuffle)")
            }
            CampaignError::EmptyAxis(axis) => write!(f, "campaign axis {axis:?} is empty"),
            CampaignError::Cluster(msg) => write!(f, "cluster execution: {msg}"),
            CampaignError::Cancelled { done, total } => {
                write!(f, "campaign cancelled after {done}/{total} points")
            }
            CampaignError::Store(e) => write!(f, "result cache: {e}"),
            CampaignError::Io(e) => write!(f, "spec file: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Store(e) => Some(e),
            CampaignError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<synapse_store::StoreError> for CampaignError {
    fn from(e: synapse_store::StoreError) -> Self {
        CampaignError::Store(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl From<serde_json::Error> for CampaignError {
    fn from(e: serde_json::Error) -> Self {
        CampaignError::Spec(e.to_string())
    }
}
