//! Per-point simulation and the one-shot campaign executor.
//!
//! Scenario points are independent, so sweeps fan them out over a pool
//! of worker threads pulling indices from a shared atomic counter —
//! that pool lives in [`crate::engine::CampaignEngine`]; this module
//! holds the per-point physics ([`simulate_point`]) and the
//! fire-and-forget wrapper ([`run_points`]). Every simulation runs in
//! *virtual* time (the machine models' clock), which is what makes
//! thousand-point sweeps complete in seconds of wall time. Results
//! land back in grid order, so the outcome is deterministic regardless
//! of thread interleaving.

use serde::{Deserialize, Serialize};
use synapse::emulator::{EmulationPlan, Emulator};
use synapse_sim::Noise;

use crate::cache::{fingerprint, ResultCache};
use crate::error::CampaignError;
use crate::grid::{
    app_by_name, atoms_by_name, fnv1a, fs_by_name, kernel_by_name, mode_by_name,
    sample_order_by_name, sample_order_preserves, ScenarioPoint,
};

/// Outcome of simulating one scenario point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// The scenario this result belongs to.
    pub point: ScenarioPoint,
    /// Content fingerprint the result is cached under.
    pub fingerprint: String,
    /// Emulated execution time Tx on the target machine (virtual
    /// seconds).
    pub tx: f64,
    /// Modelled *application* execution time on the same machine — the
    /// baseline the paper measures emulation fidelity against.
    pub app_tx: f64,
    /// Samples replayed.
    pub samples: usize,
    /// Cycles the profile directed.
    pub directed_cycles: u64,
    /// Cycles the kernel actually consumed (≥ directed).
    pub consumed_cycles: u64,
    /// Instructions retired (consumed × kernel IPC).
    pub instructions: u64,
    /// Bytes the storage atom wrote.
    pub bytes_written: u64,
}

impl PointResult {
    /// Relative emulation error vs. the application baseline, in
    /// percent (positive ⇒ emulation slower).
    pub fn error_pct(&self) -> f64 {
        if self.app_tx <= 0.0 {
            return 0.0;
        }
        (self.tx - self.app_tx) / self.app_tx * 100.0
    }

    /// Cycle overshoot fraction (kernel quantization + overhead).
    pub fn overshoot_frac(&self) -> f64 {
        if self.directed_cycles == 0 {
            return 0.0;
        }
        self.consumed_cycles as f64 / self.directed_cycles as f64 - 1.0
    }
}

/// How to execute a campaign.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Worker threads (0 ⇒ one per available core, capped at 16).
    pub workers: usize,
}

impl RunConfig {
    pub(crate) fn effective_workers(&self, points: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let configured = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        configured.clamp(1, points.max(1))
    }
}

/// Execution counters for one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Total scenario points.
    pub points: usize,
    /// Points actually simulated this run.
    pub simulated: usize,
    /// Points served from the result cache.
    pub cache_hits: usize,
    /// Wall-clock duration of the whole run (all stages).
    pub wall_secs: f64,
    /// Wall time spent expanding the spec into the scenario grid.
    pub expand_secs: f64,
    /// Wall time spent in the sweep (simulate/cache worker pool).
    pub sweep_secs: f64,
    /// Wall time spent persisting the cache and assembling the report.
    pub aggregate_secs: f64,
}

impl RunStats {
    /// The per-stage timing block every surface reports in the same
    /// shape: `campaign run --summary-json`, the server's terminal
    /// `completed` event, and the bench harness.
    pub fn timings_json(&self) -> serde_json::Value {
        serde_json::json!({
            "expansion_secs": self.expand_secs,
            "sweep_secs": self.sweep_secs,
            "aggregation_secs": self.aggregate_secs,
            "wall_secs": self.wall_secs,
        })
    }
    /// Sweep throughput (points per wall-clock second).
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.points as f64 / self.wall_secs
    }

    /// Fraction of points served from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.points as f64
    }
}

/// Resolve a point's axis values into the emulation plan it
/// prescribes — one place for the axis→`EmulationPlan` mapping, shared
/// by the sweep path and the pilot stage's proxy tasks.
pub fn emulation_plan(point: &ScenarioPoint) -> Result<EmulationPlan, CampaignError> {
    let kernel = kernel_by_name(&point.kernel)
        .ok_or_else(|| CampaignError::UnknownKernel(point.kernel.clone()))?;
    let mode =
        mode_by_name(&point.mode).ok_or_else(|| CampaignError::UnknownMode(point.mode.clone()))?;
    let target_fs =
        fs_by_name(&point.fs).ok_or_else(|| CampaignError::UnknownFilesystem(point.fs.clone()))?;
    let atoms = atoms_by_name(&point.atoms)
        .ok_or_else(|| CampaignError::UnknownAtomSet(point.atoms.clone()))?;
    let order = sample_order_by_name(&point.sample_order)
        .ok_or_else(|| CampaignError::UnknownSampleOrder(point.sample_order.clone()))?;
    Ok(EmulationPlan {
        kernel,
        threads: point.threads,
        mode,
        io_write_block: point.io_block,
        io_read_block: point.io_block,
        target_fs,
        emulate_compute: atoms.compute,
        emulate_memory: atoms.memory,
        emulate_storage: atoms.storage,
        emulate_network: atoms.network,
        preserve_sample_order: sample_order_preserves(order),
        ..Default::default()
    })
}

/// Simulate one scenario point (no cache involved).
///
/// The pipeline per point mirrors the paper's workflow: synthesize the
/// workload's profile on the profiling machine at the requested sample
/// rate, then replay it through the emulator on the target machine
/// with the requested kernel/parallelism/I/O plan. The application's
/// own modelled runtime on the target machine is computed alongside as
/// the fidelity baseline.
pub fn simulate_point(point: &ScenarioPoint) -> Result<PointResult, CampaignError> {
    let app = app_by_name(&point.workload)
        .ok_or_else(|| CampaignError::UnknownWorkload(point.workload.clone()))?;
    let profile_machine = synapse_sim::machine_by_name(&point.profile_machine)
        .ok_or_else(|| CampaignError::UnknownMachine(point.profile_machine.clone()))?;
    let machine = synapse_sim::machine_by_name(&point.machine)
        .ok_or_else(|| CampaignError::UnknownMachine(point.machine.clone()))?;
    let plan = emulation_plan(point)?;
    let mode = plan.mode;

    let mut profile_noise = Noise::new(point.seed, point.noise_cv);
    let profile = app.simulate_profile(
        &profile_machine,
        point.steps,
        point.sample_rate,
        &mut profile_noise,
    );

    let report = Emulator::new(plan).simulate(&profile, &machine);

    // Application baseline on the target machine, with its own noise
    // stream (decorrelated from the profiling noise).
    let mut app_noise = Noise::new(fnv1a(b"app-baseline", point.seed), point.noise_cv);
    let app_run = if point.threads > 1 {
        app.execute_parallel(&machine, point.steps, point.threads, mode, &mut app_noise)
    } else {
        app.execute(&machine, point.steps, &mut app_noise)
    };

    Ok(PointResult {
        fingerprint: fingerprint(point),
        point: point.clone(),
        tx: report.tx,
        app_tx: app_run.tx,
        samples: report.samples,
        directed_cycles: report.consumed.directed_cycles,
        consumed_cycles: report.consumed.cycles,
        instructions: report.consumed.instructions,
        bytes_written: report.consumed.bytes_written,
    })
}

/// Run all points through the worker pool, serving memoized results
/// from `cache` and writing fresh ones back. Results return in grid
/// order.
///
/// This is the fire-and-forget form of [`CampaignEngine`]: no
/// observer, no cancellation. Frontends that stream progress or stop
/// sweeps mid-grid (`synapse serve`) drive the engine directly.
///
/// [`CampaignEngine`]: crate::engine::CampaignEngine
pub fn run_points(
    points: &[ScenarioPoint],
    cache: &ResultCache,
    config: &RunConfig,
) -> Result<(Vec<PointResult>, RunStats), CampaignError> {
    crate::engine::CampaignEngine::new(points, cache, config)
        .run(&|_| {}, &crate::engine::CancelToken::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::expand;
    use crate::spec::CampaignSpec;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "runner"
            seed = 11
            machines = ["thinkie", "comet", "titan"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 50000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn simulate_point_produces_consistent_physics() {
        let points = expand(&small_spec());
        let r = simulate_point(&points[0]).unwrap();
        assert!(r.tx > 1.0, "startup second accounted: {}", r.tx);
        assert!(r.app_tx > 0.0);
        assert!(r.samples > 0);
        assert!(r.consumed_cycles >= r.directed_cycles);
        assert!(r.instructions > 0);
        assert!(r.overshoot_frac() >= 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let points = expand(&small_spec());
        let a = simulate_point(&points[3]).unwrap();
        let b = simulate_point(&points[3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_run_matches_grid_order_and_counts() {
        let points = expand(&small_spec());
        let cache = ResultCache::in_memory();
        let (results, stats) = run_points(&points, &cache, &RunConfig { workers: 4 }).unwrap();
        assert_eq!(results.len(), points.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.point.index, i, "grid order preserved");
        }
        assert_eq!(stats.points, points.len());
        assert_eq!(stats.simulated, points.len());
        assert_eq!(stats.cache_hits, 0);
        assert!(stats.points_per_sec() > 0.0);
    }

    #[test]
    fn second_run_is_all_cache_hits_and_skips_simulation() {
        let points = expand(&small_spec());
        let cache = ResultCache::in_memory();
        let config = RunConfig { workers: 3 };
        let (first, s1) = run_points(&points, &cache, &config).unwrap();
        assert_eq!(s1.simulated, points.len());
        let (second, s2) = run_points(&points, &cache, &config).unwrap();
        assert_eq!(s2.simulated, 0, "cache must satisfy every point");
        assert_eq!(s2.cache_hits, points.len());
        assert_eq!(s2.hit_rate(), 1.0);
        assert_eq!(first, second, "cached results identical");
    }

    #[test]
    fn grown_campaign_only_simulates_new_points() {
        let spec = small_spec();
        let cache = ResultCache::in_memory();
        let config = RunConfig::default();
        let (_, s1) = run_points(&expand(&spec), &cache, &config).unwrap();
        assert_eq!(s1.simulated, spec.point_count());

        let mut grown = spec.clone();
        grown.machines.push("stampede".into());
        let grown_points = expand(&grown);
        let (results, s2) = run_points(&grown_points, &cache, &config).unwrap();
        let new_points = grown.point_count() - spec.point_count();
        assert_eq!(s2.simulated, new_points, "only the new machine simulates");
        assert_eq!(s2.cache_hits, spec.point_count());
        assert_eq!(results.len(), grown.point_count());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.point.index, i,
                "cache hits must be rebound to the grown grid's indices"
            );
        }
    }

    #[test]
    fn workers_dont_change_results() {
        let points = expand(&small_spec());
        let serial = run_points(
            &points,
            &ResultCache::in_memory(),
            &RunConfig { workers: 1 },
        )
        .unwrap()
        .0;
        let parallel = run_points(
            &points,
            &ResultCache::in_memory(),
            &RunConfig { workers: 8 },
        )
        .unwrap()
        .0;
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fs_and_atom_axes_change_the_simulation() {
        let points = expand(&small_spec());
        let base = &points[0];

        // Compute-only ablation drops storage/memory/network time.
        let mut compute_only = base.clone();
        compute_only.atoms = "compute".into();
        let full = simulate_point(base).unwrap();
        let ablated = simulate_point(&compute_only).unwrap();
        assert!(ablated.tx <= full.tx, "{} > {}", ablated.tx, full.tx);
        assert_eq!(ablated.bytes_written, 0, "storage atom disabled");
        assert!(full.bytes_written > 0);

        // A no-compute ablation consumes no cycles.
        let mut no_compute = base.clone();
        no_compute.atoms = "no-compute".into();
        let nc = simulate_point(&no_compute).unwrap();
        assert_eq!(nc.consumed_cycles, 0);

        // Retargeting the filesystem changes the I/O pricing (Titan
        // models both Lustre — its default — and node-local disk).
        // Storage-only ablation makes the I/O time the sample time, so
        // the repricing is visible in tx even when compute would
        // otherwise dominate the per-sample max.
        let mut titan = points
            .iter()
            .find(|p| p.machine == "titan")
            .expect("titan on the axis")
            .clone();
        titan.atoms = "storage".into();
        let on_lustre = simulate_point(&titan).unwrap();
        let mut local = titan.clone();
        local.fs = "local".into();
        let on_local = simulate_point(&local).unwrap();
        assert_ne!(on_local.tx, on_lustre.tx, "fs retarget reprices I/O");
    }

    #[test]
    fn sample_order_axis_changes_the_replay() {
        // The shuffle ablation merges the profile into one
        // all-concurrent sample: same resource totals, different
        // concurrency structure, so Tx moves (Fig. 2's point).
        let points = expand(&small_spec());
        let base = &points[0];
        let preserved = simulate_point(base).unwrap();
        let mut shuffled_point = base.clone();
        shuffled_point.sample_order = "shuffle".into();
        let shuffled = simulate_point(&shuffled_point).unwrap();
        assert_eq!(
            preserved.directed_cycles, shuffled.directed_cycles,
            "ablation reorders, it does not change the directed work"
        );
        assert_ne!(
            preserved.tx, shuffled.tx,
            "merged replay prices concurrency differently"
        );
        assert_eq!(shuffled.samples, 1, "whole profile merged into one sample");
    }

    #[test]
    fn faster_reference_machines_emulate_faster() {
        // Physics sanity through the whole campaign path: the same
        // workload finishes sooner on Stampede than on the laptop.
        let mut spec = small_spec();
        spec.machines = vec!["thinkie".into(), "stampede".into()];
        spec.kernels = vec!["asm".into()];
        let points = expand(&spec);
        let (results, _) =
            run_points(&points, &ResultCache::in_memory(), &RunConfig::default()).unwrap();
        let tx_of = |machine: &str, steps: u64| {
            results
                .iter()
                .find(|r| r.point.machine == machine && r.point.steps == steps)
                .unwrap()
                .tx
        };
        assert!(tx_of("stampede", 50000) < tx_of("thinkie", 50000));
    }
}
