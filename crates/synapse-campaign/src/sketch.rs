//! Mergeable fixed-bucket quantile sketch.
//!
//! The live-aggregates plane ([`crate::live`]) needs per-slice
//! quantiles that can be (a) updated in O(1) per point, (b) merged
//! associatively across workers so a cluster run and a single-process
//! run agree, and (c) shipped over the wire in a few hundred bytes.
//! Exact order statistics need the whole series; this sketch trades a
//! bounded *relative* error for all three properties.
//!
//! The design is a sign-symmetric logarithmic histogram (the DDSketch
//! family): value magnitudes are bucketed by `ceil(log_γ(|v| /
//! MIN_MAG))` with γ = [`GAMMA`], negative values mirror into negative
//! bucket keys, and `|v| ≤ MIN_MAG` collapses into bucket 0. Bucket
//! keys ascend with value, so a rank walk over the sparse
//! `BTreeMap<i64, u64>` yields nearest-rank quantiles whose relative
//! error is at most [`RELATIVE_ERROR`] = (γ−1)/(γ+1) (< 1 %), plus
//! [`MIN_MAG`] of absolute slack around zero. Merging is bucket-wise
//! counter addition — exactly commutative, and associative up to f64
//! summation order in the exact moments carried alongside
//! (count/sum/min/max are tracked exactly; only quantiles are
//! approximate).

use std::collections::BTreeMap;

use serde_json::{json, Value};

/// Bucket growth factor: consecutive bucket boundaries differ by γ.
pub const GAMMA: f64 = 1.02;

/// Worst-case relative error of a quantile answer, (γ−1)/(γ+1).
pub const RELATIVE_ERROR: f64 = (GAMMA - 1.0) / (GAMMA + 1.0);

/// Magnitude floor: `|v| ≤ MIN_MAG` lands in the zero bucket, so
/// quantile answers also carry up to this much absolute slack.
pub const MIN_MAG: f64 = 1e-9;

/// A mergeable quantile sketch with exact first moments.
///
/// `count`, `sum`, `abs_sum`, `min` and `max` are exact; quantiles are
/// within [`RELATIVE_ERROR`] relative (plus [`MIN_MAG`] absolute)
/// error of the nearest-rank order statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Sparse log-γ buckets: key ascends with value, so iteration
    /// order is value order.
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    abs_sum: f64,
    min: f64,
    max: f64,
}

/// Bucket key for a value: 0 for near-zero, else the γ-log magnitude
/// index signed by the value.
fn key_of(v: f64) -> i64 {
    let mag = v.abs();
    if mag <= MIN_MAG {
        return 0;
    }
    let k = ((mag / MIN_MAG).ln() / GAMMA.ln()).ceil().max(1.0) as i64;
    if v < 0.0 {
        -k
    } else {
        k
    }
}

/// Representative value of a bucket: the midpoint (in relative terms)
/// of the magnitude range `(MIN_MAG·γ^(k−1), MIN_MAG·γ^k]`, which
/// bounds the error symmetrically at (γ−1)/(γ+1).
fn representative(key: i64) -> f64 {
    if key == 0 {
        return 0.0;
    }
    let mag = MIN_MAG * GAMMA.powi(key.unsigned_abs() as i32) * 2.0 / (1.0 + GAMMA);
    if key < 0 {
        -mag
    } else {
        mag
    }
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            abs_sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. O(log buckets); buckets are bounded by
    /// the value range, not the observation count.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return; // simulator metrics are finite; never poison the sketch
        }
        *self.buckets.entry(key_of(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
        self.abs_sum += v.abs();
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another sketch into this one. Bucket-wise addition:
    /// exactly commutative, and independent of how observations were
    /// split across the inputs.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.abs_sum += other.abs_sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact mean of absolute values (`None` when empty).
    pub fn mean_abs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.abs_sum / self.count as f64)
    }

    /// Exact minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile for `q ∈ [0, 1]`, within
    /// [`RELATIVE_ERROR`] relative + [`MIN_MAG`] absolute error of the
    /// exact order statistic ([`crate::Percentiles::of`] convention:
    /// rank `ceil(q·n)`, 1-indexed, floored at 1). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        // Ranks 1 and n are the exact extremes — answer them exactly
        // instead of with their bucket representative.
        if rank <= 1 {
            return Some(self.min);
        }
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // The exact min/max are known: clamping costs nothing
                // and pins q=0/q=1 to the true extremes.
                return Some(representative(k).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The [`crate::Percentiles`] summary this sketch approximates:
    /// `n`/`mean`/`min`/`max` exact, `p50`/`p95`/`p99` within the
    /// sketch error bound. `None` when empty.
    pub fn percentiles(&self) -> Option<crate::Percentiles> {
        Some(crate::Percentiles {
            n: usize::try_from(self.count).ok().filter(|&n| n > 0)?,
            mean: self.mean()?,
            p50: self.quantile(0.50)?,
            p95: self.quantile(0.95)?,
            p99: self.quantile(0.99)?,
            min: self.min,
            max: self.max,
        })
    }

    /// Wire digest: a JSON object with the exact moments and the
    /// sparse buckets as `[[key, count], ...]` pairs (ascending key).
    /// The shape is versioned by the enclosing protocol, not here.
    pub fn digest(&self) -> Value {
        let pairs: Vec<Value> = self
            .buckets
            .iter()
            .map(|(&k, &n)| Value::Array(vec![json!(k), json!(n)]))
            .collect();
        let (min, max) = if self.count > 0 {
            (self.min, self.max)
        } else {
            (0.0, 0.0)
        };
        json!({
            "count": self.count,
            "sum": self.sum,
            "abs_sum": self.abs_sum,
            "min": min,
            "max": max,
            "buckets": Value::Array(pairs),
        })
    }

    /// Parse a [`QuantileSketch::digest`] back. `None` on any shape
    /// mismatch — callers treat a malformed digest as absent, never as
    /// an error that could wedge a lease.
    pub fn from_digest(v: &Value) -> Option<QuantileSketch> {
        let count = v.get("count")?.as_u64()?;
        if count == 0 {
            return Some(QuantileSketch::new());
        }
        let mut buckets = BTreeMap::new();
        let mut total = 0u64;
        for pair in v.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let k = pair[0].as_i64()?;
            let n = pair[1].as_u64()?;
            if n == 0 || buckets.insert(k, n).is_some() {
                return None;
            }
            total = total.checked_add(n)?;
        }
        if total != count {
            return None;
        }
        let min = v.get("min")?.as_f64()?;
        let max = v.get("max")?.as_f64()?;
        if min > max {
            return None;
        }
        Some(QuantileSketch {
            buckets,
            count,
            sum: v.get("sum")?.as_f64()?,
            abs_sum: v.get("abs_sum")?.as_f64()?,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &v in values {
            s.observe(v);
        }
        s
    }

    /// The documented bound, with MIN_MAG slack for near-zero values.
    fn within_bound(sketch: f64, exact: f64) -> bool {
        (sketch - exact).abs() <= RELATIVE_ERROR * exact.abs() + MIN_MAG
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn exact_moments_are_exact() {
        let s = sketch_of(&[3.0, -1.0, 2.0, 0.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Some(1.0));
        assert_eq!(s.mean_abs(), Some(1.5));
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn quantiles_track_known_series_within_bound() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 / 7.0).collect();
        let s = sketch_of(&values);
        let exact = crate::Percentiles::of(&values).unwrap();
        for (q, e) in [(0.5, exact.p50), (0.95, exact.p95), (0.99, exact.p99)] {
            let got = s.quantile(q).unwrap();
            assert!(within_bound(got, e), "q={q}: got {got}, exact {e}");
        }
        assert_eq!(s.quantile(0.0), Some(values[0]), "clamped to exact min");
        assert_eq!(s.quantile(1.0), Some(values[999]), "clamped to exact max");
    }

    #[test]
    fn negative_and_zero_values_keep_value_order() {
        // Sorted: -50, -0.5, 0, 0.5, 50 — nearest rank 2/3/4 at
        // q = 0.25/0.5/0.75.
        let values = [0.5, -50.0, 0.0, 50.0, -0.5];
        let s = sketch_of(&values);
        let q25 = s.quantile(0.25).unwrap();
        let q75 = s.quantile(0.75).unwrap();
        assert!(q25 < 0.0 && within_bound(q25, -0.5), "{q25}");
        assert!(q75 > 0.0 && within_bound(q75, 0.5), "{q75}");
        assert!(within_bound(s.quantile(0.5).unwrap(), 0.0));
        assert_eq!(s.quantile(0.0), Some(-50.0));
        assert_eq!(s.quantile(1.0), Some(50.0));
    }

    #[test]
    fn merge_is_commutative_and_split_merge_matches_the_whole() {
        let all: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 40.0).collect();
        let (a, b) = (sketch_of(&all[..123]), sketch_of(&all[123..]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is exactly commutative");
        // Against the sequentially-built whole: every bucket-derived
        // answer is identical; only the running `sum` may differ in
        // f64 grouping, so the mean is compared with an ulp margin.
        let whole = sketch_of(&all);
        assert_eq!(ab.count(), whole.count());
        assert_eq!(ab.min(), whole.min());
        assert_eq!(ab.max(), whole.max());
        for q in [0.1, 0.25, 0.5, 0.9, 0.95, 0.99] {
            assert_eq!(ab.quantile(q), whole.quantile(q), "q={q}");
        }
        let (m, w) = (ab.mean().unwrap(), whole.mean().unwrap());
        assert!((m - w).abs() <= 1e-12 * w.abs().max(1.0), "{m} vs {w}");
    }

    #[test]
    fn digest_roundtrip() {
        let s = sketch_of(&[1.5, -2.5, 0.0, 1e6, 1e-12]);
        let back = QuantileSketch::from_digest(&s.digest()).unwrap();
        assert_eq!(back, s);
        let empty = QuantileSketch::from_digest(&QuantileSketch::new().digest()).unwrap();
        assert_eq!(empty, QuantileSketch::new());
    }

    #[test]
    fn malformed_digests_are_rejected() {
        let s = sketch_of(&[1.0, 2.0]);
        let mut d = s.digest();
        if let Value::Object(obj) = &mut d {
            obj.insert("count".into(), json!(99));
        }
        assert_eq!(
            QuantileSketch::from_digest(&d),
            None,
            "bucket total must match count"
        );
        assert_eq!(QuantileSketch::from_digest(&json!({"x": 1})), None);
        assert_eq!(QuantileSketch::from_digest(&json!(null)), None);
    }
}
