//! The engine's handles into the process-wide telemetry registry.
//!
//! Resolved once (behind a `OnceLock`) and then updated through plain
//! atomics, so the sweep hot loop never touches the registry lock.
//! Series follow the workspace naming scheme
//! (`synapse_engine_<name>`, base units, `_total` on counters); the
//! full catalog lives in the README's Observability section.

use std::sync::{Arc, OnceLock};

use synapse_telemetry::{global, Counter, Histogram, DURATION_BUCKETS};

/// Per-stage wall-time histograms plus the per-point latency series.
pub(crate) struct EngineMetrics {
    /// Latency of `simulate_point` for points that missed the cache.
    pub simulate_seconds: Arc<Histogram>,
    /// Latency of the result-cache probe (hit or miss).
    pub cache_lookup_seconds: Arc<Histogram>,
    /// Points served from the result cache.
    pub cache_hits: Arc<Counter>,
    /// Points that missed the cache and were simulated.
    pub cache_misses: Arc<Counter>,
    /// Points executed (hits + misses), across all campaigns.
    pub points: Arc<Counter>,
    /// Campaigns run to completion in this process.
    pub campaigns: Arc<Counter>,
    /// Grid-expansion wall time per campaign.
    pub stage_expansion: Arc<Histogram>,
    /// Sweep (simulate/lookup pool) wall time per campaign.
    pub stage_sweep: Arc<Histogram>,
    /// Aggregation (persist + report assembly) wall time per campaign.
    pub stage_aggregation: Arc<Histogram>,
}

impl EngineMetrics {
    /// The process-wide handles (registering the series on first use).
    pub fn get() -> &'static EngineMetrics {
        static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = global();
            let stage = |name: &str| {
                r.histogram_with(
                    "synapse_engine_stage_seconds",
                    "Wall time of one campaign stage, per campaign run.",
                    DURATION_BUCKETS,
                    &[("stage", name)],
                )
            };
            EngineMetrics {
                simulate_seconds: r.histogram(
                    "synapse_engine_simulate_seconds",
                    "Per-point simulation latency (cache misses only).",
                    DURATION_BUCKETS,
                ),
                cache_lookup_seconds: r.histogram(
                    "synapse_engine_cache_lookup_seconds",
                    "Per-point result-cache probe latency.",
                    DURATION_BUCKETS,
                ),
                cache_hits: r.counter(
                    "synapse_engine_cache_hits_total",
                    "Points served from the result cache.",
                ),
                cache_misses: r.counter(
                    "synapse_engine_cache_misses_total",
                    "Points that missed the cache and were simulated.",
                ),
                points: r.counter(
                    "synapse_engine_points_total",
                    "Scenario points executed (cache hits included).",
                ),
                campaigns: r.counter(
                    "synapse_engine_campaigns_total",
                    "Campaigns run to completion by this process.",
                ),
                stage_expansion: stage("expansion"),
                stage_sweep: stage("sweep"),
                stage_aggregation: stage("aggregation"),
            }
        })
    }
}
