//! Live, incrementally-maintained campaign aggregates.
//!
//! The offline path ([`crate::aggregate`]) sorts every series after
//! the sweep; a watcher-facing server cannot afford that per viewer,
//! and must answer *mid-sweep*. [`LiveAggregates`] is the shared
//! incremental view: one per campaign, updated in O(axes) per
//! [`PointResult`] from the engine's observer seam, read concurrently
//! by every watcher and by `GET /campaigns/<id>/aggregates`.
//!
//! Slices are keyed by the same `(axis, value)` table as the offline
//! report ([`crate::aggregate::AXES`]); each slice holds one
//! [`QuantileSketch`] per metric (`tx`, `error_pct`), so count, mean,
//! min and max are exact and quantiles carry the sketch's documented
//! error bound. A monotone version counter stamps every slice on
//! update, which is what makes **delta** snapshots possible: a caller
//! that remembers the version of its last emission gets back only the
//! slices that changed since ([`LiveAggregates::delta_since`]).
//!
//! For distributed runs, workers ship their lease's aggregates as a
//! wire digest ([`LiveAggregates::digest`]); the coordinator folds
//! them in with [`LiveAggregates::merge_digest`]. Sketch merging is
//! bucket-count addition, so the merged view agrees with a
//! single-process run on every exact moment and within sketch error
//! on quantiles, no matter how the grid was leased.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde_json::{json, Value};
use synapse_telemetry::{global, Counter, Histogram, SIZE_BUCKETS};

use crate::aggregate::{axis_keys, AxisSlice};
use crate::runner::PointResult;
use crate::sketch::QuantileSketch;

/// Version stamped on snapshot deltas and worker digests (`"v"` key).
/// Consumers accept any version ≤ theirs and must ignore unknown
/// keys; the version bumps only when an existing key changes meaning.
pub const AGGREGATES_VERSION: u64 = 1;

/// Metric names carried per slice, in render (alphabetical) order.
pub const METRICS: [&str; 2] = ["error_pct", "tx"];

/// One slice's (or the campaign-wide node's) metric sketches.
#[derive(Debug, Clone, Default)]
struct SliceNode {
    error_pct: QuantileSketch,
    tx: QuantileSketch,
    /// [`Inner::version`] at this node's last update.
    version: u64,
}

impl SliceNode {
    fn observe(&mut self, tx: f64, error_pct: f64, version: u64) {
        self.tx.observe(tx);
        self.error_pct.observe(error_pct);
        self.version = version;
    }

    fn merge(&mut self, other: &SliceNode, version: u64) {
        self.tx.merge(&other.tx);
        self.error_pct.merge(&other.error_pct);
        self.version = version;
    }

    /// `{"error_pct": {...stats...}, "tx": {...}}`, optionally
    /// restricted to one metric.
    fn metrics_value(&self, metric: Option<&str>) -> Value {
        let mut map = serde_json::Map::new();
        for (name, sketch) in [("error_pct", &self.error_pct), ("tx", &self.tx)] {
            if metric.is_none_or(|m| m == name) {
                map.insert(name.to_string(), stats_value(sketch));
            }
        }
        Value::Object(map)
    }

    fn digest(&self) -> Value {
        json!({
            "error_pct": self.error_pct.digest(),
            "tx": self.tx.digest(),
        })
    }

    fn from_digest(v: &Value) -> Option<SliceNode> {
        Some(SliceNode {
            error_pct: QuantileSketch::from_digest(v.get("error_pct")?)?,
            tx: QuantileSketch::from_digest(v.get("tx")?)?,
            version: 0,
        })
    }
}

/// Render one sketch as the stats object watchers consume:
/// `n`/`mean`/`min`/`max` exact, `p50`/`p95`/`p99` within sketch
/// error. An empty sketch renders `{"n": 0}`.
fn stats_value(sketch: &QuantileSketch) -> Value {
    match sketch.percentiles() {
        Some(p) => json!({
            "max": p.max,
            "mean": p.mean,
            "min": p.min,
            "n": p.n,
            "p50": p.p50,
            "p95": p.p95,
            "p99": p.p99,
        }),
        None => json!({"n": 0}),
    }
}

struct Inner {
    /// `(axis, value)` → sketches; BTreeMap order is render order.
    slices: BTreeMap<(String, String), SliceNode>,
    /// The campaign-wide node (all points, no slicing).
    overall: SliceNode,
    /// Bumped once per mutation; slices remember the version of their
    /// last change, enabling delta reads.
    version: u64,
}

/// Shared live aggregates for one campaign. All methods are
/// thread-safe; `record` is called from engine observer context and
/// must stay cheap.
pub struct LiveAggregates {
    inner: Mutex<Inner>,
}

impl Default for LiveAggregates {
    fn default() -> LiveAggregates {
        LiveAggregates::new()
    }
}

impl LiveAggregates {
    /// An empty aggregate view.
    pub fn new() -> LiveAggregates {
        LiveAggregates {
            inner: Mutex::new(Inner {
                slices: BTreeMap::new(),
                overall: SliceNode::default(),
                version: 0,
            }),
        }
    }

    /// Fold one finished point in: the overall node plus one slice per
    /// report axis. O(axes · log slices) per point, independent of how
    /// many points came before.
    pub fn record(&self, result: &PointResult) {
        let tx = result.tx;
        let err = result.error_pct();
        let keys = axis_keys(result);
        let mut inner = self.inner.lock().expect("live aggregates lock");
        inner.version += 1;
        let version = inner.version;
        inner.overall.observe(tx, err, version);
        for (axis, value) in keys {
            inner
                .slices
                .entry((axis.to_string(), value))
                .or_default()
                .observe(tx, err, version);
        }
        AggregateMetrics::get().updates.inc();
    }

    /// Current version: advances on every mutation. A reader that
    /// remembers it can later ask [`LiveAggregates::delta_since`] for
    /// just what changed.
    pub fn version(&self) -> u64 {
        self.inner.lock().expect("live aggregates lock").version
    }

    /// Points folded in so far.
    pub fn points(&self) -> u64 {
        self.inner
            .lock()
            .expect("live aggregates lock")
            .overall
            .tx
            .count()
    }

    /// Exact mean of `|error_pct|` across all recorded points (the
    /// figure the legacy snapshot carried as a hand-maintained sum).
    pub fn mean_abs_error_pct(&self) -> Option<f64> {
        self.inner
            .lock()
            .expect("live aggregates lock")
            .overall
            .error_pct
            .mean_abs()
    }

    /// The slices that changed after version `since`, rendered for the
    /// snapshot-delta wire format, plus the version to remember for
    /// the next call. `since = 0` returns everything.
    pub fn delta_since(&self, since: u64) -> (Vec<Value>, u64) {
        let inner = self.inner.lock().expect("live aggregates lock");
        let slices = inner
            .slices
            .iter()
            .filter(|(_, node)| node.version > since)
            .map(|((axis, value), node)| {
                json!({
                    "axis": axis,
                    "metrics": node.metrics_value(None),
                    "value": value,
                })
            })
            .collect();
        (slices, inner.version)
    }

    /// Full pull-mode render for `GET /campaigns/<id>/aggregates`,
    /// optionally filtered to one axis and/or one metric. Axis and
    /// metric names are validated by the caller against
    /// [`crate::aggregate::AXES`] / [`METRICS`].
    pub fn render(&self, axis: Option<&str>, metric: Option<&str>) -> Value {
        let inner = self.inner.lock().expect("live aggregates lock");
        let slices: Vec<Value> = inner
            .slices
            .iter()
            .filter(|((a, _), _)| axis.is_none_or(|want| want == a))
            .map(|((a, value), node)| {
                json!({
                    "axis": a,
                    "metrics": node.metrics_value(metric),
                    "value": value,
                })
            })
            .collect();
        json!({
            "overall": {"metrics": inner.overall.metrics_value(metric)},
            "points": inner.overall.tx.count(),
            "slices": Value::Array(slices),
            "v": AGGREGATES_VERSION,
        })
    }

    /// Wire digest of the whole view, for worker → coordinator
    /// shipment on lease completion.
    pub fn digest(&self) -> Value {
        let inner = self.inner.lock().expect("live aggregates lock");
        let slices: Vec<Value> = inner
            .slices
            .iter()
            .map(|((axis, value), node)| {
                let mut map = serde_json::Map::new();
                map.insert("axis".into(), json!(axis));
                map.insert("value".into(), json!(value));
                if let Value::Object(metrics) = node.digest() {
                    map.extend(metrics);
                }
                Value::Object(map)
            })
            .collect();
        json!({
            "overall": inner.overall.digest(),
            "slices": Value::Array(slices),
            "v": AGGREGATES_VERSION,
        })
    }

    /// Fold a worker digest in. Returns the number of slices merged,
    /// or `None` — with this view untouched — on any shape mismatch
    /// or an unsupported (newer) version.
    pub fn merge_digest(&self, v: &Value) -> Option<usize> {
        if v.get("v")?.as_u64()? > AGGREGATES_VERSION {
            return None;
        }
        let overall = SliceNode::from_digest(v.get("overall")?)?;
        let mut parsed: Vec<((String, String), SliceNode)> = Vec::new();
        for slice in v.get("slices")?.as_array()? {
            let axis = slice.get("axis")?.as_str()?.to_string();
            let value = slice.get("value")?.as_str()?.to_string();
            parsed.push(((axis, value), SliceNode::from_digest(slice)?));
        }
        // Everything parsed: now mutate, under one version bump.
        let merged = parsed.len();
        let mut inner = self.inner.lock().expect("live aggregates lock");
        inner.version += 1;
        let version = inner.version;
        inner.overall.merge(&overall, version);
        for (key, node) in parsed {
            inner.slices.entry(key).or_default().merge(&node, version);
        }
        Some(merged)
    }

    /// The offline-report shape, computed from the sketches: exact
    /// `n`/`mean`/`min`/`max`, quantiles within sketch error. Lets
    /// large-grid report consumers reuse the watchers' computation
    /// instead of re-sorting every slice.
    pub fn approx_slices(&self) -> Vec<AxisSlice> {
        let inner = self.inner.lock().expect("live aggregates lock");
        inner
            .slices
            .iter()
            .filter_map(|((axis, value), node)| {
                Some(AxisSlice {
                    axis: axis.clone(),
                    value: value.clone(),
                    tx: node.tx.percentiles()?,
                    error_pct: node.error_pct.percentiles()?,
                })
            })
            .collect()
    }
}

/// Handles into the process-wide telemetry registry for the
/// aggregates plane (`synapse_aggregates_*`; see the README catalog).
pub struct AggregateMetrics {
    /// Point observations folded into any live view.
    pub updates: Arc<Counter>,
    /// Snapshot delta events emitted to event streams.
    pub snapshots_emitted: Arc<Counter>,
    /// Pull-mode aggregate queries served.
    pub queries: Arc<Counter>,
    /// Serialized size of emitted snapshot deltas, in bytes.
    pub snapshot_bytes: Arc<Histogram>,
}

impl AggregateMetrics {
    /// The process-wide handles (registering the series on first use).
    pub fn get() -> &'static AggregateMetrics {
        static METRICS: OnceLock<AggregateMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = global();
            AggregateMetrics {
                updates: r.counter(
                    "synapse_aggregates_updates_total",
                    "Point observations folded into live aggregate views.",
                ),
                snapshots_emitted: r.counter(
                    "synapse_aggregates_snapshots_emitted_total",
                    "Aggregate snapshot delta events emitted to event streams.",
                ),
                queries: r.counter(
                    "synapse_aggregates_queries_total",
                    "Pull-mode aggregate queries served.",
                ),
                snapshot_bytes: r.histogram(
                    "synapse_aggregates_snapshot_bytes",
                    "Serialized size of emitted aggregate snapshot deltas.",
                    SIZE_BUCKETS,
                ),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{axis_slices, AXES};
    use crate::cache::ResultCache;
    use crate::grid::expand;
    use crate::runner::{run_points, RunConfig};
    use crate::sketch::{MIN_MAG, RELATIVE_ERROR};
    use crate::spec::CampaignSpec;

    fn results() -> Vec<PointResult> {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "live"
            machines = ["thinkie", "stampede", "titan"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 100000]
            "#,
        )
        .unwrap();
        run_points(
            &expand(&spec),
            &ResultCache::in_memory(),
            &RunConfig::default(),
        )
        .unwrap()
        .0
    }

    fn live_of(results: &[PointResult]) -> LiveAggregates {
        let live = LiveAggregates::new();
        for r in results {
            live.record(r);
        }
        live
    }

    #[test]
    fn render_covers_every_axis_with_exact_counts() {
        let rs = results();
        let live = live_of(&rs);
        assert_eq!(live.points(), rs.len() as u64);
        let doc = live.render(None, None);
        assert_eq!(doc["v"].as_u64(), Some(AGGREGATES_VERSION));
        let slices = doc["slices"].as_array().unwrap();
        let exact = axis_slices(&rs);
        assert_eq!(slices.len(), exact.len(), "one slice per (axis, value)");
        for (got, want) in slices.iter().zip(&exact) {
            assert_eq!(got["axis"].as_str().unwrap(), want.axis);
            assert_eq!(got["value"].as_str().unwrap(), want.value);
            let tx = &got["metrics"]["tx"];
            assert_eq!(tx["n"].as_u64().unwrap() as usize, want.tx.n);
            // The offline mean sums *sorted* values; the live mean
            // sums in arrival order — identical up to f64 grouping.
            let mean = tx["mean"].as_f64().unwrap();
            assert!((mean - want.tx.mean).abs() <= 1e-9 * want.tx.mean.abs().max(1.0));
            assert_eq!(tx["min"].as_f64().unwrap(), want.tx.min);
            assert_eq!(tx["max"].as_f64().unwrap(), want.tx.max);
        }
    }

    #[test]
    fn filters_restrict_axis_and_metric() {
        let live = live_of(&results());
        let doc = live.render(Some("machine"), Some("tx"));
        let slices = doc["slices"].as_array().unwrap();
        assert_eq!(slices.len(), 3, "three machines");
        for s in slices {
            assert_eq!(s["axis"].as_str(), Some("machine"));
            assert!(s["metrics"]["tx"].as_object().is_some());
            assert!(
                s["metrics"].get("error_pct").is_none(),
                "metric filter drops the other metric"
            );
        }
    }

    #[test]
    fn delta_reads_return_only_changed_slices() {
        let rs = results();
        let live = LiveAggregates::new();
        for r in &rs[..rs.len() - 1] {
            live.record(r);
        }
        let (all, cursor) = live.delta_since(0);
        assert!(!all.is_empty(), "since 0 returns everything");
        let (none, same) = live.delta_since(cursor);
        assert!(none.is_empty(), "nothing changed since the cursor");
        assert_eq!(same, cursor);
        live.record(&rs[rs.len() - 1]);
        let (delta, next) = live.delta_since(cursor);
        assert!(next > cursor);
        // One point touches exactly one value per axis.
        assert_eq!(delta.len(), AXES.len());
        assert!(delta.len() < all.len(), "a delta, not a full snapshot");
    }

    #[test]
    fn digest_merge_reproduces_direct_recording() {
        let rs = results();
        let (left, right) = rs.split_at(5);
        let (a, b) = (live_of(left).digest(), live_of(right).digest());
        let merged = LiveAggregates::new();
        assert!(merged.merge_digest(&a).is_some());
        assert!(merged.merge_digest(&b).is_some());
        // Merge order must not matter (exactly — two-operand f64
        // addition is commutative).
        let flipped = LiveAggregates::new();
        assert!(flipped.merge_digest(&b).is_some());
        assert!(flipped.merge_digest(&a).is_some());
        assert_eq!(
            serde_json::to_string(&merged.render(None, None)).unwrap(),
            serde_json::to_string(&flipped.render(None, None)).unwrap(),
        );
        // Against single-process recording: every bucket-derived and
        // count/min/max answer is identical; means agree up to f64
        // sum grouping across the split.
        let whole = live_of(&rs);
        let (ms, ws) = (merged.approx_slices(), whole.approx_slices());
        assert_eq!(ms.len(), ws.len());
        for (m, w) in ms.iter().zip(&ws) {
            assert_eq!(
                (m.axis.as_str(), m.value.as_str()),
                (w.axis.as_str(), w.value.as_str())
            );
            assert_eq!(m.tx.n, w.tx.n);
            assert_eq!((m.tx.min, m.tx.max), (w.tx.min, w.tx.max));
            assert_eq!(
                (m.tx.p50, m.tx.p95, m.tx.p99),
                (w.tx.p50, w.tx.p95, w.tx.p99)
            );
            assert!((m.tx.mean - w.tx.mean).abs() <= 1e-9 * w.tx.mean.abs().max(1.0));
        }
        let (m_err, w_err) = (
            merged.mean_abs_error_pct().unwrap(),
            whole.mean_abs_error_pct().unwrap(),
        );
        assert!((m_err - w_err).abs() <= 1e-9 * w_err.abs().max(1.0));
    }

    #[test]
    fn malformed_digest_leaves_the_view_untouched() {
        let live = live_of(&results());
        let before = serde_json::to_string(&live.render(None, None)).unwrap();
        assert_eq!(live.merge_digest(&json!({"v": 1})), None);
        assert_eq!(
            live.merge_digest(&json!({"v": AGGREGATES_VERSION + 1, "slices": [], "overall": {}})),
            None,
            "newer digest versions are refused"
        );
        let mut truncated = live.digest();
        if let Value::Object(obj) = &mut truncated {
            obj.insert("slices".into(), json!([{"axis": "machine"}]));
        }
        assert_eq!(live.merge_digest(&truncated), None);
        assert_eq!(
            serde_json::to_string(&live.render(None, None)).unwrap(),
            before
        );
    }

    #[test]
    fn approx_slices_track_the_exact_report_within_sketch_error() {
        let rs = results();
        let approx = live_of(&rs).approx_slices();
        let exact = axis_slices(&rs);
        assert_eq!(approx.len(), exact.len());
        for (a, e) in approx.iter().zip(&exact) {
            assert_eq!(
                (a.axis.as_str(), a.value.as_str()),
                (e.axis.as_str(), e.value.as_str())
            );
            assert_eq!(a.tx.n, e.tx.n);
            assert!((a.tx.mean - e.tx.mean).abs() <= 1e-9 * e.tx.mean.abs().max(1.0));
            assert_eq!((a.tx.min, a.tx.max), (e.tx.min, e.tx.max));
            for (got, want) in [
                (a.tx.p50, e.tx.p50),
                (a.tx.p95, e.tx.p95),
                (a.tx.p99, e.tx.p99),
                (a.error_pct.p50, e.error_pct.p50),
                (a.error_pct.p95, e.error_pct.p95),
                (a.error_pct.p99, e.error_pct.p99),
            ] {
                assert!(
                    (got - want).abs() <= RELATIVE_ERROR * want.abs() + MIN_MAG,
                    "{}/{}: got {got}, want {want}",
                    a.axis,
                    a.value
                );
            }
        }
    }
}
