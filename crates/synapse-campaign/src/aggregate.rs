//! Aggregate statistics over campaign results.
//!
//! Three views, mirroring how the paper reads its sweeps:
//!
//! * [`Percentiles`] — mean/p50/p95/p99 summaries of any metric,
//! * [`axis_slices`] — one summary per axis value (all `machine=comet`
//!   points, all `kernel=c` points, ...), the campaign analogue of the
//!   paper's per-machine/per-kernel figures,
//! * [`reference_errors`] — per-machine runtime deviation against a
//!   designated reference machine, the cross-resource portability view
//!   of E.2.

use serde::{Deserialize, Serialize};

use crate::runner::PointResult;

/// Order-statistics summary of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Summarize a series (`None` for an empty one).
    pub fn of(values: &[f64]) -> Option<Percentiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        let rank = |p: f64| -> f64 {
            // Nearest-rank percentile: ceil(p/100 · n), 1-indexed.
            let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
            sorted[idx.min(sorted.len()) - 1]
        };
        Some(Percentiles {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Summary of every point sharing one axis value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisSlice {
    /// Axis name (`machine`, `kernel`, `workload`, `mode`, `threads`,
    /// `io_block`, `sample_rate`, `steps`, `fs`, `atoms`).
    pub axis: String,
    /// The shared axis value, rendered as text.
    pub value: String,
    /// Emulated runtime summary across the slice.
    pub tx: Percentiles,
    /// Emulation-vs-application error summary (percent).
    pub error_pct: Percentiles,
}

type AxisKeyFn = fn(&PointResult) -> String;

/// The slice-keying table: every report axis with its value renderer,
/// in alphabetical (= report) order. Offline reports
/// ([`axis_slices`]) and the live plane ([`crate::live`]) both key
/// from this one table, so their slice coordinates can never drift.
pub const AXES: [(&str, AxisKeyFn); 11] = [
    ("atoms", |r| r.point.atoms.clone()),
    ("fs", |r| r.point.fs.clone()),
    ("io_block", |r| r.point.io_block.to_string()),
    ("kernel", |r| r.point.kernel.clone()),
    ("machine", |r| r.point.machine.clone()),
    ("mode", |r| r.point.mode.clone()),
    ("sample_order", |r| r.point.sample_order.clone()),
    ("sample_rate", |r| format!("{}", r.point.sample_rate)),
    ("steps", |r| r.point.steps.to_string()),
    ("threads", |r| r.point.threads.to_string()),
    ("workload", |r| r.point.workload.clone()),
];

/// The `(axis, value)` coordinates of one result, one per [`AXES`]
/// entry.
pub fn axis_keys(r: &PointResult) -> [(&'static str, String); 11] {
    AXES.map(|(axis, key_of)| (axis, key_of(r)))
}

/// Slice results along every axis: one [`AxisSlice`] per axis value,
/// sorted by `(axis, value)` for deterministic reports.
pub fn axis_slices(results: &[PointResult]) -> Vec<AxisSlice> {
    let mut slices = Vec::new();
    for (axis, key_of) in AXES {
        let mut groups: std::collections::BTreeMap<String, Vec<&PointResult>> =
            std::collections::BTreeMap::new();
        for r in results {
            groups.entry(key_of(r)).or_default().push(r);
        }
        for (value, group) in groups {
            let tx: Vec<f64> = group.iter().map(|r| r.tx).collect();
            let err: Vec<f64> = group.iter().map(|r| r.error_pct()).collect();
            slices.push(AxisSlice {
                axis: axis.to_string(),
                value,
                tx: Percentiles::of(&tx).expect("non-empty group"),
                error_pct: Percentiles::of(&err).expect("non-empty group"),
            });
        }
    }
    slices
}

/// Per-machine runtime deviation against the reference machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceError {
    /// The compared machine.
    pub machine: String,
    /// Scenario pairs compared.
    pub pairs: usize,
    /// Summary of the *signed* relative runtime difference vs. the
    /// reference machine, in percent (negative ⇒ faster than the
    /// reference).
    pub rel_diff_pct: Percentiles,
}

/// Compare every machine's runtimes against the reference machine on
/// otherwise-identical scenario points.
pub fn reference_errors(results: &[PointResult], reference: &str) -> Vec<ReferenceError> {
    use std::collections::BTreeMap;
    // Key a point by every axis except the machine.
    let key_of = |r: &PointResult| {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            r.point.workload,
            r.point.steps,
            r.point.kernel,
            r.point.mode,
            r.point.threads,
            r.point.io_block,
            r.point.sample_rate,
            r.point.fs,
            r.point.atoms,
            r.point.sample_order,
        )
    };
    let mut ref_tx: BTreeMap<String, f64> = BTreeMap::new();
    for r in results {
        if r.point.machine == reference {
            ref_tx.insert(key_of(r), r.tx);
        }
    }
    let mut diffs: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in results {
        if r.point.machine == reference {
            continue;
        }
        if let Some(&base) = ref_tx.get(&key_of(r)) {
            if base > 0.0 {
                diffs
                    .entry(r.point.machine.clone())
                    .or_default()
                    .push((r.tx - base) / base * 100.0);
            }
        }
    }
    diffs
        .into_iter()
        .filter_map(|(machine, d)| {
            Percentiles::of(&d).map(|rel_diff_pct| ReferenceError {
                machine,
                pairs: d.len(),
                rel_diff_pct,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::grid::expand;
    use crate::runner::{run_points, RunConfig};
    use crate::spec::CampaignSpec;

    #[test]
    fn percentiles_of_known_series() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::of(&values).unwrap();
        assert_eq!(p.n, 100);
        assert_eq!(p.mean, 50.5);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
        assert!(Percentiles::of(&[]).is_none());
        let single = Percentiles::of(&[7.0]).unwrap();
        assert_eq!(single.p50, 7.0);
        assert_eq!(single.p99, 7.0);
    }

    fn results() -> Vec<PointResult> {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "agg"
            machines = ["thinkie", "stampede", "titan"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 100000]
            "#,
        )
        .unwrap();
        run_points(
            &expand(&spec),
            &ResultCache::in_memory(),
            &RunConfig::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn slices_cover_every_axis_value() {
        let rs = results();
        let slices = axis_slices(&rs);
        let machines: Vec<&str> = slices
            .iter()
            .filter(|s| s.axis == "machine")
            .map(|s| s.value.as_str())
            .collect();
        assert_eq!(machines, vec!["stampede", "thinkie", "titan"]);
        let kernel_ns: Vec<usize> = slices
            .iter()
            .filter(|s| s.axis == "kernel")
            .map(|s| s.tx.n)
            .collect();
        // 12 points split evenly over 2 kernels.
        assert_eq!(kernel_ns, vec![6, 6]);
        for s in &slices {
            assert!(s.tx.min <= s.tx.p50 && s.tx.p50 <= s.tx.p99);
            assert!(s.tx.p99 <= s.tx.max);
        }
    }

    #[test]
    fn slices_are_deterministically_ordered() {
        let rs = results();
        assert_eq!(axis_slices(&rs), axis_slices(&rs));
        let axes: Vec<String> = axis_slices(&rs).iter().map(|s| s.axis.clone()).collect();
        let mut sorted = axes.clone();
        sorted.sort();
        assert_eq!(axes, sorted, "slices grouped by axis in sorted order");
    }

    #[test]
    fn reference_errors_compare_against_reference() {
        let rs = results();
        let errs = reference_errors(&rs, "thinkie");
        assert_eq!(errs.len(), 2, "stampede and titan");
        for e in &errs {
            assert_eq!(e.pairs, 4, "2 step counts × 2 kernels");
        }
        // Stampede's Xeons beat the 2010 laptop; Titan's slow Opteron
        // cores do not (E.4 makes the same observation vs. Supermic).
        let by_machine = |m: &str| errs.iter().find(|e| e.machine == m).unwrap().rel_diff_pct;
        assert!(
            by_machine("stampede").mean < 0.0,
            "{:?}",
            by_machine("stampede")
        );
        assert!(by_machine("titan").mean > 0.0, "{:?}", by_machine("titan"));
        // The reference machine never compares against itself.
        assert!(reference_errors(&rs, "titan")
            .iter()
            .all(|e| e.machine != "titan"));
    }
}
