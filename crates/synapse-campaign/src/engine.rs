//! The resumable, observer-driven point-execution core.
//!
//! [`crate::runner::run_points`] used to own the worker pool directly;
//! long-running frontends (notably `synapse serve`) need to *watch* a
//! sweep while it runs and *stop* one mid-grid, so the pool now lives
//! here. [`CampaignEngine`] drives the same deterministic sweep, but
//!
//! * emits a [`PointEvent`] through a caller-supplied observer the
//!   moment each point lands (in completion order — every event
//!   carries the point's grid index and a running `done` counter), and
//! * checks a shared [`CancelToken`] between points, so cancellation
//!   takes effect after the in-flight points finish instead of after
//!   the whole grid drains.
//!
//! The observer runs on worker threads: it must be `Sync`, and it
//! should be cheap (push to a buffer, send on a channel) — a slow
//! observer backpressures the sweep.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cache::{fingerprint, ResultCache};
use crate::error::CampaignError;
use crate::grid::ScenarioPoint;
use crate::metrics::EngineMetrics;
use crate::runner::{simulate_point, PointResult, RunConfig, RunStats};

/// A shared cooperative-cancellation flag.
///
/// Clones observe the same flag; any holder can [`cancel`] and every
/// worker sees it before claiming its next point. Cancellation is
/// cooperative — a point already simulating finishes first.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// What the engine tells its observer while a sweep runs.
#[derive(Debug, Clone)]
pub enum PointEvent {
    /// The sweep is about to start executing points.
    Started {
        /// Total points in the grid.
        total: usize,
    },
    /// One point landed (emitted in completion order, not grid order).
    PointDone {
        /// The point's result, shared with the engine's own collection
        /// (an `Arc` so emitting costs no copy; it also keeps this
        /// variant pointer-sized).
        result: Arc<PointResult>,
        /// Whether the result came from the cache.
        cached: bool,
        /// Points completed so far, this one included.
        done: usize,
        /// Total points in the grid.
        total: usize,
    },
    /// Every point landed; the sweep is complete.
    Finished {
        /// The run's execution counters.
        stats: RunStats,
    },
    /// The sweep stopped early on a [`CancelToken`].
    Cancelled {
        /// Points that completed before the workers stopped.
        done: usize,
        /// Total points in the grid.
        total: usize,
    },
}

/// The point-execution core: a worker pool over one scenario grid,
/// memoizing through a [`ResultCache`] and reporting progress through
/// an observer callback.
pub struct CampaignEngine<'a> {
    points: &'a [ScenarioPoint],
    cache: &'a ResultCache,
    config: &'a RunConfig,
}

impl<'a> CampaignEngine<'a> {
    /// An engine over `points`, memoizing through `cache`.
    pub fn new(
        points: &'a [ScenarioPoint],
        cache: &'a ResultCache,
        config: &'a RunConfig,
    ) -> CampaignEngine<'a> {
        CampaignEngine {
            points,
            cache,
            config,
        }
    }

    /// Run the sweep to completion (or cancellation), emitting a
    /// [`PointEvent`] per landed point. Results return in grid order
    /// regardless of completion order.
    ///
    /// Returns [`CampaignError::Cancelled`] when `cancel` fired before
    /// the grid drained; partial results are dropped (they are still
    /// in the cache, so a re-run pays nothing for them).
    pub fn run(
        &self,
        observer: &(dyn Fn(PointEvent) + Sync),
        cancel: &CancelToken,
    ) -> Result<(Vec<PointResult>, RunStats), CampaignError> {
        let points = self.points;
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        // The done counter doubles as the emission lock: incrementing
        // it and calling the observer happen under one guard, so
        // `done` is strictly monotone in event-emission order (the
        // documented 1..=N contract).
        let done: Mutex<usize> = Mutex::new(0);
        let simulated = AtomicUsize::new(0);
        let cache_hits = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Arc<PointResult>>>> = Mutex::new(vec![None; points.len()]);
        let first_error: Mutex<Option<CampaignError>> = Mutex::new(None);

        observer(PointEvent::Started {
            total: points.len(),
        });
        // Handles into the process registry, resolved once per run;
        // per-point updates below are plain relaxed atomics.
        let metrics = EngineMetrics::get();
        let workers = self.config.effective_workers(points.len());
        let sweep = || loop {
            if cancel.is_cancelled() {
                return;
            }
            let idx = next.fetch_add(1, Ordering::Relaxed);
            if idx >= points.len() {
                return;
            }
            if first_error.lock().expect("error lock").is_some() {
                return;
            }
            let point = &points[idx];
            let fp = fingerprint(point);
            let lookup_started = Instant::now();
            let probed = self.cache.get(&fp);
            metrics.cache_lookup_seconds.observe_since(lookup_started);
            metrics.points.inc();
            let (outcome, cached) = match probed {
                Some(mut hit) => {
                    cache_hits.fetch_add(1, Ordering::Relaxed);
                    metrics.cache_hits.inc();
                    // The fingerprint excludes the grid index,
                    // so a hit may come from a differently-
                    // shaped grid (a grown campaign): rebind it
                    // to this run's position.
                    hit.point.index = point.index;
                    (Ok(hit), true)
                }
                None => {
                    simulated.fetch_add(1, Ordering::Relaxed);
                    metrics.cache_misses.inc();
                    let sim_started = Instant::now();
                    let fresh = simulate_point(point).and_then(|r| {
                        metrics.simulate_seconds.observe_since(sim_started);
                        self.cache.put(&fp, &r)?;
                        Ok(r)
                    });
                    (fresh, false)
                }
            };
            match outcome {
                Ok(result) => {
                    let shared = Arc::new(result);
                    results.lock().expect("results lock")[idx] = Some(shared.clone());
                    let mut done_guard = done.lock().expect("done lock");
                    *done_guard += 1;
                    observer(PointEvent::PointDone {
                        result: shared,
                        cached,
                        done: *done_guard,
                        total: points.len(),
                    });
                }
                Err(e) => {
                    first_error.lock().expect("error lock").get_or_insert(e);
                    return;
                }
            }
        };
        // A single-worker sweep runs inline: spawning (and joining) a
        // scoped thread per job is measurable overhead on the server's
        // warm path, where every queued job pays it.
        if workers == 1 {
            sweep();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(sweep);
                }
            });
        }

        if let Some(e) = first_error.into_inner().expect("error lock") {
            return Err(e);
        }
        let done = done.into_inner().expect("done lock");
        if cancel.is_cancelled() && done < points.len() {
            observer(PointEvent::Cancelled {
                done,
                total: points.len(),
            });
            return Err(CampaignError::Cancelled {
                done,
                total: points.len(),
            });
        }
        let mut collected = Vec::with_capacity(points.len());
        for (i, slot) in results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .enumerate()
        {
            // A missing slot can only mean a worker bailed out after
            // the first error, which we returned above — but stay
            // defensive. Observers have usually dropped their Arc by
            // now, so the unwrap is copy-free; a holdout costs one
            // clone.
            let shared =
                slot.ok_or_else(|| CampaignError::Spec(format!("point {i} was not executed")))?;
            collected.push(Arc::try_unwrap(shared).unwrap_or_else(|held| (*held).clone()));
        }
        let sweep_secs = started.elapsed().as_secs_f64();
        metrics.stage_sweep.observe(sweep_secs);
        let stats = RunStats {
            points: points.len(),
            simulated: simulated.into_inner(),
            cache_hits: cache_hits.into_inner(),
            // The engine only sees the sweep; `run_campaign_on` widens
            // `wall_secs` to cover expansion and aggregation too.
            wall_secs: sweep_secs,
            expand_secs: 0.0,
            sweep_secs,
            aggregate_secs: 0.0,
        };
        observer(PointEvent::Finished { stats });
        Ok((collected, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::expand;
    use crate::spec::CampaignSpec;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "engine"
            seed = 21
            machines = ["thinkie", "comet", "titan"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 50000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn engine_emits_one_event_per_point_plus_lifecycle() {
        let points = expand(&spec());
        let cache = ResultCache::in_memory();
        let config = RunConfig { workers: 4 };
        let events: Mutex<Vec<PointEvent>> = Mutex::new(Vec::new());
        let engine = CampaignEngine::new(&points, &cache, &config);
        let (results, stats) = engine
            .run(&|e| events.lock().unwrap().push(e), &CancelToken::new())
            .unwrap();
        let events = events.into_inner().unwrap();
        assert_eq!(results.len(), points.len());
        assert_eq!(stats.points, points.len());
        assert_eq!(events.len(), points.len() + 2, "start + N points + finish");
        assert!(matches!(events[0], PointEvent::Started { total } if total == points.len()));
        assert!(matches!(
            events[events.len() - 1],
            PointEvent::Finished { .. }
        ));
        // Every grid index lands exactly once; `done` counts 1..=N in
        // event order.
        let mut indices = Vec::new();
        for (i, e) in events[1..events.len() - 1].iter().enumerate() {
            match e {
                PointEvent::PointDone {
                    result,
                    cached,
                    done,
                    total,
                } => {
                    assert_eq!(*done, i + 1);
                    assert_eq!(*total, points.len());
                    assert!(!cached, "cold cache");
                    indices.push(result.point.index);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        indices.sort_unstable();
        assert_eq!(indices, (0..points.len()).collect::<Vec<_>>());
    }

    #[test]
    fn warm_engine_marks_events_cached() {
        let points = expand(&spec());
        let cache = ResultCache::in_memory();
        let config = RunConfig { workers: 2 };
        let engine = CampaignEngine::new(&points, &cache, &config);
        engine.run(&|_| {}, &CancelToken::new()).unwrap();
        let cached_flags: Mutex<Vec<bool>> = Mutex::new(Vec::new());
        engine
            .run(
                &|e| {
                    if let PointEvent::PointDone { cached, .. } = e {
                        cached_flags.lock().unwrap().push(cached);
                    }
                },
                &CancelToken::new(),
            )
            .unwrap();
        let flags = cached_flags.into_inner().unwrap();
        assert_eq!(flags.len(), points.len());
        assert!(flags.iter().all(|&c| c), "warm run is all cache hits");
    }

    #[test]
    fn cancellation_stops_mid_grid_and_reruns_reuse_the_cache() {
        let points = expand(&spec());
        let cache = ResultCache::in_memory();
        let config = RunConfig { workers: 2 };
        let cancel = CancelToken::new();
        let engine = CampaignEngine::new(&points, &cache, &config);
        // Cancel as soon as the third point lands: workers stop
        // claiming new points, so the sweep ends well short of the
        // grid.
        let err = engine
            .run(
                &|e| {
                    if let PointEvent::PointDone { done, .. } = e {
                        if done >= 3 {
                            cancel.cancel();
                        }
                    }
                },
                &cancel,
            )
            .unwrap_err();
        let done = match err {
            CampaignError::Cancelled { done, total } => {
                assert_eq!(total, points.len());
                assert!(done >= 3, "at least the observed points landed");
                assert!(done < points.len(), "grid not drained");
                done
            }
            other => panic!("expected Cancelled, got {other:?}"),
        };
        // The landed points are memoized: a fresh run only simulates
        // the remainder.
        let (_, stats) = engine.run(&|_| {}, &CancelToken::new()).unwrap();
        assert_eq!(stats.cache_hits, done);
        assert_eq!(stats.simulated, points.len() - done);
    }

    #[test]
    fn pre_cancelled_token_executes_nothing() {
        let points = expand(&spec());
        let cache = ResultCache::in_memory();
        let config = RunConfig::default();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = CampaignEngine::new(&points, &cache, &config)
            .run(&|_| {}, &cancel)
            .unwrap_err();
        assert!(matches!(err, CampaignError::Cancelled { done: 0, .. }));
        assert!(cache.is_empty());
    }
}
