//! Declarative campaign specifications.
//!
//! A campaign declares *axes*; the engine sweeps their cartesian
//! product. Axes mirror the malleability dimensions of the paper's
//! evaluation: workloads × step counts (§5), machines (§5 "Experiment
//! Platform"), kernels (E.3), parallel modes and widths (E.4), I/O
//! block sizes (E.5) and profiling sample rates (E.1).

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::CampaignError;
use crate::toml::toml_to_value;

/// One workload axis entry: an application model plus step counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Application name: `gromacs` or `amber`
    /// (see [`synapse_workloads::AppModel`]).
    pub app: String,
    /// Iteration counts to sweep.
    pub steps: Vec<u64>,
}

/// Optional pilot-scheduling stage: after the sweep, each machine's
/// scenario points are packed onto a pilot agent as proxy tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PilotSpec {
    /// Scheduler policy: `fifo` or `backfill`.
    pub policy: String,
}

/// A declarative scenario sweep (deserializable from TOML or JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (reports carry it).
    pub name: String,
    /// Master seed; every scenario point derives its own seed from it.
    #[serde(default)]
    pub seed: u64,
    /// Workloads to sweep.
    pub workloads: Vec<WorkloadSpec>,
    /// Machine models to sweep (catalog names).
    pub machines: Vec<String>,
    /// Compute kernels to sweep (`asm` | `c` | `spin`).
    pub kernels: Vec<String>,
    /// Parallel modes (`openmp` | `mpi`). Empty ⇒ `["openmp"]`.
    #[serde(default)]
    pub modes: Vec<String>,
    /// Worker widths. Empty ⇒ `[1]`.
    #[serde(default)]
    pub threads: Vec<u32>,
    /// I/O block sizes in bytes. Empty ⇒ `[1 MiB]`.
    #[serde(default)]
    pub io_blocks: Vec<u64>,
    /// Profiling sample rates in Hz. Empty ⇒ `[10.0]`.
    #[serde(default)]
    pub sample_rates: Vec<f64>,
    /// Target filesystems (`default` | `local` | `lustre` | `nfs`).
    /// `default` resolves to each machine's own default filesystem.
    /// Empty ⇒ `["default"]`.
    #[serde(default)]
    pub filesystems: Vec<String>,
    /// Atom-enable ablations: which emulation atoms run per point.
    /// `all`, a `+`-joined subset of `compute`/`memory`/`storage`/
    /// `network` (e.g. `compute+storage`), or `no-<atom>` for all but
    /// one. Empty ⇒ `["all"]`.
    #[serde(default)]
    pub atoms: Vec<String>,
    /// Sample-ordering modes (`preserve` | `shuffle`): the paper's
    /// Fig. 2 sample-ordering ablation as a grid axis. `shuffle`
    /// merges the whole profile into one all-concurrent sample before
    /// replay. Empty ⇒ `["preserve"]`.
    #[serde(default)]
    pub sample_order: Vec<String>,
    /// Machine the synthetic profiles are "taken" on (the paper
    /// profiles on Thinkie). Empty ⇒ `thinkie`.
    #[serde(default)]
    pub profile_machine: String,
    /// Machine used as the baseline for relative-error aggregation.
    /// Empty ⇒ the first machine of the axis.
    #[serde(default)]
    pub reference_machine: String,
    /// Coefficient of variation of the simulated measurement noise
    /// (seeded, so still deterministic). Defaults to 0.
    #[serde(default)]
    pub noise_cv: f64,
    /// Optional pilot-scheduling stage.
    #[serde(default)]
    pub pilot: Option<PilotSpec>,
}

impl CampaignSpec {
    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        let spec: CampaignSpec = serde_json::from_str(text)?;
        spec.validated()
    }

    /// Parse a spec from TOML text (the subset documented in
    /// [`crate::toml`]).
    pub fn from_toml(text: &str) -> Result<Self, CampaignError> {
        let value = toml_to_value(text)?;
        let spec: CampaignSpec = serde_json::from_value(value)?;
        spec.validated()
    }

    /// Load a spec from a file, dispatching on the extension
    /// (`.json` ⇒ JSON, anything else ⇒ TOML).
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, CampaignError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::from_json(&text)
        } else {
            Self::from_toml(&text)
        }
    }

    /// Apply defaults and validate axis values against the catalogs.
    /// Idempotent: validating an already-canonical spec changes
    /// nothing, so specs can safely re-validate after a network hop
    /// (the cluster lease path does).
    pub fn validated(mut self) -> Result<Self, CampaignError> {
        if self.modes.is_empty() {
            self.modes = vec!["openmp".into()];
        }
        if self.threads.is_empty() {
            self.threads = vec![1];
        }
        if self.io_blocks.is_empty() {
            self.io_blocks = vec![1 << 20];
        }
        if self.sample_rates.is_empty() {
            self.sample_rates = vec![10.0];
        }
        if self.filesystems.is_empty() {
            self.filesystems = vec!["default".into()];
        }
        if self.atoms.is_empty() {
            self.atoms = vec!["all".into()];
        }
        if self.sample_order.is_empty() {
            self.sample_order = vec!["preserve".into()];
        }
        if self.profile_machine.is_empty() {
            self.profile_machine = "thinkie".into();
        }
        if self.reference_machine.is_empty() {
            self.reference_machine = self
                .machines
                .first()
                .cloned()
                .ok_or(CampaignError::EmptyAxis("machines"))?;
        }

        if self.workloads.is_empty() {
            return Err(CampaignError::EmptyAxis("workloads"));
        }
        if self.workloads.iter().any(|w| w.steps.is_empty()) {
            return Err(CampaignError::EmptyAxis("workloads.steps"));
        }
        if self.kernels.is_empty() {
            return Err(CampaignError::EmptyAxis("kernels"));
        }
        for w in &self.workloads {
            crate::grid::app_by_name(&w.app)
                .ok_or_else(|| CampaignError::UnknownWorkload(w.app.clone()))?;
        }
        for m in self
            .machines
            .iter()
            .chain([&self.profile_machine, &self.reference_machine])
        {
            if synapse_sim::machine_by_name(m).is_none() {
                return Err(CampaignError::UnknownMachine(m.clone()));
            }
        }
        for k in &self.kernels {
            crate::grid::kernel_by_name(k)
                .ok_or_else(|| CampaignError::UnknownKernel(k.clone()))?;
        }
        for m in &self.modes {
            crate::grid::mode_by_name(m).ok_or_else(|| CampaignError::UnknownMode(m.clone()))?;
        }
        // Validate *and canonicalize* the fs/atoms axes: the stored
        // strings feed fingerprints and per-point seeds, so equivalent
        // spellings ("Lustre", "storage+compute") must collapse to one
        // canonical form or identical scenarios would miss the cache
        // and draw different noise.
        for f in &mut self.filesystems {
            let resolved = crate::grid::fs_by_name(f)
                .ok_or_else(|| CampaignError::UnknownFilesystem(f.clone()))?;
            *f = match resolved {
                None => "default".into(),
                Some(kind) => kind.name().into(),
            };
        }
        for a in &mut self.atoms {
            let resolved = crate::grid::atoms_by_name(a)
                .ok_or_else(|| CampaignError::UnknownAtomSet(a.clone()))?;
            *a = resolved.canonical();
        }
        for o in &mut self.sample_order {
            let resolved = crate::grid::sample_order_by_name(o)
                .ok_or_else(|| CampaignError::UnknownSampleOrder(o.clone()))?;
            *o = resolved.into();
        }
        if !self.machines.contains(&self.reference_machine) {
            return Err(CampaignError::Spec(format!(
                "reference machine {:?} is not on the machines axis",
                self.reference_machine
            )));
        }
        if let Some(pilot) = &self.pilot {
            crate::grid::policy_by_name(&pilot.policy).ok_or_else(|| {
                CampaignError::Spec(format!(
                    "unknown pilot policy {:?} (fifo | backfill)",
                    pilot.policy
                ))
            })?;
        }
        if !self.noise_cv.is_finite() || self.noise_cv < 0.0 {
            return Err(CampaignError::Spec(format!(
                "noise_cv must be finite and >= 0, got {}",
                self.noise_cv
            )));
        }
        Ok(self)
    }

    /// Number of scenario points the spec expands into.
    pub fn point_count(&self) -> usize {
        let steps: usize = self.workloads.iter().map(|w| w.steps.len()).sum();
        steps
            * self.machines.len()
            * self.kernels.len()
            * self.modes.len()
            * self.threads.len()
            * self.io_blocks.len()
            * self.sample_rates.len()
            * self.filesystems.len()
            * self.atoms.len()
            * self.sample_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_toml() -> &'static str {
        r#"
        name = "mini"
        seed = 7
        machines = ["thinkie", "comet"]
        kernels = ["asm", "c"]

        [[workloads]]
        app = "gromacs"
        steps = [10000, 50000]
        "#
    }

    #[test]
    fn toml_spec_parses_with_defaults() {
        let spec = CampaignSpec::from_toml(minimal_toml()).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.modes, vec!["openmp".to_string()]);
        assert_eq!(spec.threads, vec![1]);
        assert_eq!(spec.io_blocks, vec![1 << 20]);
        assert_eq!(spec.sample_rates, vec![10.0]);
        assert_eq!(spec.filesystems, vec!["default".to_string()]);
        assert_eq!(spec.atoms, vec!["all".to_string()]);
        assert_eq!(spec.sample_order, vec!["preserve".to_string()]);
        assert_eq!(spec.profile_machine, "thinkie");
        assert_eq!(spec.reference_machine, "thinkie");
        assert_eq!(spec.point_count(), 2 * 2 * 2);
        assert!(spec.pilot.is_none());
    }

    #[test]
    fn json_spec_parses() {
        let json =
            serde_json::to_string(&CampaignSpec::from_toml(minimal_toml()).unwrap()).unwrap();
        let spec = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(spec.point_count(), 8);
    }

    #[test]
    fn unknown_axis_values_are_rejected() {
        let bad_machine = minimal_toml().replace("comet", "frontier");
        assert!(matches!(
            CampaignSpec::from_toml(&bad_machine),
            Err(CampaignError::UnknownMachine(_))
        ));
        let bad_kernel = minimal_toml().replace("\"c\"", "\"fortran\"");
        assert!(matches!(
            CampaignSpec::from_toml(&bad_kernel),
            Err(CampaignError::UnknownKernel(_))
        ));
        let bad_app = minimal_toml().replace("gromacs", "namd");
        assert!(matches!(
            CampaignSpec::from_toml(&bad_app),
            Err(CampaignError::UnknownWorkload(_))
        ));
    }

    #[test]
    fn reference_machine_must_be_on_axis() {
        // Top-level keys must precede table sections in TOML.
        let toml = format!("reference_machine = \"titan\"\n{}", minimal_toml());
        assert!(matches!(
            CampaignSpec::from_toml(&toml),
            Err(CampaignError::Spec(_))
        ));
        let ok = format!("reference_machine = \"comet\"\n{}", minimal_toml());
        assert_eq!(
            CampaignSpec::from_toml(&ok).unwrap().reference_machine,
            "comet"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        let toml = r#"
        name = "empty"
        machines = ["thinkie"]
        kernels = []

        [[workloads]]
        app = "gromacs"
        steps = [1000]
        "#;
        assert!(matches!(
            CampaignSpec::from_toml(toml),
            Err(CampaignError::EmptyAxis("kernels"))
        ));
    }

    #[test]
    fn filesystem_and_atom_axes_parse_and_multiply() {
        let toml = format!(
            "filesystems = [\"default\", \"lustre\"]\natoms = [\"all\", \"no-storage\"]\n{}",
            minimal_toml()
        );
        let spec = CampaignSpec::from_toml(&toml).unwrap();
        assert_eq!(
            spec.filesystems,
            vec!["default".to_string(), "lustre".into()]
        );
        assert_eq!(spec.atoms, vec!["all".to_string(), "no-storage".into()]);
        assert_eq!(spec.point_count(), 2 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn filesystem_and_atom_spellings_canonicalize() {
        // Equivalent spellings must collapse to one canonical form —
        // the stored strings feed fingerprints and per-point seeds.
        let toml = format!(
            "filesystems = [\"Lustre\", \"/tmp\"]\natoms = [\"ALL\", \"storage+compute\", \"No-Storage\"]\n{}",
            minimal_toml()
        );
        let spec = CampaignSpec::from_toml(&toml).unwrap();
        assert_eq!(spec.filesystems, vec!["lustre".to_string(), "local".into()]);
        assert_eq!(
            spec.atoms,
            vec![
                "all".to_string(),
                "compute+storage".into(),
                "no-storage".into()
            ]
        );
    }

    #[test]
    fn unknown_filesystem_and_atom_set_are_rejected() {
        let bad_fs = format!("filesystems = [\"gpfs\"]\n{}", minimal_toml());
        assert!(matches!(
            CampaignSpec::from_toml(&bad_fs),
            Err(CampaignError::UnknownFilesystem(_))
        ));
        let bad_atoms = format!("atoms = [\"no-everything\"]\n{}", minimal_toml());
        assert!(matches!(
            CampaignSpec::from_toml(&bad_atoms),
            Err(CampaignError::UnknownAtomSet(_))
        ));
    }

    #[test]
    fn sample_order_axis_parses_canonicalizes_and_multiplies() {
        let toml = format!(
            "sample_order = [\"Preserve\", \"SHUFFLE\"]\n{}",
            minimal_toml()
        );
        let spec = CampaignSpec::from_toml(&toml).unwrap();
        assert_eq!(
            spec.sample_order,
            vec!["preserve".to_string(), "shuffle".into()]
        );
        assert_eq!(spec.point_count(), 2 * 2 * 2 * 2);
        // Alternate spellings collapse onto the canonical pair.
        let merged = format!("sample_order = [\"merge\"]\n{}", minimal_toml());
        assert_eq!(
            CampaignSpec::from_toml(&merged).unwrap().sample_order,
            vec!["shuffle".to_string()]
        );
        let bad = format!("sample_order = [\"random\"]\n{}", minimal_toml());
        assert!(matches!(
            CampaignSpec::from_toml(&bad),
            Err(CampaignError::UnknownSampleOrder(_))
        ));
    }

    #[test]
    fn pilot_stage_parses() {
        let toml = format!("{}\n[pilot]\npolicy = \"backfill\"\n", minimal_toml());
        let spec = CampaignSpec::from_toml(&toml).unwrap();
        assert_eq!(spec.pilot.unwrap().policy, "backfill");
        let bad = format!("{}\n[pilot]\npolicy = \"random\"\n", minimal_toml());
        assert!(CampaignSpec::from_toml(&bad).is_err());
    }
}
