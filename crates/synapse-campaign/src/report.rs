//! Campaign reports: deterministic JSON and CSV renderings.

use serde::{Deserialize, Serialize};
use synapse_pilot::{PilotAgent, ProxyTask};
use synapse_sim::Noise;

use crate::aggregate::{axis_slices, reference_errors, AxisSlice, ReferenceError};
use crate::cache::ENGINE_VERSION;
use crate::error::CampaignError;
use crate::grid::{app_by_name, policy_by_name};
use crate::runner::PointResult;
use crate::spec::CampaignSpec;

/// One compact per-point row (the CSV payload, also embedded in the
/// JSON report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRow {
    /// Grid index.
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// Iteration count.
    pub steps: u64,
    /// Target machine.
    pub machine: String,
    /// Compute kernel.
    pub kernel: String,
    /// Parallel mode.
    pub mode: String,
    /// Worker width.
    pub threads: u32,
    /// I/O block size.
    pub io_block: u64,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Target filesystem axis value.
    pub fs: String,
    /// Atom-ablation axis value.
    pub atoms: String,
    /// Sample-ordering axis value (`preserve` | `shuffle`).
    pub sample_order: String,
    /// Emulated runtime (virtual seconds).
    pub tx: f64,
    /// Application baseline runtime.
    pub app_tx: f64,
    /// Emulation error vs. the baseline, percent.
    pub error_pct: f64,
}

/// Outcome of the optional pilot-scheduling stage on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PilotSummary {
    /// The machine the pilot occupied.
    pub machine: String,
    /// Scheduler policy used.
    pub policy: String,
    /// Tasks scheduled (= scenario points on that machine).
    pub tasks: usize,
    /// Virtual makespan of the packed workload.
    pub makespan: f64,
    /// Core-seconds utilization of the pilot.
    pub utilization: f64,
}

/// The full, deterministic campaign report.
///
/// Identical spec + seed ⇒ byte-identical [`CampaignReport::to_json`]
/// output: every collection is sorted, floats format stably, and no
/// wall-clock quantity is included (throughput lives in
/// [`crate::runner::RunStats`], which is reported separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Engine version that produced the results.
    pub engine_version: u32,
    /// Master seed.
    pub seed: u64,
    /// Total scenario points.
    pub points: usize,
    /// Reference machine for the relative-difference view.
    pub reference_machine: String,
    /// Per-axis-value summaries, sorted by (axis, value).
    pub slices: Vec<AxisSlice>,
    /// Per-machine runtime deviation vs. the reference machine.
    pub reference_errors: Vec<ReferenceError>,
    /// Pilot stage summaries (empty when the stage is disabled).
    pub pilot: Vec<PilotSummary>,
    /// Per-point rows in grid order.
    pub results: Vec<PointRow>,
}

impl CampaignReport {
    /// Assemble a report from a finished sweep.
    pub fn assemble(
        spec: &CampaignSpec,
        results: &[PointResult],
    ) -> Result<CampaignReport, CampaignError> {
        let rows = results
            .iter()
            .map(|r| PointRow {
                index: r.point.index,
                workload: r.point.workload.clone(),
                steps: r.point.steps,
                machine: r.point.machine.clone(),
                kernel: r.point.kernel.clone(),
                mode: r.point.mode.clone(),
                threads: r.point.threads,
                io_block: r.point.io_block,
                sample_rate: r.point.sample_rate,
                fs: r.point.fs.clone(),
                atoms: r.point.atoms.clone(),
                sample_order: r.point.sample_order.clone(),
                tx: r.tx,
                app_tx: r.app_tx,
                error_pct: r.error_pct(),
            })
            .collect();
        let pilot = match &spec.pilot {
            Some(p) => pilot_stage(results, &p.policy)?,
            None => Vec::new(),
        };
        Ok(CampaignReport {
            name: spec.name.clone(),
            engine_version: ENGINE_VERSION,
            seed: spec.seed,
            points: results.len(),
            reference_machine: spec.reference_machine.clone(),
            slices: axis_slices(results),
            reference_errors: reference_errors(results, &spec.reference_machine),
            pilot,
            results: rows,
        })
    }

    /// Deterministic JSON rendering (compact).
    pub fn to_json(&self) -> Result<String, CampaignError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deterministic pretty JSON rendering.
    pub fn to_json_pretty(&self) -> Result<String, CampaignError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<CampaignReport, CampaignError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Per-point CSV rendering (header + one row per point, grid
    /// order).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,workload,steps,machine,kernel,mode,threads,io_block,sample_rate,fs,atoms,sample_order,tx,app_tx,error_pct\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.index,
                r.workload,
                r.steps,
                r.machine,
                r.kernel,
                r.mode,
                r.threads,
                r.io_block,
                r.sample_rate,
                r.fs,
                r.atoms,
                r.sample_order,
                r.tx,
                r.app_tx,
                r.error_pct,
            ));
        }
        out
    }

    /// A short human-readable summary (CLI output).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign {:?}: {} points, reference machine {}\n",
            self.name, self.points, self.reference_machine
        ));
        for s in self.slices.iter().filter(|s| s.axis == "machine") {
            out.push_str(&format!(
                "  machine {:<10} tx p50={:>10.3}s p95={:>10.3}s p99={:>10.3}s  |err| mean={:>6.1}%\n",
                s.value, s.tx.p50, s.tx.p95, s.tx.p99, s.error_pct.mean.abs(),
            ));
        }
        for e in &self.reference_errors {
            out.push_str(&format!(
                "  vs {}: {:<10} mean {:+.1}% (p95 {:+.1}%) over {} pairs\n",
                self.reference_machine, e.machine, e.rel_diff_pct.mean, e.rel_diff_pct.p95, e.pairs,
            ));
        }
        for p in &self.pilot {
            out.push_str(&format!(
                "  pilot {:<10} {} tasks, makespan {:.1}s, utilization {:.0}%\n",
                p.machine,
                p.tasks,
                p.makespan,
                p.utilization * 100.0,
            ));
        }
        out
    }
}

/// Build the proxy task for one scenario point (profile synthesis is
/// the expensive part; [`pilot_stage`] fans it out over threads).
fn proxy_task(r: &PointResult) -> Result<ProxyTask, CampaignError> {
    let app = app_by_name(&r.point.workload)
        .ok_or_else(|| CampaignError::UnknownWorkload(r.point.workload.clone()))?;
    let profile_machine = synapse_sim::machine_by_name(&r.point.profile_machine)
        .ok_or_else(|| CampaignError::UnknownMachine(r.point.profile_machine.clone()))?;
    let mut noise = Noise::new(r.point.seed, r.point.noise_cv);
    let profile = app.simulate_profile(
        &profile_machine,
        r.point.steps,
        r.point.sample_rate,
        &mut noise,
    );
    // Same axis→plan mapping as the sweep itself (ProxyTask overrides
    // `plan.threads` with its core request when pricing).
    let plan = crate::runner::emulation_plan(&r.point)?;
    Ok(ProxyTask::new(
        format!("point-{:06}", r.point.index),
        r.point.threads,
        profile,
        plan,
    ))
}

/// Pack each machine's scenario points onto a pilot agent as proxy
/// tasks and report the schedule (use case 2.1 of the paper, at
/// campaign scale).
///
/// Task synthesis re-creates each point's profile — as expensive as
/// the sweep's own per-point work — so it runs across a worker pool;
/// only the (cheap, per-machine) schedule simulation is serial.
fn pilot_stage(results: &[PointResult], policy: &str) -> Result<Vec<PilotSummary>, CampaignError> {
    let policy_enum = policy_by_name(policy)
        .ok_or_else(|| CampaignError::Spec(format!("unknown pilot policy {policy:?}")))?;

    // Synthesize every point's task in parallel, keeping result order.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<ProxyTask, CampaignError>>>> = results
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
        .min(results.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= results.len() {
                    return;
                }
                *slots[idx].lock().expect("slot lock") = Some(proxy_task(&results[idx]));
            });
        }
    });
    let mut tasks_by_machine: std::collections::BTreeMap<&str, Vec<ProxyTask>> =
        std::collections::BTreeMap::new();
    for (r, slot) in results.iter().zip(slots) {
        let task = slot
            .into_inner()
            .expect("slot lock")
            .expect("every slot filled")?;
        tasks_by_machine
            .entry(r.point.machine.as_str())
            .or_default()
            .push(task);
    }

    let mut summaries = Vec::new();
    for (machine_name, tasks) in tasks_by_machine {
        let machine = synapse_sim::machine_by_name(machine_name)
            .ok_or_else(|| CampaignError::UnknownMachine(machine_name.to_string()))?;
        let agent = PilotAgent::new(machine, policy_enum);
        let schedule = agent.execute(&tasks);
        summaries.push(PilotSummary {
            machine: machine_name.to_string(),
            policy: policy.to_string(),
            tasks: schedule.tasks.len(),
            makespan: schedule.makespan,
            utilization: schedule.utilization(),
        });
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::grid::expand;
    use crate::runner::{run_points, RunConfig};

    fn spec(pilot: bool) -> CampaignSpec {
        let base = r#"
        name = "report"
        seed = 5
        machines = ["thinkie", "comet", "titan"]
        kernels = ["asm", "c"]

        [[workloads]]
        app = "gromacs"
        steps = [10000, 100000]
        "#;
        let text = if pilot {
            format!("{base}\n[pilot]\npolicy = \"backfill\"\n")
        } else {
            base.to_string()
        };
        CampaignSpec::from_toml(&text).unwrap()
    }

    fn report(pilot: bool) -> CampaignReport {
        let s = spec(pilot);
        let (results, _) = run_points(
            &expand(&s),
            &ResultCache::in_memory(),
            &RunConfig::default(),
        )
        .unwrap();
        CampaignReport::assemble(&s, &results).unwrap()
    }

    #[test]
    fn report_shape_and_grid_order() {
        let r = report(false);
        assert_eq!(r.points, 12);
        assert_eq!(r.results.len(), 12);
        for (i, row) in r.results.iter().enumerate() {
            assert_eq!(row.index, i);
        }
        assert!(r.pilot.is_empty());
        assert_eq!(r.reference_machine, "thinkie");
        assert_eq!(r.reference_errors.len(), 2);
        assert!(!r.slices.is_empty());
    }

    #[test]
    fn json_roundtrip_and_determinism() {
        let a = report(false);
        let b = report(false);
        let ja = a.to_json().unwrap();
        let jb = b.to_json().unwrap();
        assert_eq!(ja, jb, "byte-identical for identical spec+seed");
        let back = CampaignReport::from_json(&ja).unwrap();
        assert_eq!(back, a);
        // Pretty form parses back too.
        let pretty = a.to_json_pretty().unwrap();
        assert_eq!(CampaignReport::from_json(&pretty).unwrap(), a);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let r = report(false);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 13);
        assert!(lines[0].starts_with("index,workload,steps,machine"));
        assert!(lines[0].contains(",fs,atoms,sample_order,"));
        assert!(lines[1].starts_with("0,gromacs,10000,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 15);
        }
    }

    #[test]
    fn pilot_stage_schedules_every_machine() {
        let r = report(true);
        assert_eq!(r.pilot.len(), 3);
        for p in &r.pilot {
            assert_eq!(p.policy, "backfill");
            assert_eq!(p.tasks, 4, "4 points per machine");
            assert!(p.makespan > 0.0);
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
        }
        let machines: Vec<&str> = r.pilot.iter().map(|p| p.machine.as_str()).collect();
        assert_eq!(machines, vec!["comet", "thinkie", "titan"], "sorted");
    }

    #[test]
    fn summary_renders_key_lines() {
        let r = report(true);
        let s = r.render_summary();
        assert!(s.contains("campaign \"report\""));
        assert!(s.contains("machine comet"));
        assert!(s.contains("vs thinkie"));
        assert!(s.contains("pilot"));
    }
}
