//! A small TOML-subset reader producing `serde_json::Value`.
//!
//! Campaign specs are declarative tables of scalars and arrays, so the
//! supported subset is deliberately small:
//!
//! * top-level and `[table]` / `[table.sub]` sections,
//! * `[[array-of-tables]]` entries (used for `[[workloads]]`),
//! * `key = value` with strings, integers, floats, booleans and
//!   (possibly multi-line) arrays of those,
//! * `#` comments and blank lines.
//!
//! Inline tables, dotted keys, dates and multi-line strings are not
//! supported — the parser reports them as errors rather than guessing.

use serde_json::{Map, Value};

use crate::error::CampaignError;

/// Parse TOML text into a JSON object value.
pub fn toml_to_value(text: &str) -> Result<Value, CampaignError> {
    let mut root: Map<String, Value> = Map::new();
    // Path of the table currently receiving `key = value` lines; the
    // final element of an array-of-tables path addresses the *last*
    // array entry.
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| CampaignError::Spec(format!("line {}: {msg}", lineno + 1));

        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let path = parse_path(header).map_err(err)?;
            push_array_table(&mut root, &path).map_err(err)?;
            current_path = path;
        } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let path = parse_path(header).map_err(err)?;
            ensure_table(&mut root, &path).map_err(err)?;
            current_path = path;
        } else if let Some((key, value_text)) = line.split_once('=') {
            let key = parse_key(key.trim()).map_err(err)?;
            let mut value_text = value_text.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // balance (strings in specs never contain brackets — the
            // subset documents this).
            while value_text.starts_with('[') && !brackets_balance(&value_text) {
                let Some((_, next)) = lines.next() else {
                    return Err(err("unterminated array".into()));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(value_text.trim()).map_err(err)?;
            let table = navigate(&mut root, &current_path).map_err(err)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(err(format!("duplicate key {key:?}")));
            }
        } else {
            return Err(err(format!("cannot parse {line:?}")));
        }
    }
    Ok(Value::Object(root))
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balance(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    for c in s.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_path(header: &str) -> Result<Vec<String>, String> {
    let parts: Vec<String> = header
        .split('.')
        .map(|p| parse_key(p.trim()))
        .collect::<Result<_, _>>()?;
    if parts.is_empty() {
        return Err("empty table header".into());
    }
    Ok(parts)
}

fn parse_key(key: &str) -> Result<String, String> {
    if key.is_empty() {
        return Err("empty key".into());
    }
    if let Some(stripped) = key.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(stripped.to_string());
    }
    if key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(key.to_string())
    } else {
        Err(format!(
            "invalid key {key:?} (dotted/inline keys unsupported)"
        ))
    }
}

/// Walk to the table a path addresses, descending into the last entry
/// of any array-of-tables on the way.
fn navigate<'a>(
    root: &'a mut Map<String, Value>,
    path: &[String],
) -> Result<&'a mut Map<String, Value>, String> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Object(Map::new()));
        cur = match entry {
            Value::Object(m) => m,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Object(m)) => m,
                _ => return Err(format!("{seg:?} is not a table")),
            },
            _ => return Err(format!("{seg:?} is not a table")),
        };
    }
    Ok(cur)
}

fn ensure_table(root: &mut Map<String, Value>, path: &[String]) -> Result<(), String> {
    navigate(root, path).map(|_| ())
}

fn push_array_table(root: &mut Map<String, Value>, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().expect("path is non-empty");
    let parent = navigate(root, parents)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(items) => {
            items.push(Value::Object(Map::new()));
            Ok(())
        }
        _ => Err(format!("{last:?} is not an array of tables")),
    }
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(format!("unterminated string {text:?}"));
        };
        if inner.contains('"') {
            return Err(format!("embedded quotes unsupported in {text:?}"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("unterminated array {text:?}"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(Value::Array(items));
    }
    // Numbers: TOML allows `_` separators.
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if let Ok(n) = cleaned.parse::<i64>() {
        return Ok(Value::I64(n));
    }
    if let Ok(n) = cleaned.parse::<u64>() {
        return Ok(Value::U64(n));
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        return Ok(Value::F64(f));
    }
    Err(format!("cannot parse value {text:?}"))
}

/// Split array items on top-level commas (nested arrays and strings
/// respected).
fn split_array_items(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i64;
    let mut in_string = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                cur.push(c);
            }
            '[' if !in_string => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_string => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_string && depth == 0 => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_tables_and_arrays() {
        let v = toml_to_value(
            r#"
            # campaign
            name = "sweep"   # trailing comment
            seed = 42
            rate = 2.5
            flag = true
            machines = ["thinkie", "comet"]

            [limits]
            points = 1_000
            "#,
        )
        .unwrap();
        assert_eq!(v["name"], "sweep");
        assert_eq!(v["seed"], 42);
        assert_eq!(v["rate"], 2.5);
        assert_eq!(v["flag"], true);
        assert_eq!(v["machines"][1], "comet");
        assert_eq!(v["limits"]["points"], 1000);
    }

    #[test]
    fn array_of_tables() {
        let v = toml_to_value(
            r#"
            [[workloads]]
            app = "gromacs"
            steps = [10000, 100000]

            [[workloads]]
            app = "amber"
            steps = [50000]
            "#,
        )
        .unwrap();
        let w = v["workloads"].as_array().unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0]["app"], "gromacs");
        assert_eq!(w[0]["steps"][1], 100_000);
        assert_eq!(w[1]["app"], "amber");
    }

    #[test]
    fn multiline_arrays() {
        let v =
            toml_to_value("steps = [\n  1000, # small\n  2000,\n  3000\n]\nnext = 1\n").unwrap();
        assert_eq!(v["steps"].as_array().unwrap().len(), 3);
        assert_eq!(v["next"], 1);
    }

    #[test]
    fn nested_tables() {
        let v = toml_to_value("[a.b]\nx = 1\n[a.c]\ny = 2\n").unwrap();
        assert_eq!(v["a"]["b"]["x"], 1);
        assert_eq!(v["a"]["c"]["y"], 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = toml_to_value("ok = 1\nbroken line\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e2 = toml_to_value("x = @nope\n").unwrap_err();
        assert!(e2.to_string().contains("line 1"), "{e2}");
        let e3 = toml_to_value("x = 1\nx = 2\n").unwrap_err();
        assert!(e3.to_string().contains("duplicate"), "{e3}");
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let v = toml_to_value("name = \"a#b\"\n").unwrap();
        assert_eq!(v["name"], "a#b");
    }
}
