//! Deterministic grid partitioning and the lease protocol backing
//! distributed campaign fan-out.
//!
//! A campaign grid is embarrassingly parallel: any contiguous run of
//! grid indices can sweep on any worker, and the merged result is
//! independent of who ran what (results are deterministic functions of
//! the scenario point). [`partition`] splits `0..total` into
//! near-equal contiguous ranges — **disjoint**, **covering**, and a
//! pure function of `(total, parts)`, so every coordinator computes
//! the identical partition for a given worker count.
//!
//! [`LeaseTable`] turns those ranges into a work-stealing protocol:
//! a lease is *available* until a worker claims it, *assigned* while
//! that worker sweeps it, and *completed* when every point of the
//! range has landed. A worker dying mid-lease releases the lease back
//! to available (with an attempt count, so a poisoned lease cannot
//! retry forever) and any surviving worker picks it up — the
//! coordinator's replay-tolerant merge makes re-running a
//! half-finished lease harmless.
//!
//! Two refinements serve throughput-aware scheduling (see
//! `docs/PROTOCOL.md`): [`plan_leases`] emits small *probe* leases
//! first for workers with no throughput history, then main leases
//! sized by [`partition_weighted`] proportionally to observed
//! per-worker rates and ordered largest-first so the sweep tail is
//! made of small leases; and [`LeaseTable::split_tail`] re-offers the
//! unlanded tail of a straggling assigned lease as a brand-new lease,
//! so an idle fast worker can speculatively re-run it — the overlap is
//! harmless because the merge is first-arrival-wins.

/// One contiguous range of grid indices offered for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Position in the partition (also the lease's identity).
    pub id: usize,
    /// First grid index of the range (inclusive).
    pub start: usize,
    /// One past the last grid index of the range (exclusive).
    pub end: usize,
}

impl Lease {
    /// Number of grid points the lease covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the lease covers nothing (never produced by
    /// [`partition`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split `0..total` into `parts` contiguous, disjoint, covering ranges
/// whose sizes differ by at most one (the first `total % parts` ranges
/// take the extra point). `parts` is clamped to `1..=total`, so no
/// lease is ever empty; `total == 0` partitions into nothing.
pub fn partition(total: usize, parts: usize) -> Vec<Lease> {
    if total == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, total);
    let base = total / parts;
    let extra = total % parts;
    let mut leases = Vec::with_capacity(parts);
    let mut start = 0;
    for id in 0..parts {
        let len = base + usize::from(id < extra);
        leases.push(Lease {
            id,
            start,
            end: start + len,
        });
        start += len;
    }
    leases
}

/// Upper bound on the size of a probe lease emitted by
/// [`plan_leases`] — probes exist to measure a worker, not to feed it.
pub const MAX_PROBE_POINTS: usize = 256;

/// Split `0..total` into `weights.len()` contiguous, disjoint,
/// covering ranges whose sizes are proportional to the weights
/// (largest-remainder rounding, index-order tie-break — fully
/// deterministic). Every lease gets at least one point, so the part
/// count is clamped to `total`; non-finite or non-positive weights
/// are treated as unknown and fall back to the mean. Empty `weights`
/// degrades to a single lease over the whole grid.
pub fn partition_weighted(total: usize, weights: &[f64]) -> Vec<Lease> {
    if total == 0 {
        return Vec::new();
    }
    if weights.is_empty() {
        return partition(total, 1);
    }
    let parts = weights.len().min(total);
    let mut w: Vec<f64> = weights[..parts]
        .iter()
        .map(|x| if x.is_finite() && *x > 0.0 { *x } else { 0.0 })
        .collect();
    let known_sum: f64 = w.iter().sum();
    if known_sum <= 0.0 {
        w = vec![1.0; parts];
    } else {
        // Unknown weights take the mean of the known ones, so one
        // fresh worker neither starves nor dominates the plan.
        let known = w.iter().filter(|x| **x > 0.0).count().max(1);
        let mean = known_sum / known as f64;
        for x in &mut w {
            if *x <= 0.0 {
                *x = mean;
            }
        }
    }
    let sum: f64 = w.iter().sum();
    // One point each up front; the spare points go out by weight with
    // largest-remainder rounding.
    let spare = total - parts;
    let mut sizes = vec![1usize; parts];
    let mut handed = 0usize;
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(parts);
    for (i, wi) in w.iter().enumerate() {
        let share = spare as f64 * wi / sum;
        let whole = share.floor() as usize;
        sizes[i] += whole;
        handed += whole;
        remainders.push((i, share - whole as f64));
    }
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    for (i, _) in remainders.iter().take(spare - handed) {
        sizes[*i] += 1;
    }
    let mut leases = Vec::with_capacity(parts);
    let mut start = 0;
    for (id, len) in sizes.into_iter().enumerate() {
        leases.push(Lease {
            id,
            start,
            end: start + len,
        });
        start += len;
    }
    leases
}

/// Plan the lease list for a throughput-aware fan-out: `probes` small
/// probe leases first (one per worker with no observed rate — a cheap
/// first assignment that measures the worker before it commits to a
/// large slice), then `parts` main leases sized by
/// [`partition_weighted`] over `weights` (per-worker observed rates,
/// cycled across the lease slots) and reordered largest-first.
/// Largest-first matters under work stealing: big slices start early
/// and the final, imbalance-prone tail of the table is all small
/// leases. Probes are skipped on grids too small to be worth
/// measuring (`total < 4 * parts`). Ranges stay disjoint and covering;
/// only the table *order* (claim priority) is rearranged. Lease ids
/// are positions in the returned list.
pub fn plan_leases(total: usize, parts: usize, probes: usize, weights: &[f64]) -> Vec<Lease> {
    if total == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, total);
    let probes = if total < 4 * parts {
        0
    } else {
        probes.min(parts)
    };
    let probe_len = (total / (parts * 8)).clamp(1, MAX_PROBE_POINTS);
    let probe_span = probes * probe_len;
    let mut leases: Vec<Lease> = (0..probes)
        .map(|p| Lease {
            id: p,
            start: p * probe_len,
            end: (p + 1) * probe_len,
        })
        .collect();
    let lease_weights: Vec<f64> = if weights.is_empty() {
        vec![1.0; parts]
    } else {
        (0..parts).map(|i| weights[i % weights.len()]).collect()
    };
    let mut main = partition_weighted(total - probe_span, &lease_weights);
    // Largest-first (stable on ties, so still deterministic).
    main.sort_by_key(|lease| std::cmp::Reverse(lease.len()));
    for lease in main {
        let id = leases.len();
        leases.push(Lease {
            id,
            start: lease.start + probe_span,
            end: lease.end + probe_span,
        });
    }
    leases
}

/// Lifecycle of one lease inside a [`LeaseTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseState {
    /// Unclaimed: any worker may take it.
    Available,
    /// A worker is sweeping it (the string is the worker's identity).
    Assigned(String),
    /// Every point of the range landed.
    Completed,
}

/// The coordinator's bookkeeping of which worker owns which slice of
/// the grid. Pure state machine — all I/O (dispatching leases over
/// HTTP, watching event streams) lives in `synapse-cluster`.
#[derive(Debug)]
pub struct LeaseTable {
    leases: Vec<Lease>,
    states: Vec<LeaseState>,
    attempts: Vec<usize>,
    split: Vec<bool>,
}

impl LeaseTable {
    /// A table over the [`partition`] of `total` points into `parts`
    /// leases, all available.
    pub fn new(total: usize, parts: usize) -> LeaseTable {
        LeaseTable::from_leases(partition(total, parts))
    }

    /// A table over an explicit lease list (e.g. from [`plan_leases`]),
    /// all available. Lease ids are rewritten to their positions —
    /// the table's claim/complete/release cycle is keyed by position.
    pub fn from_leases(mut leases: Vec<Lease>) -> LeaseTable {
        for (id, lease) in leases.iter_mut().enumerate() {
            lease.id = id;
        }
        let states = vec![LeaseState::Available; leases.len()];
        let attempts = vec![0; leases.len()];
        let split = vec![false; leases.len()];
        LeaseTable {
            leases,
            states,
            attempts,
            split,
        }
    }

    /// Number of leases in the table.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether the table holds no leases (empty grid).
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Claim the first available lease for `worker`, if any.
    pub fn claim(&mut self, worker: &str) -> Option<Lease> {
        let idx = self
            .states
            .iter()
            .position(|s| *s == LeaseState::Available)?;
        self.states[idx] = LeaseState::Assigned(worker.to_string());
        self.attempts[idx] += 1;
        Some(self.leases[idx])
    }

    /// Mark an assigned lease complete.
    pub fn complete(&mut self, id: usize) {
        self.states[id] = LeaseState::Completed;
    }

    /// Release an assigned lease back to available (worker failure);
    /// its attempt count stands, so repeated failures are visible.
    pub fn release(&mut self, id: usize) {
        if self.states[id] != LeaseState::Completed {
            self.states[id] = LeaseState::Available;
        }
    }

    /// How many times a lease has been claimed so far.
    pub fn attempts(&self, id: usize) -> usize {
        self.attempts[id]
    }

    /// Whether every lease is completed.
    pub fn is_complete(&self) -> bool {
        self.states.iter().all(|s| *s == LeaseState::Completed)
    }

    /// `(available, assigned, completed)` lease counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in &self.states {
            match s {
                LeaseState::Available => counts.0 += 1,
                LeaseState::Assigned(_) => counts.1 += 1,
                LeaseState::Completed => counts.2 += 1,
            }
        }
        counts
    }

    /// Assigned leases that have not been tail-split yet — the
    /// candidates an idle worker may speculate on.
    pub fn split_candidates(&self) -> Vec<Lease> {
        self.leases
            .iter()
            .zip(&self.states)
            .zip(&self.split)
            .filter(|((_, state), split)| matches!(state, LeaseState::Assigned(_)) && !**split)
            .map(|((lease, _), _)| *lease)
            .collect()
    }

    /// Speculatively re-offer the tail `[mid, end)` of an assigned,
    /// not-yet-split lease as a brand-new available lease, returning
    /// it. The original lease keeps its full range and its worker
    /// keeps streaming — the deliberate overlap is resolved by the
    /// collector's first-arrival-wins merge, so whichever worker
    /// lands a tail point first wins and the other's copy is dropped.
    /// Returns `None` when the lease is not assigned, was already
    /// split, or `mid` is outside `[start, end)`.
    pub fn split_tail(&mut self, id: usize, mid: usize) -> Option<Lease> {
        let lease = *self.leases.get(id)?;
        if !matches!(self.states[id], LeaseState::Assigned(_))
            || self.split[id]
            || mid < lease.start
            || mid >= lease.end
        {
            return None;
        }
        self.split[id] = true;
        let tail = Lease {
            id: self.leases.len(),
            start: mid,
            end: lease.end,
        };
        self.leases.push(tail);
        self.states.push(LeaseState::Available);
        self.attempts.push(0);
        self.split.push(false);
        Some(tail)
    }

    /// Every lease not yet completed, released back to available first
    /// (used by the coordinator's local fallback after all remote
    /// drivers have exited — their assignments are orphaned by then).
    pub fn drain_incomplete(&mut self) -> Vec<Lease> {
        let mut incomplete = Vec::new();
        for idx in 0..self.leases.len() {
            if self.states[idx] != LeaseState::Completed {
                self.states[idx] = LeaseState::Available;
                incomplete.push(self.leases[idx]);
            }
        }
        incomplete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_covering_and_near_equal() {
        for (total, parts) in [(10, 3), (192, 8), (7, 7), (1, 4), (55_296, 16)] {
            let leases = partition(total, parts);
            assert_eq!(leases.len(), parts.min(total));
            // Contiguous coverage with no gaps or overlaps.
            assert_eq!(leases[0].start, 0);
            assert_eq!(leases[leases.len() - 1].end, total);
            for pair in leases.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "{total}/{parts}");
            }
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = leases.iter().map(Lease::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{sizes:?}");
            assert!(leases.iter().all(|l| !l.is_empty()));
        }
    }

    #[test]
    fn partition_is_deterministic_and_handles_edges() {
        assert_eq!(partition(100, 4), partition(100, 4));
        assert!(partition(0, 4).is_empty());
        // parts clamped into 1..=total.
        assert_eq!(partition(3, 100).len(), 3);
        assert_eq!(partition(5, 0).len(), 1);
        assert_eq!(
            partition(5, 0)[0],
            Lease {
                id: 0,
                start: 0,
                end: 5
            }
        );
    }

    #[test]
    fn lease_table_claim_complete_release_cycle() {
        let mut table = LeaseTable::new(10, 3);
        assert_eq!(table.len(), 3);
        assert!(!table.is_complete());
        assert_eq!(table.counts(), (3, 0, 0));

        let a = table.claim("w1").unwrap();
        let b = table.claim("w2").unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(table.counts(), (1, 2, 0));
        assert_eq!(table.attempts(a.id), 1);

        // w1 finishes its lease; w2 dies and releases.
        table.complete(a.id);
        table.release(b.id);
        assert_eq!(table.counts(), (2, 0, 1));

        // The released lease is claimable again, attempt count grows.
        let again = table.claim("w1").unwrap();
        assert_eq!(again.id, b.id);
        assert_eq!(table.attempts(b.id), 2);
        table.complete(again.id);
        if let Some(last) = table.claim("w1") {
            table.complete(last.id);
        }
        assert!(table.is_complete());
        assert!(table.claim("w1").is_none(), "nothing left to claim");
    }

    #[test]
    fn releasing_a_completed_lease_keeps_it_completed() {
        let mut table = LeaseTable::new(4, 2);
        let l = table.claim("w").unwrap();
        table.complete(l.id);
        table.release(l.id);
        assert_eq!(table.counts().2, 1, "complete is final");
    }

    #[test]
    fn weighted_partition_is_disjoint_covering_and_proportional() {
        for (total, weights) in [
            (80, vec![3.0, 1.0]),
            (192, vec![1.0, 1.0, 1.0, 1.0]),
            (55_296, vec![10.0, 1.0, 4.0]),
            (7, vec![5.0, 0.5]),
        ] {
            let leases = partition_weighted(total, &weights);
            assert_eq!(leases.len(), weights.len().min(total));
            assert_eq!(leases[0].start, 0);
            assert_eq!(leases[leases.len() - 1].end, total);
            for pair in leases.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            assert!(leases.iter().all(|l| !l.is_empty()));
            // Proportionality within rounding: each size is within one
            // of its exact share (after the 1-point floor).
            let sum: f64 = weights.iter().sum();
            for (lease, w) in leases.iter().zip(&weights) {
                let share = total as f64 * w / sum;
                assert!(
                    (lease.len() as f64 - share).abs() <= weights.len() as f64,
                    "{total} by {weights:?}: lease {} got {} want ~{share}",
                    lease.id,
                    lease.len()
                );
            }
        }
        // 3:1 weights really produce a ~3:1 split.
        let skew = partition_weighted(80, &[3.0, 1.0]);
        assert_eq!(skew[0].len(), 60);
        assert_eq!(skew[1].len(), 20);
    }

    #[test]
    fn weighted_partition_tolerates_degenerate_weights() {
        // All-zero / non-finite weights fall back to near-equal.
        let flat = partition_weighted(10, &[0.0, f64::NAN, -3.0]);
        let sizes: Vec<usize> = flat.iter().map(Lease::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // One unknown weight takes the mean of the known ones.
        let mixed = partition_weighted(90, &[4.0, 0.0, 2.0]);
        assert_eq!(mixed.iter().map(Lease::len).sum::<usize>(), 90);
        assert!(mixed[1].len() > mixed[2].len(), "{mixed:?}");
        assert!(partition_weighted(5, &[]).len() == 1);
        assert!(partition_weighted(0, &[1.0]).is_empty());
    }

    #[test]
    fn planned_leases_put_probes_first_then_largest_main_slices() {
        let plan = plan_leases(192, 8, 2, &[2.0, 1.0]);
        assert_eq!(plan.len(), 10, "2 probes + 8 main leases");
        // Ids are positions; ranges cover the grid contiguously up to
        // reordering.
        for (id, lease) in plan.iter().enumerate() {
            assert_eq!(lease.id, id);
        }
        let mut sorted = plan.clone();
        sorted.sort_by_key(|l| l.start);
        assert_eq!(sorted[0].start, 0);
        assert_eq!(sorted.last().unwrap().end, 192);
        for pair in sorted.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Probes are small and lead the table.
        let probe_len = plan[0].len();
        assert!(probe_len <= MAX_PROBE_POINTS);
        assert!(probe_len <= plan[2].len());
        assert_eq!(plan[1].len(), probe_len);
        // Main slices descend in size (largest-first claim priority).
        for pair in plan[2..].windows(2) {
            assert!(pair[0].len() >= pair[1].len(), "{plan:?}");
        }
        // Weighted 2:1 shows up in the main slice sizes.
        let main_points: usize = plan[2..].iter().map(Lease::len).sum();
        assert_eq!(main_points, 192 - 2 * probe_len);
    }

    #[test]
    fn planned_leases_skip_probes_on_tiny_grids_and_stay_deterministic() {
        let tiny = plan_leases(16, 8, 2, &[1.0, 1.0]);
        assert_eq!(tiny.len(), 8, "no probes when total < 4 * parts");
        assert_eq!(tiny.iter().map(Lease::len).sum::<usize>(), 16);
        assert_eq!(
            plan_leases(501, 7, 3, &[5.0, 1.0]),
            plan_leases(501, 7, 3, &[5.0, 1.0])
        );
        assert!(plan_leases(0, 4, 2, &[1.0]).is_empty());
    }

    #[test]
    fn split_tail_offers_the_straggler_tail_once() {
        let mut table = LeaseTable::new(100, 2);
        let a = table.claim("slow").unwrap();
        assert_eq!(table.split_candidates().len(), 1);
        // Only assigned leases can split; out-of-range mids refuse.
        assert!(table.split_tail(a.id, a.end).is_none());
        assert!(table.split_tail(1, 60).is_none(), "lease 1 still available");

        let tail = table.split_tail(a.id, 30).unwrap();
        assert_eq!((tail.start, tail.end), (30, a.end));
        assert_eq!(tail.id, 2, "appended with the next id");
        assert_eq!(table.len(), 3);
        assert_eq!(table.counts(), (2, 1, 0), "tail is claimable");
        // A lease splits at most once.
        assert!(table.split_candidates().is_empty());
        assert!(table.split_tail(a.id, 40).is_none());

        // The overlapping pair both complete normally.
        let claimed = table.claim("fast").unwrap();
        assert_eq!(claimed.id, 1, "claim order is table order");
        let spec = table.claim("fast").unwrap();
        assert_eq!(spec.id, tail.id);
        table.complete(a.id);
        table.complete(claimed.id);
        table.complete(spec.id);
        assert!(table.is_complete());
    }

    #[test]
    fn from_leases_rewrites_ids_to_positions() {
        let table = LeaseTable::from_leases(plan_leases(40, 4, 1, &[1.0]));
        assert_eq!(table.len(), 5);
        let mut t = table;
        let first = t.claim("w").unwrap();
        assert_eq!(first.id, 0, "probe lease leads");
    }

    #[test]
    fn drain_incomplete_returns_orphaned_work() {
        let mut table = LeaseTable::new(12, 4);
        let a = table.claim("w1").unwrap();
        table.complete(a.id);
        let _b = table.claim("w2").unwrap(); // orphaned assignment
        let rest = table.drain_incomplete();
        assert_eq!(rest.len(), 3, "everything but the completed lease");
        let covered: usize = rest.iter().map(Lease::len).sum();
        assert_eq!(covered + a.len(), 12);
    }
}
