//! Deterministic grid partitioning and the lease protocol backing
//! distributed campaign fan-out.
//!
//! A campaign grid is embarrassingly parallel: any contiguous run of
//! grid indices can sweep on any worker, and the merged result is
//! independent of who ran what (results are deterministic functions of
//! the scenario point). [`partition`] splits `0..total` into
//! near-equal contiguous ranges — **disjoint**, **covering**, and a
//! pure function of `(total, parts)`, so every coordinator computes
//! the identical partition for a given worker count.
//!
//! [`LeaseTable`] turns those ranges into a work-stealing protocol:
//! a lease is *available* until a worker claims it, *assigned* while
//! that worker sweeps it, and *completed* when every point of the
//! range has landed. A worker dying mid-lease releases the lease back
//! to available (with an attempt count, so a poisoned lease cannot
//! retry forever) and any surviving worker picks it up — the
//! coordinator's replay-tolerant merge makes re-running a
//! half-finished lease harmless.

/// One contiguous range of grid indices offered for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Position in the partition (also the lease's identity).
    pub id: usize,
    /// First grid index of the range (inclusive).
    pub start: usize,
    /// One past the last grid index of the range (exclusive).
    pub end: usize,
}

impl Lease {
    /// Number of grid points the lease covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the lease covers nothing (never produced by
    /// [`partition`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split `0..total` into `parts` contiguous, disjoint, covering ranges
/// whose sizes differ by at most one (the first `total % parts` ranges
/// take the extra point). `parts` is clamped to `1..=total`, so no
/// lease is ever empty; `total == 0` partitions into nothing.
pub fn partition(total: usize, parts: usize) -> Vec<Lease> {
    if total == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, total);
    let base = total / parts;
    let extra = total % parts;
    let mut leases = Vec::with_capacity(parts);
    let mut start = 0;
    for id in 0..parts {
        let len = base + usize::from(id < extra);
        leases.push(Lease {
            id,
            start,
            end: start + len,
        });
        start += len;
    }
    leases
}

/// Lifecycle of one lease inside a [`LeaseTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseState {
    /// Unclaimed: any worker may take it.
    Available,
    /// A worker is sweeping it (the string is the worker's identity).
    Assigned(String),
    /// Every point of the range landed.
    Completed,
}

/// The coordinator's bookkeeping of which worker owns which slice of
/// the grid. Pure state machine — all I/O (dispatching leases over
/// HTTP, watching event streams) lives in `synapse-cluster`.
#[derive(Debug)]
pub struct LeaseTable {
    leases: Vec<Lease>,
    states: Vec<LeaseState>,
    attempts: Vec<usize>,
}

impl LeaseTable {
    /// A table over the [`partition`] of `total` points into `parts`
    /// leases, all available.
    pub fn new(total: usize, parts: usize) -> LeaseTable {
        let leases = partition(total, parts);
        let states = vec![LeaseState::Available; leases.len()];
        let attempts = vec![0; leases.len()];
        LeaseTable {
            leases,
            states,
            attempts,
        }
    }

    /// Number of leases in the table.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether the table holds no leases (empty grid).
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Claim the first available lease for `worker`, if any.
    pub fn claim(&mut self, worker: &str) -> Option<Lease> {
        let idx = self
            .states
            .iter()
            .position(|s| *s == LeaseState::Available)?;
        self.states[idx] = LeaseState::Assigned(worker.to_string());
        self.attempts[idx] += 1;
        Some(self.leases[idx])
    }

    /// Mark an assigned lease complete.
    pub fn complete(&mut self, id: usize) {
        self.states[id] = LeaseState::Completed;
    }

    /// Release an assigned lease back to available (worker failure);
    /// its attempt count stands, so repeated failures are visible.
    pub fn release(&mut self, id: usize) {
        if self.states[id] != LeaseState::Completed {
            self.states[id] = LeaseState::Available;
        }
    }

    /// How many times a lease has been claimed so far.
    pub fn attempts(&self, id: usize) -> usize {
        self.attempts[id]
    }

    /// Whether every lease is completed.
    pub fn is_complete(&self) -> bool {
        self.states.iter().all(|s| *s == LeaseState::Completed)
    }

    /// `(available, assigned, completed)` lease counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in &self.states {
            match s {
                LeaseState::Available => counts.0 += 1,
                LeaseState::Assigned(_) => counts.1 += 1,
                LeaseState::Completed => counts.2 += 1,
            }
        }
        counts
    }

    /// Every lease not yet completed, released back to available first
    /// (used by the coordinator's local fallback after all remote
    /// drivers have exited — their assignments are orphaned by then).
    pub fn drain_incomplete(&mut self) -> Vec<Lease> {
        let mut incomplete = Vec::new();
        for idx in 0..self.leases.len() {
            if self.states[idx] != LeaseState::Completed {
                self.states[idx] = LeaseState::Available;
                incomplete.push(self.leases[idx]);
            }
        }
        incomplete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_covering_and_near_equal() {
        for (total, parts) in [(10, 3), (192, 8), (7, 7), (1, 4), (55_296, 16)] {
            let leases = partition(total, parts);
            assert_eq!(leases.len(), parts.min(total));
            // Contiguous coverage with no gaps or overlaps.
            assert_eq!(leases[0].start, 0);
            assert_eq!(leases[leases.len() - 1].end, total);
            for pair in leases.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "{total}/{parts}");
            }
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = leases.iter().map(Lease::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{sizes:?}");
            assert!(leases.iter().all(|l| !l.is_empty()));
        }
    }

    #[test]
    fn partition_is_deterministic_and_handles_edges() {
        assert_eq!(partition(100, 4), partition(100, 4));
        assert!(partition(0, 4).is_empty());
        // parts clamped into 1..=total.
        assert_eq!(partition(3, 100).len(), 3);
        assert_eq!(partition(5, 0).len(), 1);
        assert_eq!(
            partition(5, 0)[0],
            Lease {
                id: 0,
                start: 0,
                end: 5
            }
        );
    }

    #[test]
    fn lease_table_claim_complete_release_cycle() {
        let mut table = LeaseTable::new(10, 3);
        assert_eq!(table.len(), 3);
        assert!(!table.is_complete());
        assert_eq!(table.counts(), (3, 0, 0));

        let a = table.claim("w1").unwrap();
        let b = table.claim("w2").unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(table.counts(), (1, 2, 0));
        assert_eq!(table.attempts(a.id), 1);

        // w1 finishes its lease; w2 dies and releases.
        table.complete(a.id);
        table.release(b.id);
        assert_eq!(table.counts(), (2, 0, 1));

        // The released lease is claimable again, attempt count grows.
        let again = table.claim("w1").unwrap();
        assert_eq!(again.id, b.id);
        assert_eq!(table.attempts(b.id), 2);
        table.complete(again.id);
        if let Some(last) = table.claim("w1") {
            table.complete(last.id);
        }
        assert!(table.is_complete());
        assert!(table.claim("w1").is_none(), "nothing left to claim");
    }

    #[test]
    fn releasing_a_completed_lease_keeps_it_completed() {
        let mut table = LeaseTable::new(4, 2);
        let l = table.claim("w").unwrap();
        table.complete(l.id);
        table.release(l.id);
        assert_eq!(table.counts().2, 1, "complete is final");
    }

    #[test]
    fn drain_incomplete_returns_orphaned_work() {
        let mut table = LeaseTable::new(12, 4);
        let a = table.claim("w1").unwrap();
        table.complete(a.id);
        let _b = table.claim("w2").unwrap(); // orphaned assignment
        let rest = table.drain_incomplete();
        assert_eq!(rest.len(), 3, "everything but the completed lease");
        let covered: usize = rest.iter().map(Lease::len).sum();
        assert_eq!(covered + a.len(), 12);
    }
}
