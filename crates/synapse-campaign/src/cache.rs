//! Memoization of scenario results, persisted through `synapse-store`.
//!
//! Every scenario point is keyed by a content fingerprint of its axis
//! values plus the engine version; re-running a grown campaign only
//! simulates points whose fingerprints are not in the cache. The cache
//! is a [`DocumentDb`] collection, so persistence reuses the store
//! layer's JSON-per-collection format (one `campaign_results.json`
//! file under the cache directory).

use std::path::{Path, PathBuf};

use synapse_store::{Document, DocumentDb, Query, DEFAULT_DOC_LIMIT};

use crate::error::CampaignError;
use crate::grid::{fnv1a, ScenarioPoint};
use crate::runner::PointResult;

/// Bump when simulation semantics change: stale cached results from an
/// older engine must not satisfy a newer campaign.
pub const ENGINE_VERSION: u32 = 1;

const COLLECTION: &str = "campaign_results";

/// Content fingerprint of a scenario point (hex, stable across runs
/// and platforms).
pub fn fingerprint(point: &ScenarioPoint) -> String {
    // The index is display-only; exclude it so reordering axes or
    // growing the grid never changes a point's identity.
    let mut canonical = point.clone();
    canonical.index = 0;
    let json = serde_json::to_string(&canonical).expect("point serializes");
    format!("{:016x}", fnv1a(json.as_bytes(), ENGINE_VERSION as u64))
}

/// A fingerprint-keyed result store.
pub struct ResultCache {
    db: DocumentDb,
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// An in-memory cache (lives for one process).
    pub fn in_memory() -> Self {
        ResultCache {
            db: DocumentDb::new(),
            dir: None,
        }
    }

    /// Open (or create) a cache persisted under `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CampaignError> {
        let dir = dir.as_ref().to_path_buf();
        let db = DocumentDb::open(&dir, DEFAULT_DOC_LIMIT)?;
        Ok(ResultCache { db, dir: Some(dir) })
    }

    /// Cached result for a fingerprint, if any.
    pub fn get(&self, fingerprint: &str) -> Option<PointResult> {
        self.db
            .with_collection(COLLECTION, |c| {
                c.get(fingerprint).and_then(|doc| doc.decode().ok())
            })
            .flatten()
    }

    /// Store a result under its fingerprint (idempotent).
    pub fn put(&self, fingerprint: &str, result: &PointResult) -> Result<(), CampaignError> {
        let doc = Document::new(fingerprint, result)?;
        self.db.upsert(COLLECTION, doc)?;
        Ok(())
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.db.count(COLLECTION, &Query::all())
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write the cache back to its directory (no-op for in-memory
    /// caches).
    pub fn persist(&self) -> Result<(), CampaignError> {
        if let Some(dir) = &self.dir {
            self.db.save(dir)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PointResult;
    use crate::spec::CampaignSpec;

    fn points() -> Vec<ScenarioPoint> {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "cache"
            machines = ["thinkie", "comet"]
            kernels = ["asm"]

            [[workloads]]
            app = "gromacs"
            steps = [1000]
            "#,
        )
        .unwrap();
        crate::grid::expand(&spec)
    }

    fn result_for(point: &ScenarioPoint) -> PointResult {
        PointResult {
            point: point.clone(),
            fingerprint: fingerprint(point),
            tx: 1.5,
            app_tx: 1.0,
            samples: 3,
            directed_cycles: 100,
            consumed_cycles: 110,
            instructions: 220,
            bytes_written: 64,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_index_independent() {
        let ps = points();
        let mut a = ps[0].clone();
        assert_eq!(fingerprint(&a), fingerprint(&ps[0]));
        a.index = 999;
        assert_eq!(fingerprint(&a), fingerprint(&ps[0]), "index excluded");
        assert_ne!(fingerprint(&ps[0]), fingerprint(&ps[1]));
        let mut reseeded = ps[0].clone();
        reseeded.seed ^= 1;
        assert_ne!(fingerprint(&reseeded), fingerprint(&ps[0]), "seed included");
    }

    #[test]
    fn put_get_roundtrip_in_memory() {
        let cache = ResultCache::in_memory();
        let ps = points();
        let r = result_for(&ps[0]);
        assert!(cache.get(&r.fingerprint).is_none());
        cache.put(&r.fingerprint, &r).unwrap();
        assert_eq!(cache.get(&r.fingerprint).unwrap(), r);
        assert_eq!(cache.len(), 1);
        // Idempotent.
        cache.put(&r.fingerprint, &r).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persist_and_reopen() {
        let dir =
            std::env::temp_dir().join(format!("synapse-campaign-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(&dir).unwrap();
            for p in &points() {
                let r = result_for(p);
                cache.put(&r.fingerprint, &r).unwrap();
            }
            cache.persist().unwrap();
        }
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), points().len());
        for p in &points() {
            let got = reopened.get(&fingerprint(p)).unwrap();
            assert_eq!(got.point, *p);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
