//! Memoization of scenario results, persisted through `synapse-store`.
//!
//! Every scenario point is keyed by a content fingerprint of its axis
//! values plus the engine version; re-running a grown campaign only
//! simulates points whose fingerprints are not in the cache. The cache
//! is a [`ShardedDb`]: results spread over 256 shard files by
//! fingerprint prefix, saves rewrite only the shards touched since the
//! last save, and a manifest records the layout — so a million-point
//! campaign pays for the points it adds, not for the points it has.
//!
//! Caches written by older engines as one monolithic
//! `campaign_results.json` migrate to the sharded layout transparently
//! on first open (the legacy file is kept as `*.migrated`). Results
//! keyed by an older engine's fingerprint scheme are dropped during
//! migration — the current engine can never produce their keys, so
//! they could never be cache hits again.

use std::fs;
use std::path::{Path, PathBuf};

use synapse_store::sharded::MANIFEST_FILE;
use synapse_store::{Collection, Document, ShardedDb, DEFAULT_DOC_LIMIT};

use crate::error::CampaignError;
use crate::grid::{fnv1a, ScenarioPoint};
use crate::runner::PointResult;

/// Bump when simulation semantics change: stale cached results from an
/// older engine must not satisfy a newer campaign.
///
/// v3: [`ScenarioPoint`] gained the `fs` and `atoms` axes, changing
/// every point's canonical JSON (and therefore every fingerprint).
///
/// v4: the `sample_order` ablation (Fig. 2) became a grid axis — a new
/// `ScenarioPoint` field and a new term in the per-point seed
/// derivation, so every fingerprint changed again.
pub const ENGINE_VERSION: u32 = 4;

/// File name of the pre-sharded, single-file cache layout.
const LEGACY_FILE: &str = "campaign_results.json";

/// Engine tag recorded in the sharded store's manifest.
pub fn engine_tag() -> String {
    format!("synapse-campaign/engine-v{ENGINE_VERSION}")
}

/// Content fingerprint of a scenario point (hex, stable across runs
/// and platforms).
pub fn fingerprint(point: &ScenarioPoint) -> String {
    // The index is display-only; exclude it so reordering axes or
    // growing the grid never changes a point's identity.
    let mut canonical = point.clone();
    canonical.index = 0;
    let json = serde_json::to_string(&canonical).expect("point serializes");
    // The engine version is folded in twice: as the FNV seed *and* as
    // hashed bytes. Seeding alone only XORs the version into the
    // initial state, which a crafted (or unlucky) byte stream could
    // cancel back out — hashing the version bytes makes a version bump
    // irreversibly part of the digest.
    let mut bytes = json.into_bytes();
    bytes.extend_from_slice(b"|engine=");
    bytes.extend_from_slice(ENGINE_VERSION.to_string().as_bytes());
    format!("{:016x}", fnv1a(&bytes, ENGINE_VERSION as u64))
}

/// Deterministic causality id for a campaign: the same spec (seed
/// included) under the same engine version always yields the same id.
///
/// Determinism is load-bearing: the id is minted independently by the
/// CLI, the server and the cluster coordinator, stamped on lease
/// requests (`X-Synapse-Trace`) and echoed in worker events, and it
/// must also never make two recordings of the same sweep differ by a
/// byte (see `synapse-trace`) — so it is content-derived, not random.
pub fn campaign_trace_id(spec: &crate::spec::CampaignSpec) -> String {
    let json = serde_json::to_string(spec).expect("spec serializes");
    let mut bytes = json.into_bytes();
    bytes.extend_from_slice(b"|trace-engine=");
    bytes.extend_from_slice(ENGINE_VERSION.to_string().as_bytes());
    // Seeded differently from point fingerprints so a trace id can
    // never collide into the result-cache keyspace.
    format!("t{:016x}", fnv1a(&bytes, 0x7472616365)) // b"trace"
}

/// A fingerprint-keyed result store.
pub struct ResultCache {
    db: ShardedDb,
}

impl ResultCache {
    /// An in-memory cache (lives for one process).
    pub fn in_memory() -> Self {
        ResultCache {
            db: ShardedDb::in_memory(),
        }
    }

    /// Open (or create) a cache persisted under `dir`, loading shard
    /// files on one thread.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CampaignError> {
        Self::open_with_workers(dir, 1)
    }

    /// Open (or create) a cache persisted under `dir`, loading shard
    /// files across `workers` threads (0 ⇒ one per core, capped at 16)
    /// so cache warm-up scales with the machine instead of a single
    /// reader. A legacy single-file cache found under `dir` is
    /// migrated to the sharded layout first (one-shot).
    pub fn open_with_workers(dir: impl AsRef<Path>, workers: usize) -> Result<Self, CampaignError> {
        let dir = dir.as_ref();
        // A migration already holds the fully-populated store; reuse
        // it instead of re-reading the shard files it just wrote.
        if let Some(db) = migrate_legacy_layout(dir)? {
            return Ok(ResultCache { db });
        }
        let db = ShardedDb::open_with_workers(dir, DEFAULT_DOC_LIMIT, engine_tag(), workers)?;
        Ok(ResultCache { db })
    }

    /// Cached result for a fingerprint, if any.
    ///
    /// For on-disk caches this read is cross-process: a miss checks
    /// (one `stat`) whether a peer sharing the directory has saved
    /// since, and folds that save's shard file in before answering —
    /// cluster workers pick up each other's results mid-campaign, not
    /// only at the next open. See [`synapse_store::ShardedDb::get`].
    pub fn get(&self, fingerprint: &str) -> Option<PointResult> {
        self.db.get(fingerprint).and_then(|doc| doc.decode().ok())
    }

    /// Store a result under its fingerprint (idempotent).
    pub fn put(&self, fingerprint: &str, result: &PointResult) -> Result<(), CampaignError> {
        let doc = Document::new(fingerprint, result)?;
        self.db.upsert(doc)?;
        Ok(())
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Write mutated shards back to the cache directory (no-op for
    /// in-memory caches and for saves with nothing new).
    pub fn persist(&self) -> Result<synapse_store::SaveStats, CampaignError> {
        Ok(self.db.save()?)
    }

    /// Merge small shard files and drop tombstoned ones.
    pub fn compact(&self) -> Result<synapse_store::CompactStats, CampaignError> {
        Ok(self.db.compact()?)
    }

    /// Shape of the underlying sharded store.
    pub fn stats(&self) -> synapse_store::ShardStats {
        self.db.stats()
    }

    /// The store's live lock/reconcile counter handles, for binding
    /// into a metrics registry — see [`synapse_store::ShardedDb::counters`].
    pub fn store_counters(&self) -> synapse_store::StoreCounters {
        self.db.counters()
    }

    /// Shards mutated since the last persist (diagnostics/tests).
    pub fn dirty_shards(&self) -> Vec<u8> {
        self.db.dirty_shards()
    }
}

/// One-shot migration: a directory holding a legacy single-file cache
/// (and no sharded manifest) is rewritten into the sharded layout, and
/// the legacy file renamed to `campaign_results.json.migrated` so the
/// migration can never re-run against a stale copy. Returns the
/// populated store, or `None` when no migration was needed.
///
/// Only results whose key the *current* engine would compute are
/// carried over: a result fingerprinted by an older engine version can
/// never be looked up again (that is the point of [`ENGINE_VERSION`]),
/// so copying it forward would just be dead weight loaded on every
/// open. The parked legacy file keeps the dropped data recoverable.
fn migrate_legacy_layout(dir: &Path) -> Result<Option<ShardedDb>, CampaignError> {
    let legacy = dir.join(LEGACY_FILE);
    if !legacy.exists() || dir.join(MANIFEST_FILE).exists() {
        return Ok(None);
    }
    let json = fs::read_to_string(&legacy)?;
    let collection = Collection::from_json("campaign_results", DEFAULT_DOC_LIMIT, &json)?;
    let db = ShardedDb::open(dir, DEFAULT_DOC_LIMIT, engine_tag())?;
    for doc in collection.iter() {
        let current_key = doc
            .decode::<PointResult>()
            .map(|r| fingerprint(&r.point) == doc.id)
            .unwrap_or(false);
        if current_key {
            db.upsert(doc.clone())?;
        }
    }
    db.save()?;
    fs::rename(&legacy, legacy_backup_path(dir))?;
    Ok(Some(db))
}

/// Where the legacy file is parked after a successful migration.
pub fn legacy_backup_path(dir: &Path) -> PathBuf {
    dir.join(format!("{LEGACY_FILE}.migrated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PointResult;
    use crate::spec::CampaignSpec;

    fn points() -> Vec<ScenarioPoint> {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "cache"
            machines = ["thinkie", "comet"]
            kernels = ["asm"]

            [[workloads]]
            app = "gromacs"
            steps = [1000]
            "#,
        )
        .unwrap();
        crate::grid::expand(&spec)
    }

    fn result_for(point: &ScenarioPoint) -> PointResult {
        PointResult {
            point: point.clone(),
            fingerprint: fingerprint(point),
            tx: 1.5,
            app_tx: 1.0,
            samples: 3,
            directed_cycles: 100,
            consumed_cycles: 110,
            instructions: 220,
            bytes_written: 64,
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "synapse-campaign-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fingerprints_are_stable_and_index_independent() {
        let ps = points();
        let mut a = ps[0].clone();
        assert_eq!(fingerprint(&a), fingerprint(&ps[0]));
        a.index = 999;
        assert_eq!(fingerprint(&a), fingerprint(&ps[0]), "index excluded");
        assert_ne!(fingerprint(&ps[0]), fingerprint(&ps[1]));
        let mut reseeded = ps[0].clone();
        reseeded.seed ^= 1;
        assert_ne!(fingerprint(&reseeded), fingerprint(&ps[0]), "seed included");
    }

    #[test]
    fn fingerprint_hashes_engine_version_as_bytes_not_just_seed() {
        // Regression: seeding FNV with the version only XORs it into
        // the initial state; the digest must also *hash* the version
        // bytes so a version bump can never collide back.
        let ps = points();
        let mut canonical = ps[0].clone();
        canonical.index = 0;
        let json = serde_json::to_string(&canonical).unwrap();
        let seed_only = format!("{:016x}", fnv1a(json.as_bytes(), ENGINE_VERSION as u64));
        assert_ne!(
            fingerprint(&ps[0]),
            seed_only,
            "engine version must be part of the hashed bytes"
        );
    }

    #[test]
    fn put_get_roundtrip_in_memory() {
        let cache = ResultCache::in_memory();
        let ps = points();
        let r = result_for(&ps[0]);
        assert!(cache.get(&r.fingerprint).is_none());
        cache.put(&r.fingerprint, &r).unwrap();
        assert_eq!(cache.get(&r.fingerprint).unwrap(), r);
        assert_eq!(cache.len(), 1);
        // Idempotent.
        cache.put(&r.fingerprint, &r).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persist_and_reopen() {
        let dir = tmpdir("reopen");
        {
            let cache = ResultCache::open(&dir).unwrap();
            for p in &points() {
                let r = result_for(p);
                cache.put(&r.fingerprint, &r).unwrap();
            }
            cache.persist().unwrap();
        }
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), points().len());
        for p in &points() {
            let got = reopened.get(&fingerprint(p)).unwrap();
            assert_eq!(got.point, *p);
        }
        assert!(dir.join(MANIFEST_FILE).exists(), "sharded layout on disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_persist_rewrites_only_new_shards() {
        let dir = tmpdir("incremental");
        let cache = ResultCache::open(&dir).unwrap();
        let ps = points();
        for p in &ps {
            let r = result_for(p);
            cache.put(&r.fingerprint, &r).unwrap();
        }
        cache.persist().unwrap();
        // Nothing new ⇒ nothing written.
        let idle = cache.persist().unwrap();
        assert_eq!(idle.data_files_written, 0);
        assert!(!idle.manifest_written);
        // One new point ⇒ at most one data file (+ manifest).
        let mut extra = ps[0].clone();
        extra.seed ^= 0xdead;
        let r = result_for(&extra);
        cache.put(&r.fingerprint, &r).unwrap();
        let incr = cache.persist().unwrap();
        assert_eq!(incr.data_files_written, 1, "{incr:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_single_file_cache_migrates_transparently() {
        let dir = tmpdir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        // Write a legacy layout: one campaign_results.json collection.
        let ps = points();
        let mut collection = Collection::new("campaign_results");
        for p in &ps {
            let r = result_for(p);
            collection
                .upsert(Document::new(&r.fingerprint, &r).unwrap())
                .unwrap();
        }
        std::fs::write(
            dir.join("campaign_results.json"),
            collection.to_json().unwrap(),
        )
        .unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), ps.len(), "every legacy result migrated");
        for p in &ps {
            assert_eq!(cache.get(&fingerprint(p)).unwrap().point, *p);
        }
        assert!(!dir.join("campaign_results.json").exists());
        assert!(legacy_backup_path(&dir).exists(), "legacy file parked");
        assert!(dir.join(MANIFEST_FILE).exists());

        // A second open must not re-run the migration.
        let again = ResultCache::open_with_workers(&dir, 4).unwrap();
        assert_eq!(again.len(), ps.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migration_drops_results_keyed_by_an_older_engine() {
        let dir = tmpdir("migrate-stale");
        std::fs::create_dir_all(&dir).unwrap();
        let ps = points();
        let live = result_for(&ps[0]);
        // A result fingerprinted the old way (seed-only fold): its key
        // can never be computed by the current engine again.
        let stale = {
            let mut r = result_for(&ps[1]);
            let mut canonical = r.point.clone();
            canonical.index = 0;
            let json = serde_json::to_string(&canonical).unwrap();
            r.fingerprint = format!("{:016x}", fnv1a(json.as_bytes(), 1));
            r
        };
        let mut collection = Collection::new("campaign_results");
        for r in [&live, &stale] {
            collection
                .upsert(Document::new(&r.fingerprint, r).unwrap())
                .unwrap();
        }
        std::fs::write(
            dir.join("campaign_results.json"),
            collection.to_json().unwrap(),
        )
        .unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1, "stale-engine result dropped");
        assert!(cache.get(&live.fingerprint).is_some());
        assert!(cache.get(&stale.fingerprint).is_none());
        assert!(legacy_backup_path(&dir).exists(), "dropped data parked");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_and_stats_through_cache() {
        let dir = tmpdir("compact");
        let cache = ResultCache::open(&dir).unwrap();
        let ps = points();
        for p in &ps {
            let r = result_for(p);
            cache.put(&r.fingerprint, &r).unwrap();
        }
        cache.persist().unwrap();
        let before = cache.stats();
        assert_eq!(before.docs, ps.len());
        assert!(before.data_files >= 1);
        let pass = cache.compact().unwrap();
        assert_eq!(pass.docs, ps.len());
        assert!(pass.files_after <= pass.files_before.max(1));
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), ps.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
