//! Property tests for the legacy→sharded cache migration and the
//! fingerprint function.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use synapse_campaign::cache::legacy_backup_path;
use synapse_campaign::{fingerprint, PointResult, ResultCache, ScenarioPoint};
use synapse_store::sharded::MANIFEST_FILE;
use synapse_store::{Collection, Document};

fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "synapse-migration-props-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// An arbitrary scenario point. Axis values need not resolve against
/// the catalogs — fingerprints and caching are content-addressed.
fn arb_point() -> impl Strategy<Value = ScenarioPoint> {
    (
        "[a-z]{1,8}",
        1u64..1_000_000,
        "[a-z]{1,8}",
        (1u32..64, 1u64..1_000_000_000),
        any::<u64>(),
    )
        .prop_map(
            |(workload, steps, machine, (threads, io_block), seed)| ScenarioPoint {
                index: 0,
                workload,
                steps,
                machine,
                kernel: "asm".into(),
                mode: "openmp".into(),
                threads,
                io_block,
                sample_rate: 10.0,
                fs: "default".into(),
                atoms: "all".into(),
                sample_order: "preserve".into(),
                profile_machine: "thinkie".into(),
                noise_cv: 0.05,
                seed,
            },
        )
}

/// A result whose floats are dyadic rationals, so JSON round-trips are
/// bit-exact regardless of the serializer's float formatting.
fn arb_result() -> impl Strategy<Value = PointResult> {
    (arb_point(), any::<u32>(), any::<u32>(), 1usize..10_000).prop_map(|(point, a, b, samples)| {
        PointResult {
            fingerprint: fingerprint(&point),
            point,
            tx: a as f64 / 16.0,
            app_tx: b as f64 / 16.0 + 0.5,
            samples,
            directed_cycles: a as u64 * 3,
            consumed_cycles: a as u64 * 3 + b as u64,
            instructions: b as u64 * 2,
            bytes_written: a as u64,
        }
    })
}

proptest! {
    #[test]
    fn fingerprints_are_hex_and_index_blind(point in arb_point(), index in 0usize..10_000) {
        let fp = fingerprint(&point);
        prop_assert_eq!(fp.len(), 16);
        prop_assert!(fp.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        let mut moved = point.clone();
        moved.index = index;
        prop_assert_eq!(fingerprint(&moved), fp);
    }

    #[test]
    fn legacy_caches_migrate_roundtrip(results in proptest::collection::vec(arb_result(), 1..24)) {
        let dir = case_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();

        // Write the pre-sharding layout: one monolithic collection
        // file, exactly as the old DocumentDb-backed cache saved it.
        let mut collection = Collection::new("campaign_results");
        for r in &results {
            collection
                .upsert(Document::new(&r.fingerprint, r).unwrap())
                .unwrap();
        }
        std::fs::write(
            dir.join("campaign_results.json"),
            collection.to_json().unwrap(),
        )
        .unwrap();

        // Opening migrates: every result readable, layout sharded,
        // legacy file parked.
        let cache = ResultCache::open(&dir).unwrap();
        prop_assert_eq!(cache.len(), collection.len());
        for r in &results {
            let got = cache.get(&r.fingerprint).unwrap();
            prop_assert_eq!(&got, r);
        }
        prop_assert!(dir.join(MANIFEST_FILE).exists());
        prop_assert!(!dir.join("campaign_results.json").exists());
        prop_assert!(legacy_backup_path(&dir).exists());

        // Reopening (with parallel warm-up) does not re-migrate or
        // lose anything.
        let again = ResultCache::open_with_workers(&dir, 4).unwrap();
        prop_assert_eq!(again.len(), collection.len());
        for r in &results {
            prop_assert_eq!(&again.get(&r.fingerprint).unwrap(), r);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrated_caches_keep_accepting_incremental_saves(
        results in proptest::collection::vec(arb_result(), 2..16),
    ) {
        let dir = case_dir("incremental");
        std::fs::create_dir_all(&dir).unwrap();
        let (last, old) = results.split_last().unwrap();
        let mut collection = Collection::new("campaign_results");
        for r in old {
            collection
                .upsert(Document::new(&r.fingerprint, r).unwrap())
                .unwrap();
        }
        std::fs::write(
            dir.join("campaign_results.json"),
            collection.to_json().unwrap(),
        )
        .unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        cache.put(&last.fingerprint, last).unwrap();
        let stats = cache.persist().unwrap();
        prop_assert!(stats.data_files_written <= 1, "one new point, one shard file");
        let back = ResultCache::open(&dir).unwrap();
        prop_assert_eq!(back.len(), cache.len());
        prop_assert_eq!(&back.get(&last.fingerprint).unwrap(), last);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
