//! Property tests for the grid partitioner and lease table: cluster
//! correctness rests on partitions being disjoint, covering, and
//! deterministic for a given worker count.

use proptest::prelude::*;
use synapse_campaign::partition::{partition, Lease, LeaseTable};

proptest! {
    #[test]
    fn partitions_are_disjoint_and_cover_the_grid(
        total in 0usize..100_000,
        parts in 0usize..64,
    ) {
        let leases = partition(total, parts);
        // Coverage without gaps or overlaps: consecutive ranges abut,
        // the first starts at 0, the last ends at total.
        let mut covered = 0usize;
        for (i, lease) in leases.iter().enumerate() {
            prop_assert_eq!(lease.id, i);
            prop_assert_eq!(lease.start, covered);
            prop_assert!(lease.start < lease.end);
            covered = lease.end;
        }
        prop_assert_eq!(covered, total);
        let sum: usize = leases.iter().map(Lease::len).sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn partitions_are_deterministic_and_near_equal(
        total in 1usize..100_000,
        parts in 1usize..64,
    ) {
        let a = partition(total, parts);
        let b = partition(total, parts);
        prop_assert_eq!(&a, &b, "same worker count ⇒ identical partition");
        prop_assert_eq!(a.len(), parts.min(total));
        let sizes: Vec<usize> = a.iter().map(Lease::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {:?}", sizes);
    }

    #[test]
    fn lease_table_claims_every_point_exactly_once(
        total in 1usize..10_000,
        parts in 1usize..32,
        failures in proptest::collection::vec(any::<bool>(), 0..32),
    ) {
        // Workers claim leases; some claims "fail" (worker death) and
        // release. Whatever the interleaving, the set of completed
        // leases at the end covers every grid index exactly once.
        let mut table = LeaseTable::new(total, parts);
        let mut failure = failures.into_iter().cycle();
        let mut completed: Vec<Lease> = Vec::new();
        let mut guard = 0usize;
        while !table.is_complete() {
            guard += 1;
            prop_assert!(guard < 100_000, "lease protocol must terminate");
            let Some(lease) = table.claim("w") else { continue };
            if failure.next().unwrap_or(false) && table.attempts(lease.id) < 5 {
                table.release(lease.id);
            } else {
                table.complete(lease.id);
                completed.push(lease);
            }
        }
        completed.sort_by_key(|l| l.start);
        let mut covered = 0usize;
        for lease in &completed {
            prop_assert_eq!(lease.start, covered, "no gap, no overlap");
            covered = lease.end;
        }
        prop_assert_eq!(covered, total);
    }
}
