//! Property tests for the quantile sketch: the live-aggregates plane
//! is only trustworthy if sketch quantiles track the exact
//! order-statistics within the documented bound on arbitrary data —
//! including the adversarial shapes (sorted, constant, bimodal) that
//! break naive fixed-range histograms — and if merging is
//! order-insensitive, which is what lets a cluster run agree with a
//! single-process run.

use proptest::prelude::*;
use synapse_campaign::sketch::{QuantileSketch, MIN_MAG, RELATIVE_ERROR};
use synapse_campaign::Percentiles;

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.observe(v);
    }
    s
}

/// |sketch − exact| within the documented relative bound, plus
/// MIN_MAG absolute slack for near-zero answers.
fn check_against_exact(values: &[f64]) {
    let s = sketch_of(values);
    let exact = Percentiles::of(values).expect("non-empty");
    assert_eq!(s.count() as usize, exact.n);
    assert_eq!(s.min(), Some(exact.min));
    assert_eq!(s.max(), Some(exact.max));
    for (q, want) in [(0.5, exact.p50), (0.95, exact.p95), (0.99, exact.p99)] {
        let got = s.quantile(q).expect("non-empty");
        assert!(
            (got - want).abs() <= RELATIVE_ERROR * want.abs() + MIN_MAG,
            "q={q}: sketch {got} vs exact {want} over {} values",
            values.len()
        );
    }
}

proptest! {
    #[test]
    fn quantiles_track_exact_on_random_data(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
    ) {
        check_against_exact(&values);
    }

    #[test]
    fn quantiles_track_exact_on_adversarial_shapes(
        n in 1usize..300,
        scale in 1e-3f64..1e3,
        shape in 0usize..3,
    ) {
        let values: Vec<f64> = match shape {
            // Sorted ramp: every bucket along the range is hit in order.
            0 => (0..n).map(|i| i as f64 * scale).collect(),
            // Constant: a single bucket holds every observation.
            1 => (0..n).map(|_| scale).collect(),
            // Bimodal: two far-apart clusters, nothing between — the
            // shape that exposes interpolation-based estimators.
            _ => (0..n)
                .map(|i| if i % 2 == 0 { scale } else { scale * 1e4 })
                .collect(),
        };
        check_against_exact(&values);
    }

    #[test]
    fn merge_is_commutative_and_split_invariant(
        values in proptest::collection::vec(-1e5f64..1e5, 2..300),
        split in 0usize..10_000,
    ) {
        let cut = 1 + split % (values.len() - 1);
        let (a, b) = (sketch_of(&values[..cut]), sketch_of(&values[cut..]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge(a,b) == merge(b,a), exactly");
        // Split-and-merge vs the sequential whole: identical on every
        // bucket-derived answer; the running mean may differ by f64
        // sum grouping only.
        let whole = sketch_of(&values);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert_eq!(ab.min(), whole.min());
        prop_assert_eq!(ab.max(), whole.max());
        for q in [0.25, 0.5, 0.75, 0.95, 0.99] {
            prop_assert_eq!(ab.quantile(q), whole.quantile(q), "q={}", q);
        }
        let (m, w) = (ab.mean().unwrap(), whole.mean().unwrap());
        prop_assert!((m - w).abs() <= 1e-9 * w.abs().max(1.0));
    }

    #[test]
    fn digest_roundtrips_any_sketch(
        values in proptest::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        let s = sketch_of(&values);
        let back = QuantileSketch::from_digest(&s.digest()).expect("own digest parses");
        prop_assert_eq!(back, s);
    }
}
