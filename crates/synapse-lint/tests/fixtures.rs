//! End-to-end fixture tests: each rule gets a positive fixture (a
//! synthetic workspace carrying exactly one violation, which the rule
//! must find) and a negative fixture (the repaired tree, which must
//! come back clean). Fixtures are built under a per-test temp
//! directory and removed on drop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use synapse_lint::{run_check, CheckOptions, Diagnostic};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// A throwaway workspace rooted in the system temp directory.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "synapse-lint-fixture-{}-{id}-{name}",
            std::process::id()
        ));
        if root.exists() {
            std::fs::remove_dir_all(&root).unwrap();
        }
        std::fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
        self
    }

    /// Run one rule against the fixture tree.
    fn check_rule(&self, rule: &str) -> Vec<Diagnostic> {
        let opts = CheckOptions {
            rule: Some(rule.to_string()),
        };
        run_check(&self.root, &opts).unwrap()
    }

    /// Run the full rule set.
    fn check_all(&self) -> Vec<Diagnostic> {
        run_check(&self.root, &CheckOptions::default()).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- monotonic-time

#[test]
fn monotonic_time_flags_wall_clock_in_trace_crate() {
    let fx = Fixture::new("mono-pos");
    fx.write(
        "crates/synapse-trace/src/lib.rs",
        "pub fn stamp() -> std::time::SystemTime {\n    std::time::SystemTime::now()\n}\n",
    );
    let diags = fx.check_rule("monotonic-time");
    assert_eq!(rules_of(&diags), ["monotonic-time", "monotonic-time"]);
    assert_eq!(diags[0].file, "crates/synapse-trace/src/lib.rs");
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[1].line, 2);
}

#[test]
fn monotonic_time_flags_recorder_call_sites_outside_the_crate() {
    let fx = Fixture::new("mono-driver");
    fx.write(
        "crates/synapse-server/src/annotate.rs",
        "pub fn annotate(rec: &TraceRecorder) {\n    let _ = std::time::UNIX_EPOCH;\n}\n",
    );
    let diags = fx.check_rule("monotonic-time");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("drives a TraceRecorder"));
}

#[test]
fn monotonic_time_ignores_instant_comments_and_strings() {
    let fx = Fixture::new("mono-neg");
    fx.write(
        "crates/synapse-trace/src/lib.rs",
        "// SystemTime is banned here; Instant is the way.\n\
         pub fn off() -> std::time::Instant {\n\
             let _doc = \"SystemTime\";\n\
             std::time::Instant::now()\n\
         }\n",
    );
    assert!(fx.check_rule("monotonic-time").is_empty());
}

// ---------------------------------------------------------------- metric-catalog

const CATALOG_README: &str = "# Fixture\n\n\
    ## Observability\n\n\
    | series | kind | meaning |\n\
    |---|---|---|\n\
    | `synapse_foo_requests_total` | counter | Requests served. |\n";

#[test]
fn metric_catalog_flags_unlisted_registration() {
    let fx = Fixture::new("metric-pos");
    fx.write("README.md", CATALOG_README);
    fx.write(
        "crates/synapse-foo/src/metrics.rs",
        "pub fn install(r: &Registry) {\n\
             let _ = r.counter(\"synapse_foo_requests_total\", \"Requests served.\");\n\
             let _ = r.counter(\"synapse_foo_retries_total\", \"Retries.\");\n\
         }\n",
    );
    let diags = fx.check_rule("metric-catalog");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("synapse_foo_retries_total"));
    assert!(diags[0].message.contains("missing from the README"));
}

#[test]
fn metric_catalog_flags_stale_catalog_row_and_bad_suffix() {
    let fx = Fixture::new("metric-stale");
    fx.write("README.md", CATALOG_README);
    fx.write(
        "crates/synapse-foo/src/metrics.rs",
        "pub fn install(r: &Registry) {\n\
             let _ = r.gauge(\"synapse_foo_depth_total\", \"Queue depth.\");\n\
         }\n",
    );
    let diags = fx.check_rule("metric-catalog");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    // The registered gauge is unlisted AND misnamed; the catalog row
    // has no registration behind it.
    assert_eq!(diags.len(), 3, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("must not use the counter suffix")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("no registration for it exists")));
}

#[test]
fn metric_catalog_accepts_matching_catalog() {
    let fx = Fixture::new("metric-neg");
    fx.write("README.md", CATALOG_README);
    fx.write(
        "crates/synapse-foo/src/metrics.rs",
        "pub fn install(r: &Registry) {\n\
             let _ = r.counter(\"synapse_foo_requests_total\", \"Requests served.\");\n\
         }\n",
    );
    assert!(fx.check_rule("metric-catalog").is_empty());
}

// ---------------------------------------------------------------- protocol-drift

const PROTOCOL_MD: &str = "# Fixture protocol\n\n\
    ## 1. Endpoints\n\n\
    | endpoint | role | meaning |\n\
    |---|---|---|\n\
    | `GET /healthz` | both | liveness |\n\n\
    ## 2. Pinned constants\n\n\
    | Name | Pinned value | Source |\n\
    |---|---|---|\n\
    | `FRAME_VERSION` | `3` | `crates/synapse-server/src/server.rs` |\n";

const SERVER_RS: &str = "pub const FRAME_VERSION: u64 = 3;\n\
    pub fn route(segments: &[&str]) -> bool {\n\
        match segments {\n\
            [\"healthz\"] => true,\n\
            _ => false,\n\
        }\n\
    }\n";

const METRICS_RS: &str = "pub const ENDPOINTS: &[&str] = &[\"/healthz\", \"other\"];\n";

#[test]
fn protocol_drift_accepts_spec_matching_code() {
    let fx = Fixture::new("proto-neg");
    fx.write("docs/PROTOCOL.md", PROTOCOL_MD);
    fx.write("crates/synapse-server/src/server.rs", SERVER_RS);
    fx.write("crates/synapse-server/src/metrics.rs", METRICS_RS);
    assert!(fx.check_rule("protocol-drift").is_empty());
}

#[test]
fn protocol_drift_flags_constant_drift() {
    let fx = Fixture::new("proto-const");
    fx.write("docs/PROTOCOL.md", &PROTOCOL_MD.replace("`3`", "`4`"));
    fx.write("crates/synapse-server/src/server.rs", SERVER_RS);
    fx.write("crates/synapse-server/src/metrics.rs", METRICS_RS);
    let diags = fx.check_rule("protocol-drift");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "docs/PROTOCOL.md");
    assert!(diags[0].message.contains("`FRAME_VERSION` drifted"));
}

#[test]
fn protocol_drift_flags_missing_dispatch_arm_and_route() {
    let fx = Fixture::new("proto-route");
    fx.write("docs/PROTOCOL.md", PROTOCOL_MD);
    fx.write(
        "crates/synapse-server/src/server.rs",
        &SERVER_RS.replace("[\"healthz\"]", "[\"statusz\"]"),
    );
    fx.write(
        "crates/synapse-server/src/metrics.rs",
        &METRICS_RS.replace("/healthz", "/statusz"),
    );
    let diags = fx.check_rule("protocol-drift");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs
        .iter()
        .any(|m| m.contains("missing from the ENDPOINTS route table")));
    assert!(msgs.iter().any(|m| m.contains("no matching dispatch arm")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`/statusz` is served but absent")));
}

#[test]
fn protocol_drift_checks_trace_md_headline() {
    let fx = Fixture::new("proto-trace");
    fx.write("docs/PROTOCOL.md", PROTOCOL_MD);
    fx.write("crates/synapse-server/src/server.rs", SERVER_RS);
    fx.write("crates/synapse-server/src/metrics.rs", METRICS_RS);
    fx.write("docs/TRACE.md", "# Traces\n\n**Trace format version: 2**\n");
    fx.write(
        "crates/synapse-trace/src/lib.rs",
        "pub const TRACE_VERSION: u32 = 1;\n",
    );
    let diags = fx.check_rule("protocol-drift");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "docs/TRACE.md");
    assert!(diags[0].message.contains("version 2"));
    assert!(diags[0].message.contains("is 1"));
}

// ---------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_flags_missing_safety_comment_and_forbid() {
    let fx = Fixture::new("unsafe-pos");
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "pub fn read(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    fx.write("crates/synapse-bar/src/lib.rs", "pub fn safe() {}\n");
    let diags = fx.check_rule("unsafe-audit");
    assert_eq!(diags.len(), 2);
    assert!(diags
        .iter()
        .any(|d| d.file.contains("foo") && d.line == 2 && d.message.contains("SAFETY")));
    assert!(diags
        .iter()
        .any(|d| d.file.contains("bar") && d.message.contains("forbid(unsafe_code)")));
}

#[test]
fn unsafe_audit_accepts_commented_unsafe_and_forbidding_crates() {
    let fx = Fixture::new("unsafe-neg");
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "pub fn read(p: *const u8) -> u8 {\n\
             // SAFETY: caller guarantees p is valid for reads.\n\
             unsafe { *p }\n\
         }\n",
    );
    fx.write(
        "crates/synapse-bar/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn safe() {}\n",
    );
    assert!(fx.check_rule("unsafe-audit").is_empty());
}

// ---------------------------------------------------------------- no-panic-hot-path

#[test]
fn no_panic_flags_unwrap_macro_and_indexing_on_hot_paths() {
    let fx = Fixture::new("panic-pos");
    fx.write(
        "crates/synapse-server/src/server.rs",
        "pub fn serve(xs: &[u8]) -> u8 {\n\
             let first = xs.first().unwrap();\n\
             if *first == 0 { panic!(\"zero\") }\n\
             xs[1]\n\
         }\n",
    );
    let diags = fx.check_rule("no-panic-hot-path");
    assert_eq!(diags.len(), 3);
    assert!(diags[0].message.contains(".unwrap()"));
    assert!(diags[1].message.contains("panic!"));
    assert!(diags[2].message.contains("index/slice"));
}

#[test]
fn no_panic_ignores_test_modules_and_non_hot_files() {
    let fx = Fixture::new("panic-neg");
    fx.write(
        "crates/synapse-server/src/server.rs",
        "pub fn serve(xs: &[u8]) -> Option<u8> {\n\
             xs.first().copied()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn t() { assert_eq!(super::serve(&[7]).unwrap(), 7); }\n\
         }\n",
    );
    fx.write(
        "crates/synapse-model/src/lib.rs",
        "pub fn free(xs: &[u8]) -> u8 { xs[0] }\n",
    );
    assert!(fx.check_rule("no-panic-hot-path").is_empty());
}

#[test]
fn no_panic_site_is_suppressible_with_a_reason() {
    let fx = Fixture::new("panic-allow");
    fx.write(
        "crates/synapse-server/src/server.rs",
        "pub fn tail(xs: &[u8], n: usize) -> &[u8] {\n\
             // lint:allow(no-panic-hot-path, reason = \"n <= xs.len() is checked by caller()\")\n\
             &xs[n..]\n\
         }\n",
    );
    assert!(fx.check_rule("no-panic-hot-path").is_empty());
}

// ---------------------------------------------------------------- observer-seam-purity

#[test]
fn observer_purity_flags_println_in_library_code() {
    let fx = Fixture::new("observer-pos");
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "pub fn report(x: u64) {\n    println!(\"x = {x}\");\n}\n",
    );
    let diags = fx.check_rule("observer-seam-purity");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("println!"));
}

#[test]
fn observer_purity_permits_cli_bin_and_main() {
    let fx = Fixture::new("observer-neg");
    fx.write(
        "crates/synapse-cli/src/lib.rs",
        "pub fn banner() { println!(\"synapse\"); }\n",
    );
    fx.write(
        "crates/synapse-foo/src/bin/tool.rs",
        "fn main() { println!(\"tool\"); }\n",
    );
    fx.write(
        "crates/synapse-foo/src/main.rs",
        "fn main() { eprintln!(\"oops\"); }\n",
    );
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "// println! lives in binaries only.\npub fn quiet() {}\n",
    );
    assert!(fx.check_rule("observer-seam-purity").is_empty());
}

/// Write the minimal doc + source set that satisfies every rule, so
/// `check_all` fixtures start from a clean tree.
fn write_clean_base(fx: &Fixture) {
    fx.write("README.md", CATALOG_README);
    fx.write("docs/PROTOCOL.md", PROTOCOL_MD);
    fx.write("docs/TRACE.md", "# Traces\n\n**Trace format version: 1**\n");
    fx.write(
        "crates/synapse-trace/src/lib.rs",
        "#![forbid(unsafe_code)]\npub const TRACE_VERSION: u32 = 1;\n",
    );
    fx.write(
        "crates/synapse-server/src/server.rs",
        &format!("#![forbid(unsafe_code)]\n{SERVER_RS}"),
    );
    fx.write("crates/synapse-server/src/metrics.rs", METRICS_RS);
    fx.write(
        "crates/synapse-foo/src/metrics.rs",
        "pub fn install(r: &Registry) {\n\
             let _ = r.counter(\"synapse_foo_requests_total\", \"Requests served.\");\n\
         }\n",
    );
    fx.write("crates/synapse-foo/src/lib.rs", "#![forbid(unsafe_code)]\n");
}

// ---------------------------------------------------------------- lint-allow meta rule

#[test]
fn unused_suppression_is_a_finding() {
    let fx = Fixture::new("allow-unused");
    write_clean_base(&fx);
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // lint:allow(observer-seam-purity, reason = \"nothing here prints\")\n\
         pub fn quiet() {}\n",
    );
    let diags = fx.check_all();
    assert_eq!(rules_of(&diags), ["lint-allow"]);
    assert!(diags[0].message.contains("unused suppression"));
}

#[test]
fn suppression_naming_an_unknown_rule_is_a_finding() {
    let fx = Fixture::new("allow-unknown");
    write_clean_base(&fx);
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // lint:allow(no-panic-hotpath, reason = \"typo in the rule name\")\n\
         pub fn quiet() {}\n",
    );
    let diags = fx.check_all();
    assert_eq!(rules_of(&diags), ["lint-allow"]);
    assert!(diags[0].message.contains("unknown rule `no-panic-hotpath`"));
}

#[test]
fn suppression_without_a_reason_is_a_finding() {
    let fx = Fixture::new("allow-bare");
    write_clean_base(&fx);
    fx.write(
        "crates/synapse-foo/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // lint:allow(observer-seam-purity)\n\
         pub fn quiet() {}\n",
    );
    let diags = fx.check_all();
    assert_eq!(rules_of(&diags), ["lint-allow"]);
    assert!(diags[0].message.contains("malformed suppression"));
}

#[test]
fn suppression_only_covers_adjacent_lines() {
    let fx = Fixture::new("allow-distance");
    fx.write(
        "crates/synapse-server/src/server.rs",
        "// lint:allow(no-panic-hot-path, reason = \"does not reach the unwrap below\")\n\
         pub fn serve(xs: &[u8]) -> u8 {\n\
             *xs.first().unwrap()\n\
         }\n",
    );
    let diags = fx.check_rule("no-panic-hot-path");
    // The directive is separated from the unwrap by a code line, so
    // the finding survives and the directive is reported unused.
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().any(|d| d.rule == "no-panic-hot-path"));
    assert!(diags.iter().any(|d| d.rule == "lint-allow"));
}

// ---------------------------------------------------------------- CLI plumbing

#[test]
fn unknown_rule_filter_is_an_error() {
    let fx = Fixture::new("bad-filter");
    fx.write("crates/synapse-foo/src/lib.rs", "pub fn f() {}\n");
    let opts = CheckOptions {
        rule: Some("no-such-rule".to_string()),
    };
    let err = run_check(&fx.root, &opts).unwrap_err();
    assert!(err.to_string().contains("unknown rule"));
}

#[test]
fn clean_composite_fixture_passes_every_rule() {
    let fx = Fixture::new("all-clean");
    write_clean_base(&fx);
    let diags = fx.check_all();
    assert!(diags.is_empty(), "{:?}", diags);
}
