#![forbid(unsafe_code)]
//! CLI for the workspace invariant checker:
//! `cargo run -p synapse-lint -- check [--json] [--rule <name>] [--root <path>]`.

use std::path::PathBuf;
use std::process::ExitCode;

use synapse_lint::{render_json, rules, run_check, CheckOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("list-rules") => {
            for rule in rules::all() {
                println!("{:<22} {}", rule.id(), rule.describe());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: synapse-lint check [--json] [--rule <name>] [--root <path>]");
            eprintln!("       synapse-lint list-rules");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut opts = CheckOptions::default();
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rule" => match it.next() {
                Some(name) => opts.rule = Some(name.clone()),
                None => return usage_error("--rule needs a rule id"),
            },
            "--root" => match it.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage_error("--root needs a path"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !root.join("crates").is_dir() && !root.join("src").is_dir() {
        return usage_error(&format!(
            "`{}` does not look like the workspace root (no crates/ or src/)",
            root.display()
        ));
    }
    match run_check(&root, &opts) {
        Ok(diags) => {
            if json {
                println!("{}", render_json(&diags));
            } else {
                for d in &diags {
                    println!("{}", d.render());
                }
            }
            if diags.is_empty() {
                if !json {
                    println!("synapse-lint: clean");
                }
                ExitCode::SUCCESS
            } else {
                if !json {
                    eprintln!("synapse-lint: {} finding(s)", diags.len());
                }
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("synapse-lint: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("synapse-lint: {msg}");
    ExitCode::from(2)
}
