#![forbid(unsafe_code)]
//! `synapse-lint` — the workspace invariant checker.
//!
//! Synapse's core claim is *predictability*: emulation must
//! deterministically reproduce application behaviour, and the specs
//! that guarantee it live in prose — `docs/TRACE.md` bans wall-clock
//! from traces, `docs/PROTOCOL.md` pins endpoints and timing
//! constants, the README pins the metric catalog, and conventions
//! (SAFETY-commented `unsafe`, panic-free hot paths, observer-pure
//! libraries) live in review culture. This crate turns those prose
//! specs into machine-checked gates: an offline, std-only static
//! analysis pass with a comment/string/raw-string-aware lexer, run in
//! CI as `cargo run -p synapse-lint -- check`.
//!
//! Per-site suppressions are spelled
//! `// lint:allow(<rule>, reason = "…")` on the offending line or the
//! comment block directly above it; the reason is mandatory, and an
//! unused or malformed directive is itself a finding. The rule catalog
//! is documented in `docs/LINTS.md`.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::path::Path;

pub use diag::Diagnostic;
use workspace::Workspace;

/// Options for one lint pass.
#[derive(Default)]
pub struct CheckOptions {
    /// Run only the rule with this id.
    pub rule: Option<String>,
}

/// Load the workspace at `root` and run the (optionally filtered)
/// rule set, returning surviving diagnostics sorted by location.
pub fn run_check(root: &Path, opts: &CheckOptions) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::load(root)?;
    if let Some(rule) = &opts.rule {
        if !rules::known_ids().contains(&rule.as_str()) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "unknown rule `{rule}`; known rules: {}",
                    rules::known_ids().join(", ")
                ),
            ));
        }
    }
    let mut raw = Vec::new();
    for rule in rules::all() {
        if let Some(only) = &opts.rule {
            if rule.id() != only {
                continue;
            }
        }
        rule.check(&ws, &mut raw);
    }
    // Route each file's diagnostics through its suppression pass; doc
    // findings (README.md, docs/*.md) have no source file and pass
    // through untouched.
    let mut out = Vec::new();
    for file in &ws.files {
        let for_file: Vec<Diagnostic> =
            raw.iter().filter(|d| d.file == file.rel).cloned().collect();
        out.extend(diag::apply_allows(file, for_file, opts.rule.as_deref()));
    }
    out.extend(raw.into_iter().filter(|d| ws.file(&d.file).is_none()));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup();
    Ok(out)
}

/// Render diagnostics as a JSON array (stable key order, no deps).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"message\":{},\"rule\":{}}}",
            json_str(&d.file),
            d.line,
            json_str(&d.message),
            json_str(d.rule),
        ));
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
