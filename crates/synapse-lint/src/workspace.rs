//! Loads the workspace once — every non-vendored Rust source file
//! (lexed) plus the prose specs the rules cross-check — so each rule
//! is a pure function of this snapshot.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, AllowDirective, Lexed};

/// One Rust source file, lexed and tagged.
pub struct SourceFile {
    /// Path relative to the workspace root (`crates/x/src/lib.rs`).
    pub rel: String,
    /// Lexed views of the content.
    pub lexed: Lexed,
    /// Parsed `lint:allow` directives.
    pub allows: Vec<AllowDirective>,
    /// Under a `tests/` directory (integration tests).
    pub in_tests_dir: bool,
    /// 1-based line of the first `#[cfg(test)]` in the code view, if
    /// any: rules about runtime discipline stop there (this workspace
    /// keeps unit-test modules at the tail of each file).
    pub cfg_test_line: Option<usize>,
}

impl SourceFile {
    /// The crate directory this file belongs to (`crates/synapse-foo`),
    /// or `.` for the umbrella crate's `src/` and `tests/`.
    pub fn crate_dir(&self) -> &str {
        let mut parts = self.rel.split('/');
        match parts.next() {
            Some("crates") => {
                let name = parts.next().unwrap_or("");
                &self.rel[..("crates/".len() + name.len())]
            }
            _ => ".",
        }
    }

    /// Is `line` (1-based) runtime code, i.e. before any `#[cfg(test)]`
    /// module and not in an integration-test file?
    pub fn is_runtime_line(&self, line: usize) -> bool {
        !self.in_tests_dir && self.cfg_test_line.map(|t| line < t).unwrap_or(true)
    }
}

/// The loaded workspace snapshot.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Every `.rs` file under `crates/`, `src/`, `tests/` (vendor/ and
    /// target/ excluded), sorted by path.
    pub files: Vec<SourceFile>,
    /// `README.md`, if present.
    pub readme: Option<String>,
    /// `docs/PROTOCOL.md`, if present.
    pub protocol: Option<String>,
    /// `docs/TRACE.md`, if present.
    pub trace_md: Option<String>,
}

impl Workspace {
    /// Load everything the rules look at from `root`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for top in ["crates", "src", "tests"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk_rs(&dir, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::new();
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let lexed = lexer::lex(&text);
            let allows = lexer::parse_allows(&lexed.comments);
            let cfg_test_line = find_on_code_lines(&lexed.code, "#[cfg(test)]");
            let in_tests_dir = rel.split('/').any(|seg| seg == "tests");
            files.push(SourceFile {
                rel,
                lexed,
                allows,
                in_tests_dir,
                cfg_test_line,
            });
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            readme: fs::read_to_string(root.join("README.md")).ok(),
            protocol: fs::read_to_string(root.join("docs/PROTOCOL.md")).ok(),
            trace_md: fs::read_to_string(root.join("docs/TRACE.md")).ok(),
        })
    }

    /// The file at `rel`, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Crate directories (`crates/<name>` plus `.` for the umbrella
    /// crate) that have at least one source file, sorted.
    pub fn crate_dirs(&self) -> Vec<&str> {
        let mut dirs: Vec<&str> = self.files.iter().map(|f| f.crate_dir()).collect();
        dirs.sort_unstable();
        dirs.dedup();
        dirs
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// 1-based line of the first line whose code view contains `needle`.
pub fn find_on_code_lines(code: &str, needle: &str) -> Option<usize> {
    code.lines()
        .enumerate()
        .find(|(_, l)| l.contains(needle))
        .map(|(i, _)| i + 1)
}
