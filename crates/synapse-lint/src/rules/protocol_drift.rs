//! `protocol-drift`: docs/PROTOCOL.md is the normative wire spec. Its
//! §1 endpoint table must agree with the server's route table (the
//! normalized `ENDPOINTS` list in `synapse-server/src/metrics.rs` and
//! the dispatch arms in `server.rs`), and its pinned-constants table
//! must agree with the named constants in code (versions, heartbeat /
//! silence / snapshot cadence, probe and split bounds, lease retry
//! policy). docs/TRACE.md's headline format version is checked against
//! `TRACE_VERSION` the same way.

use crate::diag::Diagnostic;
use crate::rules::{backtick_spans, token_positions, Rule};
use crate::workspace::{SourceFile, Workspace};

pub struct ProtocolDrift;

const PROTOCOL: &str = "docs/PROTOCOL.md";

impl Rule for ProtocolDrift {
    fn id(&self) -> &'static str {
        "protocol-drift"
    }

    fn describe(&self) -> &'static str {
        "docs/PROTOCOL.md endpoint table and pinned constants (versions, heartbeat/silence/backoff, \
         snapshot cadence) match the code; docs/TRACE.md version matches TRACE_VERSION"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(protocol) = &ws.protocol else {
            out.push(Diagnostic::new(
                PROTOCOL,
                0,
                self.id(),
                "docs/PROTOCOL.md not found — the wire protocol must stay a written spec"
                    .to_string(),
            ));
            return;
        };
        self.check_constants(ws, protocol, out);
        self.check_routes(ws, protocol, out);
        self.check_trace_version(ws, out);
    }
}

/// One row of the pinned-constants table.
struct PinnedRow {
    name: String,
    value: String,
    path: String,
    line: usize,
}

impl ProtocolDrift {
    fn check_constants(&self, ws: &Workspace, protocol: &str, out: &mut Vec<Diagnostic>) {
        let rows = parse_pinned_table(protocol);
        if rows.is_empty() {
            out.push(Diagnostic::new(
                PROTOCOL,
                0,
                self.id(),
                "no pinned-constants table found (section \"Pinned constants\" with \
                 | `NAME` | `value` | `path` | rows)"
                    .to_string(),
            ));
            return;
        }
        for row in rows {
            let Some(file) = ws.file(&row.path) else {
                out.push(Diagnostic::new(
                    PROTOCOL,
                    row.line,
                    self.id(),
                    format!(
                        "pinned constant `{}` points at `{}`, which is not in the workspace",
                        row.name, row.path
                    ),
                ));
                continue;
            };
            let check = if row.value.contains("min(") {
                check_backoff_formula(file, &row)
            } else if row.name.chars().all(|c| c.is_lowercase() || c == '_') {
                check_field_default(file, &row)
            } else {
                check_named_const(ws, file, &row)
            };
            if let Err(msg) = check {
                out.push(Diagnostic::new(PROTOCOL, row.line, self.id(), msg));
            }
        }
    }

    fn check_routes(&self, ws: &Workspace, protocol: &str, out: &mut Vec<Diagnostic>) {
        let spec_routes = parse_route_table(protocol);
        if spec_routes.is_empty() {
            out.push(Diagnostic::new(
                PROTOCOL,
                0,
                self.id(),
                "no endpoint table found in docs/PROTOCOL.md §1".to_string(),
            ));
            return;
        }
        let metrics_rel = "crates/synapse-server/src/metrics.rs";
        let server_rel = "crates/synapse-server/src/server.rs";
        let endpoints = ws
            .file(metrics_rel)
            .map(parse_endpoints_list)
            .unwrap_or_default();

        for (path, line) in &spec_routes {
            let normalized = normalize_route(path);
            if !endpoints.iter().any(|e| e == &normalized) {
                out.push(Diagnostic::new(
                    PROTOCOL,
                    *line,
                    self.id(),
                    format!(
                        "spec endpoint `{path}` (normalized `{normalized}`) is missing from the \
                         ENDPOINTS route table in {metrics_rel}"
                    ),
                ));
            }
            if let Some(server) = ws.file(server_rel) {
                if !has_dispatch_arm(server, path) {
                    out.push(Diagnostic::new(
                        PROTOCOL,
                        *line,
                        self.id(),
                        format!(
                            "spec endpoint `{path}` has no matching dispatch arm in {server_rel}"
                        ),
                    ));
                }
            }
        }
        for endpoint in &endpoints {
            if endpoint == "other" {
                continue;
            }
            if !spec_routes
                .iter()
                .any(|(p, _)| &normalize_route(p) == endpoint)
            {
                out.push(Diagnostic::new(
                    metrics_rel,
                    ws.file(metrics_rel)
                        .and_then(|f| {
                            f.lexed
                                .text
                                .find(&format!("\"{endpoint}\""))
                                .map(|at| crate::rules::line_of_offset(&f.lexed.text, at))
                        })
                        .unwrap_or(0),
                    self.id(),
                    format!(
                        "route shape `{endpoint}` is served but absent from the \
                         docs/PROTOCOL.md §1 endpoint table"
                    ),
                ));
            }
        }
    }

    fn check_trace_version(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(trace_md) = &ws.trace_md else {
            return; // PROTOCOL.md pins TRACE_VERSION; TRACE.md headline is extra.
        };
        let Some((spec_v, line)) = parse_trace_headline(trace_md) else {
            out.push(Diagnostic::new(
                "docs/TRACE.md",
                0,
                self.id(),
                "no `**Trace format version: N**` headline found".to_string(),
            ));
            return;
        };
        let code_v = ws
            .file("crates/synapse-trace/src/lib.rs")
            .and_then(|f| const_int_value(f, "TRACE_VERSION"));
        if code_v != Some(spec_v) {
            out.push(Diagnostic::new(
                "docs/TRACE.md",
                line,
                self.id(),
                format!(
                    "TRACE.md says trace format version {spec_v}, but TRACE_VERSION in \
                     crates/synapse-trace/src/lib.rs is {}",
                    code_v.map(|v| v.to_string()).unwrap_or("missing".into())
                ),
            ));
        }
    }
}

/// `**Trace format version: N**` → (N, line).
fn parse_trace_headline(md: &str) -> Option<(u64, usize)> {
    for (idx, line) in md.lines().enumerate() {
        if let Some(tail) = line.strip_prefix("**Trace format version: ") {
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse() {
                return Some((v, idx + 1));
            }
        }
    }
    None
}

/// Rows of the pinned-constants table: `| `NAME` | `value` | `path` | …`
/// under a heading containing "Pinned constants".
fn parse_pinned_table(protocol: &str) -> Vec<PinnedRow> {
    let mut rows = Vec::new();
    let mut in_section = false;
    for (idx, line) in protocol.lines().enumerate() {
        if line.starts_with("#") {
            in_section = line.contains("Pinned constants");
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
        if cells.len() < 3 {
            continue;
        }
        let name = backtick_spans(cells[0]).first().map(|s| s.to_string());
        let value = backtick_spans(cells[1]).first().map(|s| s.to_string());
        let path = backtick_spans(cells[2]).first().map(|s| s.to_string());
        if let (Some(name), Some(value), Some(path)) = (name, value, path) {
            rows.push(PinnedRow {
                name,
                value,
                path,
                line: idx + 1,
            });
        }
    }
    rows
}

/// §1 endpoint-table rows: the `METHOD /path` span of each row.
fn parse_route_table(protocol: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in protocol.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        // Only the first span of a row names the route.
        if let Some(span) = backtick_spans(line).first() {
            let mut words = span.split_whitespace();
            match (words.next(), words.next(), words.next()) {
                (Some(m), Some(path), None)
                    if matches!(m, "GET" | "POST" | "DELETE" | "PUT") && path.starts_with('/') =>
                {
                    out.push((path.to_string(), idx + 1));
                }
                _ => {}
            }
        }
    }
    out
}

/// Collapse a spec path onto the server's normalized route shape.
fn normalize_route(path: &str) -> String {
    let path = path.split('?').next().unwrap_or(path);
    let segments: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            if s.starts_with('<') && s.ends_with('>') {
                ":id".to_string()
            } else {
                s.to_string()
            }
        })
        .collect();
    if segments.first().map(String::as_str) == Some("cluster") {
        return "/cluster".to_string();
    }
    format!("/{}", segments.join("/"))
}

/// The string literals of `const ENDPOINTS: … = [ … ];`.
fn parse_endpoints_list(file: &SourceFile) -> Vec<String> {
    let code = &file.lexed.code;
    let Some(start) = code.find("const ENDPOINTS") else {
        return Vec::new();
    };
    // The array body is between the `=` and the first `]` after it
    // (string contents are blanked in the code view, so the type's
    // `&[&str]` bracket is skipped and no literal can hide a `]`).
    let Some(eq) = code[start..].find('=').map(|e| start + e) else {
        return Vec::new();
    };
    let Some(end) = code[eq..].find(']').map(|e| eq + e) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = &file.lexed.text[eq..end];
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

/// Does `server.rs` contain a match arm for this spec path? Looks for
/// the segment-array pattern (`["campaigns", id, "report"]`) in the
/// original text (code-classified positions only), with `<…>` spec
/// segments matching any identifier binding. Paths under `/cluster/`
/// are resolved against the nested `cluster_route` arms after the
/// `["cluster", …]` prefix arm.
fn has_dispatch_arm(server: &SourceFile, path: &str) -> bool {
    let path = path.split('?').next().unwrap_or(path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if segments.first() == Some(&"cluster") {
        return !server.lexed.code_occurrences("[\"cluster\"").is_empty()
            && (segments.len() == 1 || find_arm(server, &segments[1..]));
    }
    find_arm(server, &segments)
}

/// Scan for `["a", <ident-or-binding>, "c"]` matching `segments`.
fn find_arm(file: &SourceFile, segments: &[&str]) -> bool {
    file.lexed
        .code_occurrences("[")
        .iter()
        .any(|&open| match_arm_at(&file.lexed.text, open, segments))
}

fn match_arm_at(text: &str, open: usize, segments: &[&str]) -> bool {
    let mut i = open + 1;
    let b = text.as_bytes();
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_whitespace() {
            *i += 1;
        }
    };
    for (n, seg) in segments.iter().enumerate() {
        skip_ws(&mut i);
        if seg.starts_with('<') {
            // Any binding: an identifier or `_`.
            let start = i;
            while i < b.len() && crate::lexer::is_ident_byte(b[i]) {
                i += 1;
            }
            if i == start {
                return false;
            }
        } else {
            let want = format!("\"{seg}\"");
            if !text[i..].starts_with(&want) {
                return false;
            }
            i += want.len();
        }
        skip_ws(&mut i);
        if n + 1 < segments.len() {
            if i >= b.len() || b[i] != b',' {
                return false;
            }
            i += 1;
        }
    }
    skip_ws(&mut i);
    i < b.len() && b[i] == b']'
}

/// Value of `const NAME: … = <int>;` in `file`'s runtime code.
fn const_int_value(file: &SourceFile, name: &str) -> Option<u64> {
    let init = const_initializer(file, name)?;
    eval_expr(&init, &|_| None).map(|v| v.0)
}

/// The initializer text of `const NAME … = INIT ;`.
fn const_initializer(file: &SourceFile, name: &str) -> Option<String> {
    let code = &file.lexed.code;
    for (idx, _) in code.match_indices("const ") {
        let after = &code[idx + "const ".len()..];
        let glued = after.as_bytes().get(name.len()).copied();
        if !after.starts_with(name) || glued.map(crate::lexer::is_ident_byte).unwrap_or(false) {
            continue;
        }
        let eq = after.find('=')?;
        let semi = after[eq..].find(';')? + eq;
        return Some(after[eq + 1..semi].trim().to_string());
    }
    None
}

/// Evaluate a constant initializer to `(value, unit)` where unit is
/// `""` (unitless), `"s"`, or `"ms"`. Supports integer literals
/// (with `_`), `+`, `*`, `Duration::from_secs(…)`,
/// `Duration::from_millis(…)`, `as_secs()` / `as_millis()` on
/// referenced constants resolved through `resolve`.
fn eval_expr(
    expr: &str,
    resolve: &dyn Fn(&str) -> Option<(u64, &'static str)>,
) -> Option<(u64, &'static str)> {
    let expr = expr.trim();
    for (ctor, unit) in [
        ("Duration::from_secs(", "s"),
        ("Duration::from_millis(", "ms"),
    ] {
        if let Some(inner) = expr.strip_prefix(ctor) {
            let inner = inner.strip_suffix(')')?;
            let (v, _) = eval_sum(inner, resolve)?;
            return Some((v, unit));
        }
    }
    eval_sum(expr, resolve)
}

fn eval_sum(
    expr: &str,
    resolve: &dyn Fn(&str) -> Option<(u64, &'static str)>,
) -> Option<(u64, &'static str)> {
    let mut total = 0u64;
    for part in expr.split('+') {
        let (v, _) = eval_product(part, resolve)?;
        total += v;
    }
    Some((total, ""))
}

fn eval_product(
    expr: &str,
    resolve: &dyn Fn(&str) -> Option<(u64, &'static str)>,
) -> Option<(u64, &'static str)> {
    let mut total = 1u64;
    for part in expr.split('*') {
        let (v, _) = eval_atom(part.trim(), resolve)?;
        total *= v;
    }
    Some((total, ""))
}

fn eval_atom(
    atom: &str,
    resolve: &dyn Fn(&str) -> Option<(u64, &'static str)>,
) -> Option<(u64, &'static str)> {
    let atom = atom.trim();
    let cleaned: String = atom.chars().filter(|c| *c != '_').collect();
    if let Ok(v) = cleaned.parse::<u64>() {
        return Some((v, ""));
    }
    // `path::to::CONST.as_secs()` or bare `path::CONST`.
    let (ident, method) = match atom.find('.') {
        Some(dot) => (&atom[..dot], &atom[dot + 1..]),
        None => (atom, ""),
    };
    let name = ident.rsplit("::").next()?.trim();
    let (value, unit) = resolve(name)?;
    match method.trim() {
        "" => Some((value, unit)),
        "as_secs()" => Some((if unit == "ms" { value / 1000 } else { value }, "")),
        "as_millis()" => Some((if unit == "s" { value * 1000 } else { value }, "")),
        _ => None,
    }
}

/// Check a SCREAMING_CASE pinned row against the constant in `file`.
fn check_named_const(ws: &Workspace, file: &SourceFile, row: &PinnedRow) -> Result<(), String> {
    let (want, want_unit) = parse_spec_value(&row.value).ok_or_else(|| {
        format!(
            "unparseable pinned value `{}` for `{}`",
            row.value, row.name
        )
    })?;
    let init = const_initializer(file, &row.name).ok_or_else(|| {
        format!(
            "pinned constant `{}` not found as a `const` in `{}`",
            row.name, row.path
        )
    })?;
    let resolve = |name: &str| -> Option<(u64, &'static str)> {
        // Cross-file references resolve against every workspace file.
        for f in &ws.files {
            if let Some(init) = const_initializer(f, name) {
                return eval_expr(&init, &|_| None);
            }
        }
        None
    };
    let (got, got_unit) = eval_expr(&init, &resolve).ok_or_else(|| {
        format!(
            "could not evaluate initializer `{init}` of `{}` in `{}`",
            row.name, row.path
        )
    })?;
    let to_ms = |v: u64, u: &str| match u {
        "s" => v * 1000,
        _ => v,
    };
    let matches = if want_unit.is_empty() && got_unit.is_empty() {
        want == got
    } else {
        to_ms(want, want_unit) == to_ms(got, got_unit)
    };
    if !matches {
        return Err(format!(
            "`{}` drifted: spec pins `{}`, code in `{}` evaluates to {} {}",
            row.name, row.value, row.path, got, got_unit
        ));
    }
    Ok(())
}

/// `6`, `10 s`, `250 ms` → (value, unit).
fn parse_spec_value(value: &str) -> Option<(u64, &'static str)> {
    let mut words = value.split_whitespace();
    let v: u64 = words.next()?.parse().ok()?;
    match words.next() {
        None => Some((v, "")),
        Some("s") => Some((v, "s")),
        Some("ms") => Some((v, "ms")),
        _ => None,
    }
}

/// A lowercase row pins a struct-field default: `name: <int>` must
/// appear in the file's runtime code with the pinned integer.
fn check_field_default(file: &SourceFile, row: &PinnedRow) -> Result<(), String> {
    let want: u64 = row
        .value
        .split_whitespace()
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("unparseable pinned default `{}`", row.value))?;
    for line in file.lexed.code.lines() {
        if let Some(pos) = token_positions(line, &row.name).first() {
            let after = line[pos + row.name.len()..].trim_start();
            if let Some(rest) = after.strip_prefix(':') {
                let digits: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if let Ok(got) = digits.parse::<u64>() {
                    if got == want {
                        return Ok(());
                    }
                    return Err(format!(
                        "default `{}` drifted: spec pins {}, code in `{}` says {}",
                        row.name, want, row.path, got
                    ));
                }
            }
        }
    }
    Err(format!(
        "no `{}: <int>` default found in `{}` to match the pinned {}",
        row.name, row.path, want
    ))
}

/// A formula row (`200 ms × min(attempts, 5)`) pins the lease retry
/// backoff: the file must compute `from_millis(<base> * …min(<cap>)…)`.
fn check_backoff_formula(file: &SourceFile, row: &PinnedRow) -> Result<(), String> {
    let nums: Vec<u64> = row
        .value
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();
    let (base, cap) = match nums.as_slice() {
        [base, cap, ..] => (*base, *cap),
        _ => return Err(format!("unparseable backoff formula `{}`", row.value)),
    };
    let want_base = format!("from_millis({base}");
    let want_cap = format!(".min({cap})");
    for (idx, line) in file.lexed.code.lines().enumerate() {
        if file.is_runtime_line(idx + 1) && line.contains(&want_base) && line.contains(&want_cap) {
            return Ok(());
        }
    }
    Err(format!(
        "backoff drifted: `{}` pins `{}`, but `{}` has no `{want_base} … {want_cap}` expression",
        row.name, row.value, row.path
    ))
}
