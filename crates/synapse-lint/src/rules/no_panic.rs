//! `no-panic-hot-path`: the reactor loop, the server's connection
//! state machines, and the cluster lease drivers are the paths where a
//! panic takes down every connection (or strands a lease) instead of
//! failing one request. Runtime code there must not call
//! `unwrap`/`expect`/`panic!`-family macros or use panicking
//! index/slice expressions; each historically-audited site carries a
//! `lint:allow` stating the invariant that makes it safe.

use crate::diag::Diagnostic;
use crate::rules::{token_positions, Rule};
use crate::workspace::Workspace;

pub struct NoPanicHotPath;

/// The audited hot-path files.
const HOT_PATHS: &[&str] = &[
    "crates/synapse-server/src/reactor.rs",
    "crates/synapse-server/src/server.rs",
    "crates/synapse-cluster/src/coordinator.rs",
];

/// Method-shaped panics.
const BANNED_CALLS: &[&str] = &["unwrap", "expect"];

/// Macro-shaped panics.
const BANNED_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

impl Rule for NoPanicHotPath {
    fn id(&self) -> &'static str {
        "no-panic-hot-path"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/indexing in reactor.rs, server.rs, and the cluster lease \
         drivers (non-test code); each allowed site documents its invariant"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for rel in HOT_PATHS {
            let Some(file) = ws.file(rel) else { continue };
            for (idx, line) in file.lexed.code.lines().enumerate() {
                let lineno = idx + 1;
                if !file.is_runtime_line(lineno) {
                    continue;
                }
                for call in BANNED_CALLS {
                    for at in token_positions(line, call) {
                        if line[at + call.len()..].trim_start().starts_with('(')
                            && at > 0
                            && line.as_bytes()[at - 1] == b'.'
                        {
                            out.push(Diagnostic::new(
                                rel,
                                lineno,
                                self.id(),
                                format!(
                                    "`.{call}()` on a hot path — handle the error or document \
                                     the invariant with a lint:allow"
                                ),
                            ));
                        }
                    }
                }
                for mac in BANNED_MACROS {
                    if line.contains(mac) {
                        out.push(Diagnostic::new(
                            rel,
                            lineno,
                            self.id(),
                            format!("`{mac}` on a hot path — return an error instead"),
                        ));
                    }
                }
                for at in index_positions(line) {
                    out.push(Diagnostic::new(
                        rel,
                        lineno,
                        self.id(),
                        format!(
                            "panicking index/slice expression at column {} — use `.get(…)` or \
                             document the bound invariant with a lint:allow",
                            at + 1
                        ),
                    ));
                }
            }
        }
    }
}

/// Positions of `[` that open an index expression (preceded by an
/// identifier character, `)`, or `]`) rather than an array literal,
/// slice pattern, or attribute.
fn index_positions(line: &str) -> Vec<usize> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        let prev = b[i - 1];
        if crate::lexer::is_ident_byte(prev) || prev == b')' || prev == b']' {
            out.push(i);
        }
    }
    out
}
