//! `observer-seam-purity`: library crates communicate through returned
//! errors, the observer seam, and the telemetry registry — never by
//! writing to stdout/stderr directly. Printing belongs to the CLI
//! binary and the crates' `src/bin/` tools; a stray `println!` in a
//! library corrupts NDJSON streams piped through the same process and
//! bypasses every observer a caller installed.

use crate::diag::Diagnostic;
use crate::rules::{token_positions, Rule};
use crate::workspace::Workspace;

pub struct ObserverPurity;

/// Direct-console macros banned from library code.
const BANNED: &[&str] = &["println!", "eprintln!", "print!", "eprint!", "dbg!"];

impl Rule for ObserverPurity {
    fn id(&self) -> &'static str {
        "observer-seam-purity"
    }

    fn describe(&self) -> &'static str {
        "no println!/eprintln!/dbg! in library crates — use telemetry, the observer seam, or \
         returned errors (CLI and src/bin/ excluded)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.in_tests_dir
                || file.rel.starts_with("crates/synapse-cli/")
                || file.rel.starts_with("crates/synapse-lint/")
                || file.rel.contains("/bin/")
                || file.rel.ends_with("/main.rs")
            {
                continue;
            }
            for (idx, line) in file.lexed.code.lines().enumerate() {
                let lineno = idx + 1;
                if !file.is_runtime_line(lineno) {
                    continue;
                }
                for mac in BANNED {
                    let bare = &mac[..mac.len() - 1];
                    let hit = token_positions(line, bare)
                        .into_iter()
                        .any(|at| line[at + bare.len()..].starts_with('!'));
                    if hit {
                        out.push(Diagnostic::new(
                            &file.rel,
                            lineno,
                            self.id(),
                            format!(
                                "`{mac}` in a library crate — route output through telemetry, \
                                 the observer seam, or a returned error"
                            ),
                        ));
                    }
                }
            }
        }
    }
}
