//! `monotonic-time`: docs/TRACE.md guarantees that traces carry only
//! monotonic offsets from campaign start (`off_secs`) — never absolute
//! wall-clock values — because byte-identical re-recordings are the
//! determinism gate. Wall-clock APIs are therefore banned from the
//! `synapse-trace` record/replay paths and from every file that drives
//! a `TraceRecorder` (the annotation call sites in the server, the
//! cluster coordinator, and the CLI).

use crate::diag::Diagnostic;
use crate::rules::{flag_token, Rule};
use crate::workspace::Workspace;

pub struct MonotonicTime;

/// Wall-clock tokens that must not appear on a record path.
const BANNED: &[&str] = &["SystemTime", "UNIX_EPOCH"];

impl Rule for MonotonicTime {
    fn id(&self) -> &'static str {
        "monotonic-time"
    }

    fn describe(&self) -> &'static str {
        "no wall-clock (SystemTime/UNIX_EPOCH) in synapse-trace or at TraceRecorder call sites; \
         traces are monotonic-offset only (docs/TRACE.md)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.in_tests_dir {
                continue;
            }
            let in_trace_crate = file.rel.starts_with("crates/synapse-trace/src/");
            let drives_recorder = file.lexed.code.contains("TraceRecorder");
            if !in_trace_crate && !drives_recorder {
                continue;
            }
            let why = if in_trace_crate {
                "wall-clock in the trace record/replay path"
            } else {
                "wall-clock in a file that drives a TraceRecorder"
            };
            for banned in BANNED {
                flag_token(
                    file,
                    banned,
                    self.id(),
                    &format!(
                        "{why}: `{banned}` — traces must use only monotonic offsets \
                         from campaign start (docs/TRACE.md)"
                    ),
                    out,
                );
            }
        }
    }
}
