//! `unsafe-audit`: the workspace's own `unsafe` surface is a handful
//! of vendored-libc call sites (epoll, flock, rusage, perf). Every one
//! of them must state its precondition in a `// SAFETY:` comment on
//! the same line or directly above, and every crate that needs no
//! unsafe at all must say so with `#![forbid(unsafe_code)]` so a
//! future `unsafe` cannot slip in without widening the audit surface
//! deliberately.

use crate::diag::Diagnostic;
use crate::rules::{token_positions, Rule};
use crate::workspace::{SourceFile, Workspace};

pub struct UnsafeAudit;

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn describe(&self) -> &'static str {
        "every unsafe block carries a // SAFETY: comment; crates without unsafe declare \
         #![forbid(unsafe_code)] in their root"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            self.check_safety_comments(file, out);
        }
        self.check_forbid_attrs(ws, out);
    }
}

impl UnsafeAudit {
    /// Flag `unsafe` tokens with no adjacent `// SAFETY:` comment.
    /// Applies to test code too — an unsound test is still unsound.
    fn check_safety_comments(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code_lines: Vec<&str> = file.lexed.code.lines().collect();
        let comment_lines: Vec<&str> = file.lexed.comments.lines().collect();
        for (idx, line) in code_lines.iter().enumerate() {
            let lineno = idx + 1;
            if token_positions(line, "unsafe").is_empty() {
                continue;
            }
            if !has_adjacent_safety(lineno, &code_lines, &comment_lines) {
                out.push(Diagnostic::new(
                    &file.rel,
                    lineno,
                    self.id(),
                    "`unsafe` without a `// SAFETY:` comment on the same line or directly above"
                        .to_string(),
                ));
            }
        }
    }

    /// Crates whose sources contain no `unsafe` must carry
    /// `#![forbid(unsafe_code)]` in their root (`src/lib.rs`, or
    /// `src/main.rs` for binary-only crates).
    fn check_forbid_attrs(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for crate_dir in ws.crate_dirs() {
            let src_files: Vec<&SourceFile> = ws
                .files
                .iter()
                .filter(|f| f.crate_dir() == crate_dir && !f.in_tests_dir)
                .collect();
            if src_files.is_empty() {
                continue;
            }
            let has_unsafe = src_files.iter().any(|f| {
                f.lexed
                    .code
                    .lines()
                    .any(|l| !token_positions(l, "unsafe").is_empty())
            });
            if has_unsafe {
                continue;
            }
            let root = ["src/lib.rs", "src/main.rs"]
                .iter()
                .filter_map(|tail| {
                    let rel = if crate_dir == "." {
                        tail.to_string()
                    } else {
                        format!("{crate_dir}/{tail}")
                    };
                    ws.file(&rel)
                })
                .next();
            let Some(root) = root else { continue };
            if !root.lexed.code.contains("#![forbid(unsafe_code)]") {
                // Anchored at line 1 so a crate that *plans* to grow
                // unsafe can suppress with a reasoned lint:allow at
                // the top of its root file.
                out.push(Diagnostic::new(
                    &root.rel,
                    1,
                    self.id(),
                    format!(
                        "crate `{crate_dir}` uses no unsafe — add `#![forbid(unsafe_code)]` to \
                         its root so none can creep in"
                    ),
                ));
            }
        }
    }
}

/// Is there a `SAFETY:` comment on `lineno` or on the contiguous run
/// of comment-only lines directly above it?
fn has_adjacent_safety(lineno: usize, code_lines: &[&str], comment_lines: &[&str]) -> bool {
    let has = |l: usize| {
        comment_lines
            .get(l - 1)
            .map(|c| c.contains("SAFETY:"))
            .unwrap_or(false)
    };
    if has(lineno) {
        return true;
    }
    let mut l = lineno;
    while l > 1 {
        l -= 1;
        let code_empty = code_lines
            .get(l - 1)
            .map(|c| c.trim().is_empty())
            .unwrap_or(true);
        if !code_empty {
            return false;
        }
        if has(l) {
            return true;
        }
    }
    false
}
