//! `metric-catalog`: the README "Observability" catalog and the
//! telemetry registrations in the `metrics.rs` modules must describe
//! the same set of `synapse_*` series, with the same kinds, and the
//! names must follow the scheme the README states: counters end
//! `_total`; histograms carry a base unit (`_seconds`/`_bytes`);
//! gauges never end `_total`.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::rules::{backtick_spans, line_of_offset, Rule};
use crate::workspace::{SourceFile, Workspace};

pub struct MetricCatalog;

/// Registry methods that mint a series, with the kind they produce.
const REGISTRATION_CALLS: &[(&str, &str)] = &[
    (".counter(", "counter"),
    (".counter_with(", "counter"),
    (".bind_counter(", "counter"),
    (".gauge(", "gauge"),
    (".gauge_with(", "gauge"),
    (".histogram(", "histogram"),
    (".histogram_with(", "histogram"),
];

/// A series registration found in code.
struct Registration {
    name: String,
    kind: &'static str,
    file: String,
    line: usize,
}

impl Rule for MetricCatalog {
    fn id(&self) -> &'static str {
        "metric-catalog"
    }

    fn describe(&self) -> &'static str {
        "every registered synapse_* series appears in the README observability catalog (and vice \
         versa, with matching kind); counters end _total, histograms _seconds/_bytes"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let registered = collect_registrations(ws);
        let Some(readme) = &ws.readme else {
            out.push(Diagnostic::new(
                "README.md",
                0,
                self.id(),
                "README.md not found — the observability catalog is the normative series list"
                    .to_string(),
            ));
            return;
        };
        let catalog = parse_catalog(readme);
        if catalog.is_empty() && !registered.is_empty() {
            out.push(Diagnostic::new(
                "README.md",
                0,
                self.id(),
                "no observability catalog table found in README.md (rows like \
                 `| \\`synapse_…\\` | counter | …|`)"
                    .to_string(),
            ));
            return;
        }

        for reg in &registered {
            match catalog.get(&reg.name) {
                None => out.push(Diagnostic::new(
                    &reg.file,
                    reg.line,
                    self.id(),
                    format!(
                        "series `{}` is registered here but missing from the README \
                         observability catalog",
                        reg.name
                    ),
                )),
                Some((kind, md_line)) if kind != reg.kind => out.push(Diagnostic::new(
                    "README.md",
                    *md_line,
                    self.id(),
                    format!(
                        "catalog lists `{}` as {kind}, but it is registered as a {} at {}:{}",
                        reg.name, reg.kind, reg.file, reg.line
                    ),
                )),
                Some(_) => {}
            }
            check_naming(reg, self.id(), out);
        }

        for (name, (_, md_line)) in &catalog {
            if !registered.iter().any(|r| &r.name == name) {
                out.push(Diagnostic::new(
                    "README.md",
                    *md_line,
                    self.id(),
                    format!(
                        "catalog lists `{name}` but no registration for it exists in any \
                         metrics module"
                    ),
                ));
            }
        }
    }
}

/// Naming-scheme checks at the registration site (suppressible there).
fn check_naming(reg: &Registration, rule: &'static str, out: &mut Vec<Diagnostic>) {
    let mut bad = |why: String| {
        out.push(Diagnostic::new(&reg.file, reg.line, rule, why));
    };
    if reg.name.splitn(3, '_').count() < 3 {
        bad(format!(
            "series `{}` must be named `synapse_<subsystem>_<name>`",
            reg.name
        ));
        return;
    }
    match reg.kind {
        "counter" if !reg.name.ends_with("_total") => bad(format!(
            "counter `{}` must end `_total` (Prometheus suffix convention, README scheme)",
            reg.name
        )),
        "histogram" if !reg.name.ends_with("_seconds") && !reg.name.ends_with("_bytes") => {
            bad(format!(
                "histogram `{}` must carry a base unit suffix (`_seconds` or `_bytes`)",
                reg.name
            ))
        }
        "gauge" if reg.name.ends_with("_total") => bad(format!(
            "gauge `{}` must not use the counter suffix `_total`",
            reg.name
        )),
        _ => {}
    }
}

/// Every `synapse_*` string literal passed as the first argument of a
/// registry registration call, across runtime code.
fn collect_registrations(ws: &Workspace) -> Vec<Registration> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.in_tests_dir || file.rel.starts_with("crates/synapse-lint/") {
            continue;
        }
        for (call, kind) in REGISTRATION_CALLS {
            let mut from = 0;
            let code = &file.lexed.code;
            while let Some(pos) = code[from..].find(call) {
                let paren = from + pos + call.len();
                from = paren;
                let call_line = line_of_offset(code, paren);
                if !file.is_runtime_line(call_line) {
                    continue;
                }
                if let Some((name, lit_line)) = string_literal_after(file, paren - 1) {
                    if name.starts_with("synapse_") {
                        out.push(Registration {
                            name,
                            kind,
                            file: file.rel.clone(),
                            line: lit_line,
                        });
                    }
                }
            }
        }
    }
    out
}

/// The string literal that opens the argument list whose `(` sits at
/// `paren` in the original text, if the first argument is a literal.
/// Whitespace and interposed comments (e.g. a suppression directive)
/// before the literal are skipped.
fn string_literal_after(file: &SourceFile, paren: usize) -> Option<(String, usize)> {
    let text = &file.lexed.text;
    let b = text.as_bytes();
    let mut i = paren + 1;
    while i < b.len()
        && ((b[i] as char).is_whitespace()
            || file.lexed.classes.get(i) == Some(&crate::lexer::Class::Comment))
    {
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    let start = i + 1;
    let mut j = start;
    while j < b.len() && b[j] != b'"' {
        if b[j] == b'\\' {
            j += 1;
        }
        j += 1;
    }
    Some((
        text[start..j.min(b.len())].to_string(),
        line_of_offset(text, i),
    ))
}

/// Parse the README catalog table: rows whose first cell holds
/// backticked series names, second cell the kind. Returns
/// `name -> (kind, line)`.
fn parse_catalog(readme: &str) -> BTreeMap<String, (String, usize)> {
    let mut out = BTreeMap::new();
    for (idx, line) in readme.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 3 {
            continue;
        }
        let kind = cells[1].trim();
        if !matches!(kind, "counter" | "gauge" | "histogram") {
            continue;
        }
        let names = expand_cell(cells[0]);
        for name in names {
            out.insert(name, (kind.to_string(), idx + 1));
        }
    }
    out
}

/// Expand one catalog cell into full series names: strips `{label=…}`
/// suffixes, expands `{a,b,c}` alternation, and resolves the `…_x`
/// shorthand against the `synapse_<subsystem>` prefix of the first
/// name in the cell.
fn expand_cell(cell: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut subsystem_prefix: Option<String> = None;
    for span in backtick_spans(cell) {
        let span = strip_label(span);
        if span.is_empty() {
            continue;
        }
        let replaced = match span.strip_prefix('…') {
            Some(tail) => match &subsystem_prefix {
                Some(p) => format!("{p}{tail}"),
                None => continue,
            },
            None => span.to_string(),
        };
        for name in expand_braces(&replaced) {
            if !name.starts_with("synapse_") {
                continue;
            }
            if subsystem_prefix.is_none() {
                let mut parts = name.splitn(3, '_');
                let (a, b) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                subsystem_prefix = Some(format!("{a}_{b}"));
            }
            out.push(name);
        }
    }
    out
}

/// Remove a `{label=…}` selector; keep `{a,b,c}` alternation intact.
fn strip_label(span: &str) -> &str {
    match span.find('{') {
        Some(open) => {
            let inner_end = span[open..]
                .find('}')
                .map(|e| open + e)
                .unwrap_or(span.len());
            if span[open..inner_end].contains('=') {
                &span[..open]
            } else {
                span
            }
        }
        None => span,
    }
}

/// `prefix{a,b,c}suffix` → `prefixasuffix`, `prefixbsuffix`, …
fn expand_braces(name: &str) -> Vec<String> {
    let (Some(open), Some(close)) = (name.find('{'), name.find('}')) else {
        return vec![name.to_string()];
    };
    if close < open {
        return vec![name.to_string()];
    }
    let (prefix, rest) = name.split_at(open);
    let inner = &rest[1..close - open];
    let suffix = &rest[close - open + 1..];
    inner
        .split(',')
        .map(|alt| format!("{prefix}{}{suffix}", alt.trim()))
        .collect()
}
