//! The rule registry. Every rule is a pure function of the loaded
//! [`Workspace`] snapshot; diagnostics it emits are then filtered
//! through the per-site `lint:allow` suppressions (see
//! [`crate::diag::apply_allows`]).

use crate::diag::Diagnostic;
use crate::workspace::{SourceFile, Workspace};

mod metric_catalog;
mod monotonic_time;
mod no_panic;
mod observer_purity;
mod protocol_drift;
mod unsafe_audit;

/// One invariant checker.
pub trait Rule {
    /// Stable id used in diagnostics and `lint:allow(<id>, …)`.
    fn id(&self) -> &'static str;
    /// One-line description for `list-rules` and docs.
    fn describe(&self) -> &'static str;
    /// Emit every violation found in `ws`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// All shipped rules, in catalog order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(monotonic_time::MonotonicTime),
        Box::new(metric_catalog::MetricCatalog),
        Box::new(protocol_drift::ProtocolDrift),
        Box::new(unsafe_audit::UnsafeAudit),
        Box::new(no_panic::NoPanicHotPath),
        Box::new(observer_purity::ObserverPurity),
    ]
}

/// Every diagnostic-producing rule id, including the meta rule emitted
/// by the suppression pass itself.
pub fn known_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all().iter().map(|r| r.id()).collect();
    ids.push("lint-allow");
    ids
}

/// Find word-bounded occurrences of `needle` in `line` (an
/// already-blanked code view line): the match must not be glued to an
/// identifier character on either side.
pub(crate) fn token_positions(line: &str, needle: &str) -> Vec<usize> {
    let lb = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !crate::lexer::is_ident_byte(lb[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= lb.len() || !crate::lexer::is_ident_byte(lb[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Emit one diagnostic per word-bounded occurrence of `needle` on the
/// runtime lines of `file`'s code view.
pub(crate) fn flag_token(
    file: &SourceFile,
    needle: &str,
    rule: &'static str,
    message: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in file.lexed.code.lines().enumerate() {
        let lineno = idx + 1;
        if !file.is_runtime_line(lineno) {
            continue;
        }
        if !token_positions(line, needle).is_empty() {
            out.push(Diagnostic::new(
                &file.rel,
                lineno,
                rule,
                message.to_string(),
            ));
        }
    }
}

/// The byte offset's 1-based line number within `text`.
pub(crate) fn line_of_offset(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Inline-code spans (`` `…` ``) on one markdown line.
pub(crate) fn backtick_spans(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let tail = &rest[open + 1..];
        match tail.find('`') {
            Some(close) => {
                out.push(&tail[..close]);
                rest = &tail[close + 1..];
            }
            None => break,
        }
    }
    out
}
