//! A small Rust lexer that is exactly smart enough for linting: it
//! classifies every byte of a source file as code, comment, string
//! (including raw strings and byte strings), or char literal, so the
//! rules can search *code* without tripping over a banned token that
//! only appears inside a doc comment or a string, and can search
//! *comments* for `SAFETY:` and `lint:allow` directives.
//!
//! The lexer is byte-oriented and line-preserving: both derived views
//! ([`Lexed::code`] and [`Lexed::comments`]) have the same length and
//! the same newline positions as the original text, with out-of-class
//! bytes blanked to spaces. `file:line` positions therefore transfer
//! between views for free.

/// Byte classes produced by [`lex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Executable source: identifiers, punctuation, literals' delimiters
    /// are all "code" except the classes below.
    Code,
    /// Line (`//`, `///`, `//!`) or block (`/* */`, nested) comments,
    /// delimiters included.
    Comment,
    /// String literal content and delimiters: `"…"`, `r"…"`, `r#"…"#`,
    /// `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
}

/// A source file run through the lexer.
pub struct Lexed {
    /// The original text.
    pub text: String,
    /// Same length as `text`: non-code bytes blanked to `' '`
    /// (newlines preserved).
    pub code: String,
    /// Same length as `text`: non-comment bytes blanked to `' '`
    /// (newlines preserved).
    pub comments: String,
    /// Per-byte classification of `text`.
    pub classes: Vec<Class>,
}

impl Lexed {
    /// Byte offsets where `needle` occurs in the original text with
    /// its first byte classified as code (i.e. not inside a comment,
    /// string, or char literal).
    pub fn code_occurrences(&self, needle: &str) -> Vec<usize> {
        self.text
            .match_indices(needle)
            .filter(|(at, _)| self.classes.get(*at) == Some(&Class::Code))
            .map(|(at, _)| at)
            .collect()
    }
}

/// Classify every byte of `text`.
pub fn classify(text: &str) -> Vec<Class> {
    let b = text.as_bytes();
    let n = b.len();
    let mut class = vec![Class::Code; n];
    let mut i = 0;
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    class[i] = Class::Comment;
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < n {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                        depth += 1;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        class[i] = Class::Comment;
                        i += 1;
                    }
                }
            }
            b'"' => i = lex_string(b, i, i, &mut class),
            b'r' | b'b' if is_raw_or_byte_string_start(b, i) => {
                let (start, hashes) = raw_prefix(b, i);
                class[i..start].fill(Class::Str);
                if b.get(start) == Some(&b'"') && is_raw_at(b, i) {
                    i = lex_raw_string(b, start, hashes, &mut class, i);
                } else {
                    // b"…": a plain (escaped) string with a byte prefix.
                    i = lex_string(b, start, i, &mut class);
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(b, i) {
                    class[i..end].fill(Class::Char);
                    i = end;
                } else {
                    // A lifetime (`'a`) or a stray quote: code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    class
}

/// `r"`, `r#"`, `br"`, `b"` … starting at `i`? (Only when `i` does not
/// sit inside an identifier such as `for r in …` or `var_b"`.)
fn is_raw_or_byte_string_start(b: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(b[i - 1]) {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j > i && j < b.len() && b[j] == b'"' && (b[i] == b'r' || b[i] == b'b')
}

/// Does the token starting at `i` carry an `r` (raw) marker?
fn is_raw_at(b: &[u8], i: usize) -> bool {
    b[i] == b'r' || (b[i] == b'b' && b.get(i + 1) == Some(&b'r'))
}

/// Position of the opening quote and the number of `#`s for a raw or
/// byte string whose prefix starts at `i`.
fn raw_prefix(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j, hashes)
}

/// Lex a plain `"…"` string whose opening quote is at `quote`; bytes
/// from `lo` (where any `b` prefix began) are classified as string.
fn lex_string(b: &[u8], quote: usize, lo: usize, class: &mut [Class]) -> usize {
    let mut i = quote + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let end = i.min(b.len());
    class[lo..end].fill(Class::Str);
    end
}

/// Lex a raw string whose opening quote is at `quote` with `hashes`
/// `#`s; `prefix_start` is where the `r`/`br` prefix began.
fn lex_raw_string(
    b: &[u8],
    quote: usize,
    hashes: usize,
    class: &mut [Class],
    prefix_start: usize,
) -> usize {
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                i += 1 + hashes;
                break;
            }
        }
        i += 1;
    }
    let end = i.min(b.len());
    class[prefix_start..end].fill(Class::Str);
    end
}

/// If a char (or byte-char) literal starts at `i` (which holds `'`),
/// return the byte just past its closing quote; `None` for lifetimes.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escape: skip the backslash and the escape head, then scan to
        // the closing quote (covers \n, \', \u{…}, \x7f).
        j += 2;
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' {
            return Some(j + 1);
        }
        return None;
    }
    // Unescaped: exactly one char (possibly multi-byte) then `'`;
    // anything else is a lifetime.
    let mut k = j + 1;
    while k < b.len() && (b[k] & 0xC0) == 0x80 {
        k += 1; // continuation bytes of one UTF-8 scalar
    }
    if k < b.len() && b[k] == b'\'' && b[j] != b'\'' {
        return Some(k + 1);
    }
    None
}

pub(crate) fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `text` into the two blanked views.
pub fn lex(text: &str) -> Lexed {
    let class = classify(text);
    let b = text.as_bytes();
    let mut code = Vec::with_capacity(b.len());
    let mut comments = Vec::with_capacity(b.len());
    for (i, &c) in b.iter().enumerate() {
        let keep_nl = c == b'\n';
        code.push(if class[i] == Class::Code || keep_nl {
            c
        } else {
            b' '
        });
        comments.push(if class[i] == Class::Comment || keep_nl {
            c
        } else {
            b' '
        });
    }
    Lexed {
        text: text.to_string(),
        code: sanitize_utf8(code),
        comments: sanitize_utf8(comments),
        classes: class,
    }
}

/// Blank every non-ASCII byte so the derived views are valid UTF-8 of
/// the same byte length as the original (multi-byte chars only occur
/// in comments and strings, which the views blank anyway; identifiers
/// the rules search for are ASCII).
fn sanitize_utf8(mut v: Vec<u8>) -> String {
    for b in v.iter_mut() {
        if *b >= 0x80 {
            *b = b' ';
        }
    }
    String::from_utf8(v).expect("all bytes are ASCII after sanitizing")
}

/// A parsed `// lint:allow(<rule>, reason = "…")` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the directive sits on.
    pub line: usize,
    /// The rule id inside the parens.
    pub rule: String,
    /// The quoted reason, if present and non-empty.
    pub reason: Option<String>,
    /// Raw problem text when the directive could not be parsed.
    pub malformed: Option<String>,
}

/// Extract every `lint:allow` directive from the comment view.
pub fn parse_allows(comments: &str) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (idx, line) in comments.lines().enumerate() {
        let mut rest = line;
        let mut col = 0;
        while let Some(pos) = rest.find("lint:allow") {
            let at = col + pos;
            let after = &line[at + "lint:allow".len()..];
            out.extend(parse_one_allow(idx + 1, after));
            col = at + "lint:allow".len();
            rest = &line[col..];
        }
    }
    out
}

fn parse_one_allow(line: usize, after: &str) -> Option<AllowDirective> {
    // Prose in docs or this file that merely *mentions* the directive
    // keyword is not a directive: a directive must open a paren and
    // name a plausibly-shaped rule (`[a-z][a-z0-9-]*`). Typos inside
    // that shape are caught downstream against the known-rule list.
    let open = after.trim_start().strip_prefix('(')?;
    let rule_end = open.find([',', ')'])?;
    let rule = open[..rule_end].trim();
    let plausible = rule
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && rule.starts_with(|c: char| c.is_ascii_lowercase());
    if !plausible {
        return None;
    }
    // The reason is a quoted string (no embedded quotes) followed by
    // the directive's closing paren — the reason text itself may
    // contain parentheses.
    let tail = match open.as_bytes()[rule_end] {
        b',' => open[rule_end + 1..].trim_start(),
        _ => "",
    };
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| {
            let q = t.find('"')?;
            t[q + 1..]
                .trim_start()
                .starts_with(')')
                .then(|| t[..q].to_string())
        });
    Some(match reason {
        Some(r) if !r.trim().is_empty() => AllowDirective {
            line,
            rule: rule.to_string(),
            reason: Some(r),
            malformed: None,
        },
        _ => AllowDirective {
            line,
            rule: rule.to_string(),
            reason: None,
            malformed: Some(format!(
                "`lint:allow({rule})` needs a non-empty `reason = \"…\"`"
            )),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        lex(src).code
    }

    #[test]
    fn line_comments_are_blanked_from_code() {
        let c = code_of("let x = 1; // SystemTime here\nlet y = 2;\n");
        assert!(c.contains("let x = 1;"));
        assert!(!c.contains("SystemTime"));
        assert!(c.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_end_at_matching_depth() {
        let c = code_of("a /* one /* two */ still */ b");
        assert!(c.contains('a'));
        assert!(c.contains('b'));
        assert!(!c.contains("still"));
    }

    #[test]
    fn strings_and_raw_strings_are_not_code() {
        let c = code_of(r####"let s = "panic!"; let r = r#"unwrap() " quote"# ; done"####);
        assert!(!c.contains("panic!"));
        assert!(!c.contains("unwrap"));
        assert!(c.contains("done"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = code_of(r#"let s = "a\"b; panic!()"; after"#);
        assert!(!c.contains("panic!"));
        assert!(c.contains("after"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; code }");
        // The lifetime must stay code, the quote char must not open a string.
        assert!(c.contains("'a"));
        assert!(c.contains("code"));
        let c2 = code_of("let q = '\"'; \"stringed\" tail");
        assert!(!c2.contains("stringed"));
        assert!(c2.contains("tail"));
    }

    #[test]
    fn byte_strings_are_strings() {
        let c = code_of(r#"let b = b"unwrap()"; let br = br"expect("; tail"#);
        assert!(!c.contains("unwrap"));
        assert!(!c.contains("expect"));
        assert!(c.contains("tail"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let c = code_of("for r in 0..3 { var\"x\" }");
        assert!(c.contains("for r in 0..3"));
    }

    #[test]
    fn comment_view_keeps_comments_only() {
        let l = lex("let a = 1; // SAFETY: fine\n\"// not a comment\"\n");
        assert!(l.comments.contains("SAFETY: fine"));
        assert!(!l.comments.contains("let a"));
        assert!(!l.comments.contains("not a comment"));
    }

    #[test]
    fn allow_directive_roundtrip() {
        let l = lex("x(); // lint:allow(no-panic-hot-path, reason = \"invariant: y\")\n");
        let allows = parse_allows(&l.comments);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-panic-hot-path");
        assert_eq!(allows[0].reason.as_deref(), Some("invariant: y"));
        assert!(allows[0].malformed.is_none());
        assert_eq!(allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        for src in [
            "// lint:allow(unsafe-audit)\n",
            "// lint:allow(unsafe-audit, reason = \"\")\n",
            "// lint:allow(unsafe-audit, because = \"x\")\n",
        ] {
            let allows = parse_allows(&lex(src).comments);
            assert_eq!(allows.len(), 1, "{src}");
            assert!(allows[0].malformed.is_some(), "{src}");
        }
    }

    #[test]
    fn prose_mention_of_allow_is_not_a_directive() {
        // Docs talk about the syntax without triggering it: no paren,
        // or a placeholder that is not a plausible rule name.
        for src in [
            "// suppress with lint:allow where justified\n",
            "// spelled lint:allow(<rule>, reason = \"…\")\n",
        ] {
            assert!(parse_allows(&lex(src).comments).is_empty(), "{src}");
        }
    }

    #[test]
    fn allow_in_string_is_not_a_directive() {
        let allows =
            parse_allows(&lex("let s = \"lint:allow(x, reason = \\\"y\\\")\";\n").comments);
        assert!(allows.is_empty());
    }

    #[test]
    fn multibyte_chars_blank_cleanly() {
        let c = code_of("// héllo × comment\nlet x = 1;\n");
        assert!(c.contains("let x = 1;"));
    }
}
