//! Diagnostics and the `lint:allow` suppression pass.

use crate::workspace::SourceFile;

/// One finding: a machine-checkable invariant violated at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/x/src/lib.rs`, `README.md`).
    pub file: String,
    /// 1-based line; 0 when the finding is about a whole file.
    pub line: usize,
    /// Rule id (`no-panic-hot-path`, …).
    pub rule: &'static str,
    /// Human-readable statement of the violation.
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: usize, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }

    /// `file:line: [rule] message` (line omitted when 0).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Apply per-site suppressions to `diags` for one file: a
/// `// lint:allow(<rule>, reason = "…")` on the flagged line, or on a
/// contiguous run of comment-only lines directly above it, suppresses
/// that rule there. Returns the surviving diagnostics plus one
/// `lint-allow` diagnostic per malformed or unused directive.
///
/// When a `--rule` filter is active (`rule_filter`), directives for
/// other rules are left alone — they are neither used nor reportable
/// as unused on a partial run.
pub fn apply_allows(
    file: &SourceFile,
    diags: Vec<Diagnostic>,
    rule_filter: Option<&str>,
) -> Vec<Diagnostic> {
    let code_lines: Vec<&str> = file.lexed.code.lines().collect();
    let mut used = vec![false; file.allows.len()];
    let mut out = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for (i, allow) in file.allows.iter().enumerate() {
            if allow.malformed.is_some() || allow.rule != d.rule {
                continue;
            }
            if allow_covers(allow.line, d.line, &code_lines) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (i, allow) in file.allows.iter().enumerate() {
        if let Some(filter) = rule_filter {
            // Malformed directives have no reliable rule name; report
            // them only on full runs. Foreign rules' allows are out of
            // scope on a filtered run.
            if allow.malformed.is_some() || allow.rule != filter {
                continue;
            }
        }
        if let Some(problem) = &allow.malformed {
            out.push(Diagnostic::new(
                &file.rel,
                allow.line,
                "lint-allow",
                format!("malformed suppression: {problem}"),
            ));
        } else if !crate::rules::known_ids().contains(&allow.rule.as_str()) {
            out.push(Diagnostic::new(
                &file.rel,
                allow.line,
                "lint-allow",
                format!(
                    "suppression names unknown rule `{}`; known rules: {}",
                    allow.rule,
                    crate::rules::known_ids().join(", ")
                ),
            ));
        } else if !used[i] {
            out.push(Diagnostic::new(
                &file.rel,
                allow.line,
                "lint-allow",
                format!(
                    "unused suppression for `{}` — nothing to allow here; remove it",
                    allow.rule
                ),
            ));
        }
    }
    out
}

/// Does an allow on `allow_line` cover a diagnostic on `diag_line`?
/// Same line always; a line above only through comment-only lines.
fn allow_covers(allow_line: usize, diag_line: usize, code_lines: &[&str]) -> bool {
    if allow_line == diag_line {
        return true;
    }
    if allow_line > diag_line {
        return false;
    }
    // Every line strictly between the allow and the finding — and the
    // allow's own line — must hold no code.
    (allow_line..diag_line).all(|l| {
        code_lines
            .get(l - 1)
            .map(|c| c.trim().is_empty())
            .unwrap_or(false)
    })
}
