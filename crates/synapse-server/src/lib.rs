#![warn(missing_docs)]

//! `synapse-server` — the long-running `synapse serve` daemon.
//!
//! The paper positions Synapse as a profiler/emulator *driven by*
//! workload-management systems that need on-demand runtime estimates;
//! a one-shot CLI makes every such question pay full process startup
//! and cache warm-up. This crate keeps the process alive: campaigns
//! are submitted over HTTP, sweep through a shared job queue, memoize
//! into one process-wide [`synapse_campaign::ResultCache`], and stream
//! per-point results the moment they land.
//!
//! The workspace is offline/vendored, so the HTTP/1.1 layer is
//! hand-rolled ([`http`]) the same way the vendored crates hand-roll
//! serde — no tokio, no mio: a single epoll reactor thread (vendored
//! `epoll`/`eventfd` bindings) owns every connection, with a small
//! handler pool for CPU-bound routing. Thousands of idle event-stream
//! watchers cost file descriptors, not threads.
//!
//! # Endpoints
//!
//! | Method + path               | Meaning                                       |
//! |-----------------------------|-----------------------------------------------|
//! | `POST /campaigns`           | submit a TOML/JSON spec → `{"id": "j1", ...}` |
//! | `POST /campaigns?watch=1`   | submit + stream on one connection             |
//! | `GET /campaigns`            | status of every job                           |
//! | `GET /campaigns/j1`         | one job's status/summary                      |
//! | `GET /campaigns/j1/events`  | chunked NDJSON stream of per-point results    |
//! | `…/events?aggregates=1`     | lifecycle + aggregate snapshot deltas only    |
//! | `GET /campaigns/j1/aggregates` | live per-(axis, value) stats, mid-sweep too |
//! | `GET /campaigns/j1/report`  | deterministic report of a completed job       |
//! | `POST /campaigns?record=1`  | submit + capture a flight-recorder trace      |
//! | `GET /campaigns/j1/trace`   | recorded trace (NDJSON) of a finished job     |
//! | `DELETE /campaigns/j1`      | cooperative cancellation                      |
//! | `GET /healthz`              | liveness + queue depth + connection load      |
//! | `GET /store/stats`          | shape + lock contention of the shared cache   |
//! | `POST /shutdown`            | graceful exit                                 |
//! | `POST /leases`              | sweep a grid slice for a cluster coordinator  |
//! | `POST /cluster/workers`     | register a worker (coordinator mode)          |
//! | `GET /cluster/status`       | worker registry + health (coordinator mode)   |
//!
//! # Event stream
//!
//! `GET /campaigns/<id>/events` replays the job's history and then
//! follows live: `started`, one `point` per landed scenario point (in
//! completion order, each carrying its grid `index`), periodic
//! `snapshot` aggregate **deltas** (at most one per
//! [`SNAPSHOT_MIN_INTERVAL`], each carrying only the slices that
//! changed since the previous one, plus a guaranteed terminal
//! snapshot), and exactly one terminal event — `completed`,
//! `cancelled` or `failed`. With `?aggregates=1` the per-point lines
//! are omitted: the stream is lifecycle + snapshots only, so its size
//! is O(slices · snapshots) instead of O(points).
//!
//! ```no_run
//! use synapse_server::{Client, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..Default::default()
//! })?;
//! let handle = server.handle()?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let client = Client::new(addr.to_string());
//! let reply = client.submit("name = \"quick\"\n…")?;
//! let id = reply["id"].as_str().unwrap();
//! let summary = client.watch(id, |line| {
//!     println!("{line}");
//!     true // keep streaming; false hangs up early
//! })?;
//! assert_eq!(summary["event"].as_str(), Some("completed"));
//! handle.shutdown();
//! # Ok::<(), synapse_server::ServerError>(())
//! ```

pub mod client;
pub mod http;
pub mod job;
mod metrics;
mod reactor;
pub mod server;

pub use client::{Client, Response, STREAM_SILENCE_TIMEOUT};
pub use job::{EventRing, Job, JobKind, JobState, LeaseRequest};
pub use server::{
    lease_batch_line, Server, ServerConfig, ServerHandle, BATCH_FRAME_VERSION,
    DEFAULT_BATCH_POINTS, DEFAULT_EVENT_BUFFER, DEFAULT_HANDLER_THREADS, DEFAULT_MAX_CONNECTIONS,
    DEFAULT_STREAM_HIGH_WATER, HEARTBEAT_EVERY, SNAPSHOT_EVERY, SNAPSHOT_MIN_INTERVAL,
};

use synapse_campaign::{
    CampaignError, CampaignOutcome, CampaignSpec, CancelToken, LiveAggregates, PointEvent,
    ResultCache,
};
use synapse_trace::TraceRecorder;

/// Distributed-execution backend a coordinator-mode server plugs in
/// (implemented by `synapse-cluster`; the server stays ignorant of how
/// leases travel).
///
/// A server with a backend attached ([`Server::with_cluster`]) exposes
/// the `/cluster/*` worker-registry endpoints and accepts `POST
/// /campaigns?cluster=1` submissions, which execute through
/// [`ClusterBackend::run_distributed`] instead of the local sweep
/// engine — same observer contract as
/// [`synapse_campaign::run_campaign_on`], so both paths stream the
/// identical NDJSON event shapes.
pub trait ClusterBackend: Send + Sync {
    /// Execute `spec` across the registered workers, emitting merged
    /// [`PointEvent`]s (with a globally monotone `done` counter) and
    /// honoring `cancel`. `cache` is the coordinator's own result
    /// cache, used when leases fall back to local execution. When a
    /// flight `recorder` is attached the backend annotates it with the
    /// lease lifecycle (assigned/completed/failed/reassigned/split/
    /// local) and propagates its causality id to workers as the
    /// `X-Synapse-Trace` request header.
    /// `live` is the campaign's shared aggregate view: the backend
    /// folds worker-shipped sketch digests into it as leases complete
    /// (and records locally-executed points directly), so mid-sweep
    /// `GET /campaigns/<id>/aggregates` works for distributed runs too.
    fn run_distributed(
        &self,
        spec: &CampaignSpec,
        cache: &ResultCache,
        live: &LiveAggregates,
        observer: &(dyn Fn(PointEvent) + Sync),
        recorder: Option<&TraceRecorder>,
        cancel: &CancelToken,
    ) -> Result<CampaignOutcome, CampaignError>;

    /// Register (or revive) a worker by address; returns its document.
    fn register_worker(&self, addr: &str) -> serde_json::Value;

    /// Remove a worker from the registry; `None` for unknown ids.
    fn deregister_worker(&self, id: &str) -> Option<serde_json::Value>;

    /// Record a liveness heartbeat; `None` for unknown ids.
    fn heartbeat(&self, id: &str) -> Option<serde_json::Value>;

    /// Registry + lease status document (probes worker health).
    fn status(&self) -> serde_json::Value;
}

/// Anything that can go wrong running or talking to the server.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The campaign layer failed (opening the cache, persisting).
    Campaign(CampaignError),
    /// The peer spoke something that isn't the expected protocol.
    Protocol(String),
    /// A non-2xx response with the server's error detail.
    Status(u16, String),
    /// An established event stream went silent past the dead-server
    /// threshold (no events, no heartbeats): the server is presumed
    /// dead or partitioned. Retriable — watchers should reconnect or
    /// reassign the work.
    Disconnected(String),
}

impl ServerError {
    /// Whether retrying against another (or the same, later) server is
    /// the right reaction — today, exactly the dead-stream case.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, ServerError::Disconnected(_))
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o: {e}"),
            ServerError::Campaign(e) => write!(f, "campaign: {e}"),
            ServerError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServerError::Status(code, detail) => write!(f, "server returned {code}: {detail}"),
            ServerError::Disconnected(msg) => write!(f, "stream disconnected: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<CampaignError> for ServerError {
    fn from(e: CampaignError) -> Self {
        ServerError::Campaign(e)
    }
}
