//! A minimal HTTP/1.1 layer, hand-rolled the way the vendored crates
//! hand-roll serde: the workspace is offline, so instead of pulling a
//! framework the server implements exactly the protocol surface its
//! endpoints need — request parsing with hard size caps, plain
//! `Content-Length` responses, and `Transfer-Encoding: chunked` for
//! the NDJSON event streams.
//!
//! Deliberate non-goals: keep-alive (every response closes the
//! connection), request pipelining, compression, TLS.

use std::io::{BufRead, Write};

/// Cap on the request line + headers (bytes) before `431` is returned.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on a request body (bytes) before `413` is returned. Campaign
/// specs are small; a megabyte of TOML is already a pathological spec.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Methods the router understands at all (anything else is a parse
/// error — `501` — before routing even sees it).
const KNOWN_METHODS: [&str; 7] = ["GET", "POST", "DELETE", "PUT", "HEAD", "OPTIONS", "PATCH"];

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token.
    pub method: String,
    /// Request target as sent (path + optional query).
    pub target: String,
    /// Lower-cased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string, if any (without the `?`).
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// First value of a query parameter (`?axis=machine`), if present
    /// with a value. A bare key reads as absent.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query()?.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=')?;
            (key == name).then_some(value)
        })
    }

    /// Whether a boolean query parameter is set: present bare
    /// (`?cluster`) or with a truthy value (`?cluster=1`). `=0` and
    /// `=false` read as unset.
    pub fn query_flag(&self, name: &str) -> bool {
        let Some(query) = self.query() else {
            return false;
        };
        query.split('&').any(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            key == name && !matches!(value, "0" | "false")
        })
    }
}

/// Why a request could not be parsed. Each variant maps onto the
/// status code the connection handler answers with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header or length field → `400`.
    BadRequest(String),
    /// Head grew past [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Body longer than [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// Method token is not HTTP at all → `501`.
    UnknownMethod(String),
    /// The peer closed before a full request arrived.
    Closed,
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// The status line this error is answered with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::UnknownMethod(_) => (501, "Not Implemented"),
            HttpError::Closed | HttpError::Io(_) => (400, "Bad Request"),
        }
    }
}

/// Method, target and headers of a parsed request head.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parse one completed head (request line + headers, no blank line).
fn parse_head(text: &str) -> Result<ParsedHead, HttpError> {
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest(
            "request line has extra fields".into(),
        ));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    if !KNOWN_METHODS.contains(&method.as_str()) {
        return Err(HttpError::UnknownMethod(method));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "target {target:?} is not an absolute path"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // trailing fragment of the blank terminator
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method, target, headers))
}

/// What the incremental parser is waiting for next.
enum ParseState {
    /// Accumulating head bytes until the blank line.
    Head,
    /// Head parsed; accumulating `Content-Length` body bytes.
    Body {
        method: String,
        target: String,
        headers: Vec<(String, String)>,
        need: usize,
    },
    /// A full request was handed out; further bytes are ignored
    /// (every response closes the connection — no pipelining).
    Done,
}

/// An incremental (feed-bytes) request parser: the reactor pushes
/// whatever a nonblocking read returned and gets `Some(Request)` back
/// once the request is complete — no thread ever blocks on a partial
/// read. Size caps are enforced *as bytes arrive*, so a slow-loris
/// head or an endless body cannot balloon memory before tripping.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// How far the head scan progressed (`buf` is only rescanned from
    /// here, so byte-at-a-time feeding stays linear).
    scanned: usize,
    state: Option<ParseState>,
}

impl RequestParser {
    /// A parser waiting for the first byte.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            scanned: 0,
            state: Some(ParseState::Head),
        }
    }

    /// Feed the next bytes off the wire. Returns `Ok(Some(request))`
    /// exactly once, when the request completes; errors are terminal.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        self.buf.extend_from_slice(bytes);
        loop {
            match self.state.take().expect("parser state") {
                ParseState::Head => {
                    // Find the blank line: a '\n' followed (modulo one
                    // '\r') by another '\n'.
                    let mut head_end = None;
                    let from = self.scanned.saturating_sub(2);
                    for i in from..self.buf.len() {
                        if self.buf[i] != b'\n' {
                            continue;
                        }
                        let line_start = match self.buf[..i].iter().rposition(|&b| b == b'\n') {
                            Some(prev) => prev + 1,
                            None => 0,
                        };
                        let line = &self.buf[line_start..i];
                        if i > 0 && (line.is_empty() || line == b"\r") {
                            head_end = Some(i + 1);
                            break;
                        }
                    }
                    let Some(head_end) = head_end else {
                        if self.buf.len() > MAX_HEAD_BYTES {
                            return Err(HttpError::HeadTooLarge);
                        }
                        self.scanned = self.buf.len();
                        self.state = Some(ParseState::Head);
                        return Ok(None);
                    };
                    if head_end > MAX_HEAD_BYTES {
                        return Err(HttpError::HeadTooLarge);
                    }
                    let head = std::str::from_utf8(&self.buf[..head_end])
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header line".into()))?;
                    let (method, target, headers) = parse_head(head.trim_end_matches('\n'))?;
                    let need = headers
                        .iter()
                        .find(|(n, _)| n == "content-length")
                        .map(|(_, v)| {
                            v.parse::<usize>().map_err(|_| {
                                HttpError::BadRequest(format!("bad content-length {v:?}"))
                            })
                        })
                        .transpose()?
                        .unwrap_or(0);
                    if need > MAX_BODY_BYTES {
                        return Err(HttpError::BodyTooLarge);
                    }
                    self.buf.drain(..head_end);
                    self.scanned = 0;
                    self.state = Some(ParseState::Body {
                        method,
                        target,
                        headers,
                        need,
                    });
                }
                ParseState::Body {
                    method,
                    target,
                    headers,
                    need,
                } => {
                    if self.buf.len() < need {
                        self.state = Some(ParseState::Body {
                            method,
                            target,
                            headers,
                            need,
                        });
                        return Ok(None);
                    }
                    let body = self.buf.drain(..need).collect();
                    self.state = Some(ParseState::Done);
                    return Ok(Some(Request {
                        method,
                        target,
                        headers,
                        body,
                    }));
                }
                ParseState::Done => {
                    self.state = Some(ParseState::Done);
                    return Ok(None);
                }
            }
        }
    }
}

/// Parse one request from the reader (blocking until complete or
/// erroneous) — the [`RequestParser`] driven off a blocking transport.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Err(HttpError::Closed);
        }
        let n = buf.len();
        let parsed = parser.feed(buf);
        reader.consume(n);
        if let Some(request) = parsed? {
            return Ok(request);
        }
    }
}

/// A complete response (head + `Content-Length` body + close
/// semantics) as wire bytes, ready for a nonblocking writer.
pub fn response_bytes(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// A complete JSON response as wire bytes.
pub fn json_bytes(status: u16, reason: &str, value: &serde_json::Value) -> Vec<u8> {
    let body = serde_json::to_string(value).unwrap_or_else(|_| "{}".into());
    response_bytes(status, reason, "application/json", body.as_bytes())
}

/// The head of a `Transfer-Encoding: chunked` streaming response.
pub fn stream_head_bytes(content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// Append one chunked-encoding frame to an output buffer (empty data
/// is skipped — a zero-length chunk would terminate the stream).
pub fn append_chunk(out: &mut Vec<u8>, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// The zero-length chunk that terminates a chunked stream.
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Write a complete response with a `Content-Length` body and close
/// semantics.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    stream.write_all(&response_bytes(status, reason, content_type, body))?;
    stream.flush()
}

/// Write a JSON response.
pub fn write_json(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    value: &serde_json::Value,
) -> std::io::Result<()> {
    let body = serde_json::to_string(value).unwrap_or_else(|_| "{}".into());
    write_response(stream, status, reason, "application/json", body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    /// A reader that hands out its data a few bytes at a time, the way
    /// a TCP stream delivers a request split across segments.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let end = (self.pos + self.step).min(self.data.len());
            let n = (end - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let req = parse(
            "GET /campaigns/j1/events?workers=4 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/campaigns/j1/events", "query stripped");
        assert_eq!(req.query(), Some("workers=4"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn query_flags_parse_bare_and_valued_forms() {
        let req = |target: &str| Request {
            method: "GET".into(),
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert!(req("/campaigns?cluster").query_flag("cluster"));
        assert!(req("/campaigns?cluster=1").query_flag("cluster"));
        assert!(req("/campaigns?a=b&cluster=true").query_flag("cluster"));
        assert!(!req("/campaigns?cluster=0").query_flag("cluster"));
        assert!(!req("/campaigns?cluster=false").query_flag("cluster"));
        assert!(!req("/campaigns").query_flag("cluster"));
        assert!(!req("/campaigns?clustered").query_flag("cluster"));
        assert_eq!(req("/campaigns").query(), None);
    }

    #[test]
    fn parses_post_with_body() {
        let body = "name = \"x\"";
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse(&text).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body.as_bytes());
    }

    #[test]
    fn handles_partial_reads_across_every_boundary() {
        // The same request must parse no matter how the transport
        // fragments it — byte-at-a-time included.
        let body = "{\"name\":\"frag\"}";
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        for step in [1, 2, 3, 7, 16] {
            let mut reader = BufReader::with_capacity(
                4, // tiny buffer so refills also fragment
                Trickle {
                    data: text.clone().into_bytes(),
                    pos: 0,
                    step,
                },
            );
            let req = read_request(&mut reader).unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(req.method, "POST");
            assert_eq!(req.body, body.as_bytes(), "step {step}");
        }
    }

    #[test]
    fn rejects_oversized_heads() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge), Err(HttpError::HeadTooLarge)));
        // One oversized *line* trips the cap too (no unbounded
        // read_until growth).
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&long_line), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&text), Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn rejects_bad_methods_and_malformed_request_lines() {
        assert!(matches!(
            parse("BREW /coffee HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnknownMethod(m)) if m == "BREW"
        ));
        assert!(matches!(
            parse("GET /\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET relative HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn truncated_requests_report_closed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: h"),
            Err(HttpError::Closed)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn error_statuses_map_sensibly() {
        assert_eq!(HttpError::HeadTooLarge.status().0, 431);
        assert_eq!(HttpError::BodyTooLarge.status().0, 413);
        assert_eq!(HttpError::UnknownMethod("BREW".into()).status().0, 501);
        assert_eq!(HttpError::BadRequest("x".into()).status().0, 400);
    }

    #[test]
    fn incremental_parser_completes_byte_at_a_time() {
        let body = "{\"name\":\"drip\"}";
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut parser = RequestParser::new();
        let bytes = text.as_bytes();
        let mut request = None;
        for (i, b) in bytes.iter().enumerate() {
            match parser.feed(std::slice::from_ref(b)) {
                Ok(Some(r)) => {
                    assert_eq!(i, bytes.len() - 1, "completes exactly on the last byte");
                    request = Some(r);
                }
                Ok(None) => assert!(i < bytes.len() - 1),
                Err(e) => panic!("byte {i}: {e}"),
            }
        }
        let request = request.expect("request completed");
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, body.as_bytes());
        // Bytes after a complete request are ignored (no pipelining).
        assert_eq!(parser.feed(b"GET / HTTP/1.1\r\n\r\n").unwrap(), None);
    }

    #[test]
    fn incremental_parser_handles_terminator_straddling_feeds() {
        // The \r\n\r\n boundary split across every possible feed seam.
        let text = "GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n";
        for split in 1..text.len() {
            let mut parser = RequestParser::new();
            assert_eq!(
                parser.feed(&text.as_bytes()[..split]).unwrap(),
                None,
                "split {split}: incomplete prefix"
            );
            let request = parser
                .feed(&text.as_bytes()[split..])
                .unwrap()
                .unwrap_or_else(|| panic!("split {split}: request must complete"));
            assert_eq!(request.path(), "/healthz");
        }
    }

    #[test]
    fn incremental_parser_caps_heads_as_bytes_arrive() {
        // A never-ending head trips the cap mid-feed, long before any
        // blank line shows up.
        let mut parser = RequestParser::new();
        let chunk = vec![b'a'; 4096];
        let mut result = Ok(None);
        for _ in 0..8 {
            result = parser.feed(&chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn response_byte_helpers_mirror_the_writers() {
        let mut written = Vec::new();
        write_response(&mut written, 200, "OK", "text/plain", b"hi").unwrap();
        assert_eq!(written, response_bytes(200, "OK", "text/plain", b"hi"));

        let head = stream_head_bytes("application/x-ndjson");
        let text = String::from_utf8(head).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("\r\n\r\n"));

        let mut out = Vec::new();
        append_chunk(&mut out, b"{\"a\":1}\n");
        append_chunk(&mut out, b""); // skipped: must not terminate
        out.extend_from_slice(CHUNK_TERMINATOR);
        assert_eq!(out, b"8\r\n{\"a\":1}\n\r\n0\r\n\r\n");
    }

    #[test]
    fn plain_response_has_content_length() {
        let mut buf = Vec::new();
        write_response(&mut buf, 404, "Not Found", "text/plain", b"nope").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nnope"));
    }
}
