//! A minimal HTTP/1.1 layer, hand-rolled the way the vendored crates
//! hand-roll serde: the workspace is offline, so instead of pulling a
//! framework the server implements exactly the protocol surface its
//! endpoints need — request parsing with hard size caps, plain
//! `Content-Length` responses, and `Transfer-Encoding: chunked` for
//! the NDJSON event streams.
//!
//! Deliberate non-goals: keep-alive (every response closes the
//! connection), request pipelining, compression, TLS.

use std::io::{BufRead, Write};

/// Cap on the request line + headers (bytes) before `431` is returned.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on a request body (bytes) before `413` is returned. Campaign
/// specs are small; a megabyte of TOML is already a pathological spec.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Methods the router understands at all (anything else is a parse
/// error — `501` — before routing even sees it).
const KNOWN_METHODS: [&str; 7] = ["GET", "POST", "DELETE", "PUT", "HEAD", "OPTIONS", "PATCH"];

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token.
    pub method: String,
    /// Request target as sent (path + optional query).
    pub target: String,
    /// Lower-cased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string, if any (without the `?`).
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether a boolean query parameter is set: present bare
    /// (`?cluster`) or with a truthy value (`?cluster=1`). `=0` and
    /// `=false` read as unset.
    pub fn query_flag(&self, name: &str) -> bool {
        let Some(query) = self.query() else {
            return false;
        };
        query.split('&').any(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            key == name && !matches!(value, "0" | "false")
        })
    }
}

/// Why a request could not be parsed. Each variant maps onto the
/// status code the connection handler answers with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header or length field → `400`.
    BadRequest(String),
    /// Head grew past [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Body longer than [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// Method token is not HTTP at all → `501`.
    UnknownMethod(String),
    /// The peer closed before a full request arrived.
    Closed,
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// The status line this error is answered with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::UnknownMethod(_) => (501, "Not Implemented"),
            HttpError::Closed | HttpError::Io(_) => (400, "Bad Request"),
        }
    }
}

/// Read one line terminated by `\n` (tolerating a trailing `\r`),
/// counting consumed bytes against the shared head budget. Handles
/// partial reads by construction: `BufRead::read_until` keeps pulling
/// from the transport until the delimiter arrives.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    loop {
        // fill_buf + consume instead of read_until: the budget is
        // enforced *as bytes arrive*, so a single endless line cannot
        // balloon memory before the cap trips.
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Err(HttpError::Closed);
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if take > *budget {
            return Err(HttpError::HeadTooLarge);
        }
        *budget -= take;
        raw.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    raw.pop(); // the '\n'
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::BadRequest("non-UTF-8 header line".into()))
}

/// Parse one request from the reader (blocking until complete or
/// erroneous).
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest(
            "request line has extra fields".into(),
        ));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    if !KNOWN_METHODS.contains(&method.as_str()) {
        return Err(HttpError::UnknownMethod(method));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "target {target:?} is not an absolute path"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::Closed
        } else {
            HttpError::Io(e)
        }
    })?;

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Write a complete response with a `Content-Length` body and close
/// semantics.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Write a JSON response.
pub fn write_json(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    value: &serde_json::Value,
) -> std::io::Result<()> {
    let body = serde_json::to_string(value).unwrap_or_else(|_| "{}".into());
    write_response(stream, status, reason, "application/json", body.as_bytes())
}

/// A `Transfer-Encoding: chunked` body writer. Every [`chunk`] flushes
/// so stream consumers see events as they land, not when a buffer
/// fills.
///
/// [`chunk`]: ChunkedWriter::chunk
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Send the streaming response head and return the body writer.
    pub fn start(mut stream: W, content_type: &str) -> std::io::Result<ChunkedWriter<W>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Write one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream (the zero-length chunk).
    pub fn finish(mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    /// A reader that hands out its data a few bytes at a time, the way
    /// a TCP stream delivers a request split across segments.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let end = (self.pos + self.step).min(self.data.len());
            let n = (end - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let req = parse(
            "GET /campaigns/j1/events?workers=4 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/campaigns/j1/events", "query stripped");
        assert_eq!(req.query(), Some("workers=4"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn query_flags_parse_bare_and_valued_forms() {
        let req = |target: &str| Request {
            method: "GET".into(),
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert!(req("/campaigns?cluster").query_flag("cluster"));
        assert!(req("/campaigns?cluster=1").query_flag("cluster"));
        assert!(req("/campaigns?a=b&cluster=true").query_flag("cluster"));
        assert!(!req("/campaigns?cluster=0").query_flag("cluster"));
        assert!(!req("/campaigns?cluster=false").query_flag("cluster"));
        assert!(!req("/campaigns").query_flag("cluster"));
        assert!(!req("/campaigns?clustered").query_flag("cluster"));
        assert_eq!(req("/campaigns").query(), None);
    }

    #[test]
    fn parses_post_with_body() {
        let body = "name = \"x\"";
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse(&text).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body.as_bytes());
    }

    #[test]
    fn handles_partial_reads_across_every_boundary() {
        // The same request must parse no matter how the transport
        // fragments it — byte-at-a-time included.
        let body = "{\"name\":\"frag\"}";
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        for step in [1, 2, 3, 7, 16] {
            let mut reader = BufReader::with_capacity(
                4, // tiny buffer so refills also fragment
                Trickle {
                    data: text.clone().into_bytes(),
                    pos: 0,
                    step,
                },
            );
            let req = read_request(&mut reader).unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(req.method, "POST");
            assert_eq!(req.body, body.as_bytes(), "step {step}");
        }
    }

    #[test]
    fn rejects_oversized_heads() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge), Err(HttpError::HeadTooLarge)));
        // One oversized *line* trips the cap too (no unbounded
        // read_until growth).
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&long_line), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let text = format!(
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&text), Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn rejects_bad_methods_and_malformed_request_lines() {
        assert!(matches!(
            parse("BREW /coffee HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnknownMethod(m)) if m == "BREW"
        ));
        assert!(matches!(
            parse("GET /\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET relative HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn truncated_requests_report_closed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: h"),
            Err(HttpError::Closed)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn error_statuses_map_sensibly() {
        assert_eq!(HttpError::HeadTooLarge.status().0, 431);
        assert_eq!(HttpError::BodyTooLarge.status().0, 413);
        assert_eq!(HttpError::UnknownMethod("BREW".into()).status().0, 501);
        assert_eq!(HttpError::BadRequest("x".into()).status().0, 400);
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut buf = Vec::new();
        let mut w = ChunkedWriter::start(&mut buf, "application/x-ndjson").unwrap();
        w.chunk(b"{\"a\":1}\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, must not terminate
        w.chunk(b"{\"b\":2}\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn plain_response_has_content_length() {
        let mut buf = Vec::new();
        write_response(&mut buf, 404, "Not Found", "text/plain", b"nope").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nnope"));
    }
}
