//! The serve daemon's handles into the process-wide telemetry
//! registry (`synapse_server_<name>` series; catalog in the README).
//!
//! Everything here is registered once through a `OnceLock`, so the hot
//! paths (reactor passes, stream pumps, request handling) touch only
//! the atomic handles — never the registry lock. Gauges that mirror
//! operational state (`connections_active`, queue depths) are
//! refreshed at scrape time from the *same* sources `/healthz`
//! reports, so the JSON and Prometheus views cannot disagree.

use std::sync::{Arc, OnceLock};

use synapse_telemetry::{global, Counter, Gauge, Histogram, DURATION_BUCKETS, SIZE_BUCKETS};

/// Reactor, connection-lifecycle and streaming instrumentation.
pub(crate) struct ServerMetrics {
    /// Connections currently registered with the reactor (scrape-time
    /// mirror of the `active_connections` gauge `/healthz` reports).
    pub connections_active: Arc<Gauge>,
    /// Connections accepted and registered with the poller.
    pub connections_accepted: Arc<Counter>,
    /// Connections accepted past the cap and flagged to answer `503`.
    pub connections_shed: Arc<Counter>,
    /// Connections dropped cold (past twice the cap).
    pub connections_dropped: Arc<Counter>,
    /// Connections the timer scan reclaimed (request timeouts and
    /// stalled writers).
    pub connections_reclaimed: Arc<Counter>,
    /// Reactor work per wake: from `epoll_wait` returning events to
    /// the end of that pass (quiet ticks are not recorded).
    pub poll_seconds: Arc<Histogram>,
    /// Readiness events delivered per non-empty `epoll_wait`.
    pub wake_batch: Arc<Histogram>,
    /// Event-stream payload bytes pumped from job rings into
    /// connection buffers (chunk framing and heartbeats excluded).
    pub stream_bytes: Arc<Counter>,
    /// NDJSON lines dropped from bounded job rings (each shows up in
    /// a stream's `truncated` marker).
    pub ring_truncated_lines: Arc<Counter>,
    /// Jobs sitting in the queue at the last scrape.
    pub jobs_queued: Arc<Gauge>,
    /// Jobs sweeping at the last scrape.
    pub jobs_running: Arc<Gauge>,
    /// Seconds since the server bound, at the last scrape.
    pub uptime_seconds: Arc<Gauge>,
    /// Per-endpoint request latency (dispatch-queue wait + handler
    /// time), keyed by normalized route shape.
    requests: Vec<(&'static str, Arc<Histogram>)>,
}

/// Every route shape the request-latency family is registered for.
/// Paths normalize onto these so the label set stays bounded no
/// matter what clients send.
const ENDPOINTS: &[&str] = &[
    "/healthz",
    "/metrics",
    "/store/stats",
    "/campaigns",
    "/campaigns/:id",
    "/campaigns/:id/aggregates",
    "/campaigns/:id/events",
    "/campaigns/:id/report",
    "/campaigns/:id/trace",
    "/leases",
    "/cluster",
    "/shutdown",
    "other",
];

impl ServerMetrics {
    /// The process-wide handles (registering the series on first use).
    pub fn get() -> &'static ServerMetrics {
        static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = global();
            ServerMetrics {
                connections_active: r.gauge(
                    "synapse_server_connections_active",
                    "Connections currently held by the reactor.",
                ),
                connections_accepted: r.counter(
                    "synapse_server_connections_accepted_total",
                    "Connections accepted and registered with the poller.",
                ),
                connections_shed: r.counter(
                    "synapse_server_connections_shed_total",
                    "Connections over the cap, flagged to answer 503.",
                ),
                connections_dropped: r.counter(
                    "synapse_server_connections_dropped_total",
                    "Connections dropped cold past twice the cap.",
                ),
                connections_reclaimed: r.counter(
                    "synapse_server_connections_reclaimed_total",
                    "Connections reclaimed for request timeout or write stall.",
                ),
                poll_seconds: r.histogram(
                    "synapse_server_poll_iteration_seconds",
                    "Reactor work per non-empty epoll wake.",
                    DURATION_BUCKETS,
                ),
                wake_batch: r.histogram(
                    // Count-valued histogram (events per wake): the
                    // _seconds/_bytes suffix scheme covers time and
                    // size units only, and the name is pinned in the
                    // published catalog.
                    // lint:allow(metric-catalog, reason = "count-valued histogram; unit-suffix scheme covers time/size only")
                    "synapse_server_wake_batch_size",
                    "Readiness events delivered per non-empty epoll_wait.",
                    SIZE_BUCKETS,
                ),
                stream_bytes: r.counter(
                    "synapse_server_stream_bytes_total",
                    "Event-stream payload bytes pumped from job rings.",
                ),
                ring_truncated_lines: r.counter(
                    "synapse_server_ring_truncated_lines_total",
                    "Event lines dropped from bounded job rings.",
                ),
                jobs_queued: r.gauge(
                    "synapse_server_jobs_queued",
                    "Jobs waiting in the queue (refreshed at scrape).",
                ),
                jobs_running: r.gauge(
                    "synapse_server_jobs_running",
                    "Jobs currently sweeping (refreshed at scrape).",
                ),
                uptime_seconds: r.gauge(
                    "synapse_server_uptime_seconds",
                    "Seconds since the server bound (refreshed at scrape).",
                ),
                requests: ENDPOINTS
                    .iter()
                    .map(|&endpoint| {
                        (
                            endpoint,
                            r.histogram_with(
                                "synapse_server_request_seconds",
                                "Request latency from dispatch to reply, by route shape.",
                                DURATION_BUCKETS,
                                &[("endpoint", endpoint)],
                            ),
                        )
                    })
                    .collect(),
            }
        })
    }

    /// The latency histogram for one normalized endpoint — a lock-free
    /// scan over the fixed route table.
    pub fn request_seconds(&self, endpoint: &'static str) -> &Arc<Histogram> {
        self.requests
            .iter()
            .find(|(e, _)| *e == endpoint)
            .map(|(_, h)| h)
            .expect("endpoint_label only returns registered endpoints")
    }
}

/// Collapse a request path onto its route shape (one of [`ENDPOINTS`])
/// so per-endpoint series stay bounded under arbitrary client input.
pub(crate) fn endpoint_label(path: &str) -> &'static str {
    let trimmed = path.trim_end_matches('/');
    let path = trimmed.split('?').next().unwrap_or(trimmed);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["store", "stats"] => "/store/stats",
        ["campaigns"] => "/campaigns",
        ["campaigns", _] => "/campaigns/:id",
        ["campaigns", _, "aggregates"] => "/campaigns/:id/aggregates",
        ["campaigns", _, "events"] => "/campaigns/:id/events",
        ["campaigns", _, "report"] => "/campaigns/:id/report",
        ["campaigns", _, "trace"] => "/campaigns/:id/trace",
        ["leases"] => "/leases",
        ["cluster", ..] => "/cluster",
        ["shutdown"] => "/shutdown",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_normalize_onto_the_registered_table() {
        assert_eq!(
            endpoint_label("/campaigns/j42/events"),
            "/campaigns/:id/events"
        );
        assert_eq!(
            endpoint_label("/campaigns/j42/aggregates?axis=machine"),
            "/campaigns/:id/aggregates"
        );
        assert_eq!(endpoint_label("/campaigns/j42/"), "/campaigns/:id");
        assert_eq!(endpoint_label("/campaigns?watch=1"), "/campaigns");
        assert_eq!(endpoint_label("/cluster/workers/w1/heartbeat"), "/cluster");
        assert_eq!(endpoint_label("/totally/unknown"), "other");
        for path in [
            "/healthz",
            "/metrics",
            "/store/stats",
            "/campaigns/j1/report",
            "/campaigns/j1/trace",
            "/leases",
            "/shutdown",
        ] {
            assert!(ENDPOINTS.contains(&endpoint_label(path)), "{path}");
        }
    }

    #[test]
    fn every_label_resolves_to_a_registered_histogram() {
        let metrics = ServerMetrics::get();
        for endpoint in ENDPOINTS {
            metrics.request_seconds(endpoint).observe(0.001);
        }
    }
}
