//! Thin safe wrappers over the vendored epoll/eventfd bindings — the
//! readiness primitives behind the server's reactor front.
//!
//! The workspace is offline, so instead of mio this module binds
//! exactly the surface the server needs: an epoll instance with
//! u64-token registration ([`Poller`]), an eventfd wakeup channel
//! ([`Waker`]) so queue workers and handler threads can interrupt a
//! blocked `epoll_wait`, and nonblocking-mode toggles for accepted
//! sockets ([`set_nonblocking`]).

use std::io;
use std::os::unix::io::RawFd;

/// Readiness interest/flags, re-exported so callers never touch raw
/// libc constants.
pub(crate) const READABLE: u32 = libc::EPOLLIN | libc::EPOLLRDHUP;
pub(crate) const WRITABLE: u32 = libc::EPOLLOUT;

/// One readiness event: the registered token and the triggered mask.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    mask: u32,
}

impl Event {
    /// Data (or a hangup — a read will observe the EOF) is waiting.
    pub fn readable(&self) -> bool {
        self.mask & (libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLHUP | libc::EPOLLERR) != 0
    }

    /// The socket's send buffer drained below its watermark.
    pub fn writable(&self) -> bool {
        self.mask & (libc::EPOLLOUT | libc::EPOLLHUP | libc::EPOLLERR) != 0
    }

    /// Both directions are gone (full hangup / error) — nothing can
    /// be delivered to this peer anymore.
    pub fn hangup(&self) -> bool {
        self.mask & (libc::EPOLLHUP | libc::EPOLLERR) != 0
    }
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// A level-triggered epoll instance.
pub(crate) struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers.
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut event = libc::epoll_event {
            events: interest,
            u64: token,
        };
        let event_ptr = if op == libc::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event
        };
        // SAFETY: epfd is the live epoll fd owned by this Poller;
        // event_ptr is null or points at `event`, alive for the call.
        if unsafe { libc::epoll_ctl(self.epfd, op, fd, event_ptr) } < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` for `interest` readiness.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister an fd (safe to call right before closing it).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block up to `timeout_ms` (`-1` = forever) for readiness,
    /// appending events to `out`. EINTR reads as an empty wake.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [libc::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        let cap = MAX_EVENTS as i32;
        // SAFETY: raw is a stack buffer of MAX_EVENTS epoll_event
        // slots, matching the capacity `cap` passed alongside it.
        let n = unsafe { libc::epoll_wait(self.epfd, raw.as_mut_ptr(), cap, timeout_ms) };
        if n < 0 {
            let err = last_os_error();
            if err.raw_os_error() == Some(libc::EINTR) {
                return Ok(());
            }
            return Err(err);
        }
        for event in raw.iter().take(n as usize) {
            out.push(Event {
                // Copy out of the (packed on x86_64) struct before use.
                token: { event.u64 },
                mask: { event.events },
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd is owned by this Poller and closed exactly once.
        unsafe { libc::close(self.epfd) };
    }
}

/// An eventfd-backed wakeup channel. Any thread calls [`wake`]; the
/// reactor registers the fd for readability and [`drain`]s it on wake.
/// Writes coalesce twice over: a userspace pending flag short-circuits
/// repeat wakes to a single atomic load (a sweep pushing 100k
/// events/s must not pay 100k eventfd syscalls), and the kernel
/// counter coalesces whatever writes do happen into one readiness
/// event.
///
/// [`wake`]: Waker::wake
/// [`drain`]: Waker::drain
pub(crate) struct Waker {
    fd: RawFd,
    /// An undrained wake is already pending; further wakes are free.
    pending: std::sync::atomic::AtomicBool,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers.
        let fd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(Waker {
            fd,
            pending: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The fd to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the reactor's next (or current) `epoll_wait` return.
    /// Infallible by design: the counter saturating (EAGAIN) still
    /// leaves the fd readable, which is all a wake needs.
    pub fn wake(&self) {
        use std::sync::atomic::Ordering;
        // Already signalled and not yet drained: the reactor is
        // guaranteed to wake and observe everything published before
        // this call (drain clears the flag before it reads state).
        if self.pending.swap(true, Ordering::AcqRel) {
            return;
        }
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from `one`, which lives
        // through the call; fd is the eventfd owned by this Waker.
        unsafe { libc::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the counter so the next `epoll_wait` blocks again.
    ///
    /// Order matters: the counter is read BEFORE the flag clears. A
    /// producer that fires between the two either saw the flag still
    /// set (its data is covered by the pump pass that follows every
    /// drain) or writes the eventfd after the read (the next
    /// `epoll_wait` fires). Clearing first would let a wake land
    /// between clear and read, get its count consumed, and leave the
    /// flag latched true with the fd unreadable — suppressing every
    /// future wake.
    pub fn drain(&self) {
        use std::sync::atomic::Ordering;
        let mut counter: u64 = 0;
        // SAFETY: reads exactly 8 bytes into `counter`, which lives
        // through the call; fd is the eventfd owned by this Waker.
        unsafe { libc::read(self.fd, (&mut counter as *mut u64).cast(), 8) };
        self.pending.store(false, Ordering::Release);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this Waker and closed exactly once.
        unsafe { libc::close(self.fd) };
    }
}

/// Switch an fd into nonblocking mode (accepted sockets; the listener
/// uses the std API).
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL takes no third argument; fd is the caller's
    // accepted socket, valid for the duration of the call.
    let flags = unsafe { libc::fcntl(fd, libc::F_GETFL) };
    if flags < 0 {
        return Err(last_os_error());
    }
    // SAFETY: F_SETFL with an integer flag argument; no pointers.
    if unsafe { libc::fcntl(fd, libc::F_SETFL, flags | libc::O_NONBLOCK) } < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_roundtrip_through_poller() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 7, READABLE).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing pending yet");

        waker.wake();
        waker.wake(); // coalesces: still one readiness event
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        waker.drain();
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained waker no longer ready");
    }

    #[test]
    fn socket_readiness_reports_registered_token() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 99, READABLE).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no pending connection");

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable()));

        // Accepted socket: writable immediately, readable after data.
        let (accepted, _) = listener.accept().unwrap();
        set_nonblocking(accepted.as_raw_fd()).unwrap();
        poller
            .add(accepted.as_raw_fd(), 100, READABLE | WRITABLE)
            .unwrap();
        events.clear();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 100 && e.writable()));

        client.write_all(b"ping").unwrap();
        events.clear();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 100 && e.readable()));

        poller.delete(accepted.as_raw_fd()).unwrap();
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert!(!events.iter().any(|e| e.token == 100), "deregistered");
    }
}
