//! The `synapse serve` daemon: epoll reactor front, request routing,
//! the job queue worker pool and the process-wide result cache.
//!
//! Concurrency model: ONE reactor thread owns every connection —
//! nonblocking accept, incremental request parsing, response flushing
//! and event-stream pumping are all readiness-driven (`epoll` via the
//! vendored libc stub), so a thousand idle watchers cost file
//! descriptors, not threads. CPU-bound request handling (spec parsing,
//! report assembly, cluster probes) is dispatched to a small handler
//! pool so the reactor never blocks; a fixed pool of queue workers at
//! the back drains jobs through [`synapse_campaign::run_campaign_on`].
//! Job events reach the reactor through an eventfd wakeup (the hook
//! wired into every [`Job`]), which coalesces bursts into single
//! wakes. All jobs share one [`ResultCache`] handle — the sharded
//! store is lock-protected per shard group, so concurrent sweeps
//! memoize into (and hit from) the same cache, which is the point of
//! keeping the process alive.
//!
//! Per-connection lifecycle (one state machine, no thread):
//!
//! ```text
//! accept ──▶ Reading ──(request parsed)──▶ Handling ──▶ Writing ──▶ close
//!   │           │  (shed: over capacity)      │  (events route)
//!   │           └──────────▶ 503 ─▶ Writing   └─▶ Streaming ──▶ close
//!   └─ over 2× capacity: dropped cold              │  ▲
//!                                 backpressure ◀───┘  │ job events / heartbeat
//!                                 (pump pauses at the high-water mark)
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde_json::json;
use synapse_campaign::{
    expand_range, run_campaign_on, AggregateMetrics, CampaignEngine, CampaignError, CampaignSpec,
    PointEvent, ResultCache, RunConfig, AGGREGATES_VERSION,
};

use synapse_trace::TraceRecorder;

use crate::http::{self, HttpError, Request, RequestParser};
use crate::job::{EventHook, EventRing, Job, JobKind, JobState, LeaseRequest};
use crate::metrics::{endpoint_label, ServerMetrics};
use crate::reactor::{self, Poller, Waker};
use crate::{ClusterBackend, ServerError};

/// How many points must land since the last aggregate `snapshot`
/// delta before another may be emitted. Paired with
/// [`SNAPSHOT_MIN_INTERVAL`]: BOTH thresholds must pass, so a fast
/// sweep's snapshot count is bounded by wall time (O(runtime ·
/// slices) stream bytes for an aggregate-mode watcher, never
/// O(points)) while a slow sweep's is bounded by progress.
pub const SNAPSHOT_EVERY: usize = 32;

/// Floor on the wall time between two mid-sweep `snapshot` deltas on
/// one job's stream (see [`SNAPSHOT_EVERY`]). The terminal snapshot
/// bypasses the cadence: a finished campaign's last delta always
/// lands before its terminal event.
pub const SNAPSHOT_MIN_INTERVAL: Duration = Duration::from_millis(250);

/// Terminal jobs retained in the table (live jobs never count): the
/// daemon serves status/report/replay for this many finished
/// campaigns, then forgets the oldest — a long-lived process must not
/// accumulate event buffers without bound.
pub const MAX_RETAINED_TERMINAL_JOBS: usize = 64;

/// Terminal *lease* jobs retained. Lease rings are unbounded (their
/// point events are the results a coordinator merges) and nobody
/// replays a drained lease, so they evict far sooner than campaigns —
/// a worker serving thousands of big leases must not retain 64 full
/// result sets.
pub const MAX_RETAINED_TERMINAL_LEASES: usize = 2;

/// How long an event stream may stay silent before a `heartbeat`
/// event is pulsed, keeping client read-timeouts satisfiable while a
/// job sits queued behind a long sweep. Public so clients can derive
/// their dead-server threshold from the same number.
pub const HEARTBEAT_EVERY: Duration = Duration::from_secs(10);

/// Serialize one event document to its NDJSON line.
fn ndjson(value: &serde_json::Value) -> String {
    // lint:allow(no-panic-hot-path, reason = "serializing owned in-memory data; Value/string serialization is infallible")
    serde_json::to_string(value).expect("event serializes")
}

/// Default cap on concurrently-served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// Default per-job event-ring retention (NDJSON lines).
pub const DEFAULT_EVENT_BUFFER: usize = 8192;

/// Default handler-pool size (CPU-bound request handling off the
/// reactor thread).
pub const DEFAULT_HANDLER_THREADS: usize = 4;

/// Budget for a connection to deliver its complete request, counted
/// from accept. A slow-loris peer feeding one header byte at a time
/// gets exactly this long in total — not a fresh timeout per byte.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Default per-connection output high-water mark: the stream pump
/// stops pulling ring events for a watcher whose unsent buffer grew
/// past this, and the job ring's own truncation covers whatever the
/// stalled watcher misses meanwhile.
pub const DEFAULT_STREAM_HIGH_WATER: usize = 256 * 1024;

/// Default for [`ServerConfig::write_stall_timeout`]: a connection
/// with unsent bytes and no write progress for this long is presumed
/// dead and reclaimed.
pub const DEFAULT_WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Default for [`ServerConfig::batch_points`]: how many landed points
/// a lease stream packs into one `batch` frame before writing. 64
/// turns a warm 55k-point grid from 55k line writes into ~900 while
/// keeping first-result latency in the low milliseconds on a cold
/// sweep (the tail flushes whatever is pending at lease end). The
/// frame layout is specified in `docs/PROTOCOL.md`.
pub const DEFAULT_BATCH_POINTS: usize = 64;

/// Version stamped into every `batch` frame (`"v"`). Consumers must
/// reject frames with a version they don't know — the payload layout
/// inside `points` is only defined per version.
pub const BATCH_FRAME_VERSION: u64 = 1;

/// Upper bound on one `epoll_wait`, so timer scans (request deadlines,
/// heartbeats, stall reclaim) run even on a quiet socket set.
const REACTOR_TICK_MS: i32 = 250;

/// After shutdown is requested, how long in-flight responses and
/// terminal stream events get to flush before connections are cut.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// How the daemon is set up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (port 0 for ephemeral).
    pub addr: String,
    /// Result-cache directory (`None` ⇒ in-memory for this process).
    pub cache_dir: Option<PathBuf>,
    /// Queue workers = jobs sweeping concurrently.
    pub queue_workers: usize,
    /// Worker threads *per job's* sweep (0 ⇒ auto).
    pub job_workers: usize,
    /// Concurrent-connection cap: requests past it are shed with `503`
    /// instead of accepting unbounded connections (0 ⇒ unlimited).
    pub max_connections: usize,
    /// Event lines retained per job for replay; older lines truncate
    /// with a `truncated` marker (0 ⇒ unbounded — test use only).
    pub event_buffer: usize,
    /// Handler-pool threads for CPU-bound request handling (0 ⇒
    /// [`DEFAULT_HANDLER_THREADS`]). The reactor itself is one thread
    /// regardless of how many connections are open.
    pub handler_threads: usize,
    /// Total budget for a connection to deliver its request
    /// (slow-loris cutoff).
    pub request_timeout: Duration,
    /// Per-connection output high-water mark (stream backpressure).
    pub stream_high_water: usize,
    /// Reclaim a connection whose unsent output made no progress for
    /// this long (the peer stopped reading and never came back).
    pub write_stall_timeout: Duration,
    /// Points per `batch` frame on lease streams (`--batch-points`);
    /// `0` or `1` disables batching and emits the legacy per-point
    /// `point` events.
    pub batch_points: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            cache_dir: None,
            queue_workers: 2,
            job_workers: 0,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            event_buffer: DEFAULT_EVENT_BUFFER,
            handler_threads: 0,
            request_timeout: DEFAULT_REQUEST_TIMEOUT,
            stream_high_water: DEFAULT_STREAM_HIGH_WATER,
            write_stall_timeout: DEFAULT_WRITE_STALL_TIMEOUT,
            batch_points: DEFAULT_BATCH_POINTS,
        }
    }
}

/// Shared server state: the job table, the submission queue and the
/// process-wide cache handle.
pub(crate) struct ServerState {
    pub(crate) cache: ResultCache,
    jobs: Mutex<Vec<Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_ready: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    job_workers: usize,
    event_buffer: usize,
    batch_points: usize,
    max_connections: usize,
    active_connections: AtomicUsize,
    /// The reactor's wakeup handle, set once `run()` starts; jobs
    /// created after that carry it as their event hook.
    reactor_waker: OnceLock<Arc<Waker>>,
    /// Distributed-execution backend (coordinator mode); `None` for a
    /// plain worker/standalone server.
    cluster: Option<Arc<dyn ClusterBackend>>,
    /// Live flight recorders by causality id, so the handler pool can
    /// stamp per-endpoint spans onto the trace a request belongs to
    /// (via `X-Synapse-Trace` or the `/campaigns/<id>` path). Entries
    /// live from submit until the job's trace is finalized.
    recorders: Mutex<HashMap<String, Arc<TraceRecorder>>>,
    started: Instant,
}

impl ServerState {
    fn job(&self, public_id: &str) -> Option<Arc<Job>> {
        let id: u64 = public_id.strip_prefix('j')?.parse().ok()?;
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    fn submit(
        &self,
        spec: CampaignSpec,
        total: usize,
        kind: JobKind,
        recorder: Option<Arc<TraceRecorder>>,
        lease_trace: Option<String>,
    ) -> Arc<Job> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Lease rings are never truncated: their point events *are*
        // the results the coordinator merges, so dropping any would
        // lose grid points for good. The buffer is bounded by the
        // lease's own size (the coordinator controls that), and the
        // job is evicted with the terminal-job retention like any
        // other.
        let event_cap = match kind {
            JobKind::Lease { .. } => 0,
            _ => self.event_buffer,
        };
        let hook = self.reactor_waker.get().map(|waker| {
            let waker = waker.clone();
            Arc::new(move || waker.wake()) as Arc<EventHook>
        });
        let job = Arc::new(Job::with_hook(
            id,
            spec,
            total,
            self.job_workers,
            kind,
            event_cap,
            hook,
        ));
        // Wire causality BEFORE the job becomes reachable (queue/table):
        // a queue worker must never observe a recorded job without its
        // recorder, and span stamping resolves through `recorders`.
        if let Some(recorder) = recorder {
            self.recorders
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(recorder.trace_id().to_string(), recorder.clone());
            job.attach_recorder(recorder);
        }
        if let Some(trace_id) = lease_trace {
            job.set_lease_trace(trace_id);
        }
        {
            let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.push(job.clone());
            // Bounded retention: the daemon must not grow without limit
            // across weeks of submissions. Oldest *terminal* jobs fall
            // off first (attached streamers keep theirs alive through
            // the Arc until they hang up); live jobs are never evicted.
            // Finished leases go first and fastest — their rings hold
            // full per-point results.
            let is_lease = |j: &Arc<Job>| matches!(j.kind, JobKind::Lease { .. });
            let mut terminal_leases = jobs
                .iter()
                .filter(|j| is_lease(j) && j.state().is_terminal())
                .count();
            jobs.retain(|j| {
                if terminal_leases > MAX_RETAINED_TERMINAL_LEASES
                    && is_lease(j)
                    && j.state().is_terminal()
                {
                    terminal_leases -= 1;
                    false
                } else {
                    true
                }
            });
            let mut terminal = jobs.iter().filter(|j| j.state().is_terminal()).count();
            jobs.retain(|j| {
                if terminal > MAX_RETAINED_TERMINAL_JOBS && j.state().is_terminal() {
                    terminal -= 1;
                    false
                } else {
                    true
                }
            });
        }
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job.clone());
        self.queue_ready.notify_one();
        // A shutdown can land between the handler's early check and
        // the insertions above — after the shutdown sweep settled the
        // job table. Nobody would ever settle this job, leaving its
        // event stream open forever; settle it here.
        if self.shutting_down() && job.settle_if_queued() {
            self.finalize_trace(&job);
        }
        job
    }

    /// Seal a recorded job's trace: render the document (whatever was
    /// captured — completed, cancelled or failed runs all leave a
    /// coherent trace) and retire the live recorder so span stamping
    /// stops. Idempotent; every path that terminates a job calls it.
    fn finalize_trace(&self, job: &Arc<Job>) {
        if let Some(recorder) = job.recorder() {
            job.set_trace_doc(recorder.render());
            self.recorders
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(recorder.trace_id());
        }
    }

    /// Stamp one handled request onto the trace it belongs to, if any:
    /// resolved by `X-Synapse-Trace` header first (cluster clients
    /// propagate it), else by the `/campaigns/<id>` path through the
    /// job table. Requests landing after the trace is sealed are not
    /// recorded — the document is already immutable by then.
    fn record_span(&self, request: &Request, endpoint: &str, secs: f64) {
        let recorder = match request.header("x-synapse-trace") {
            Some(id) => self
                .recorders
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(id)
                .cloned(),
            None => request
                .path()
                .trim_start_matches('/')
                .strip_prefix("campaigns/")
                .and_then(|rest| rest.split(['/', '?']).next())
                .and_then(|public_id| self.job(public_id))
                .and_then(|job| job.recorder().cloned()),
        };
        if let Some(recorder) = recorder {
            recorder.record_span(endpoint, secs);
        }
    }

    /// Block until a job is queued or shutdown is requested.
    fn next_job(&self) -> Option<Arc<Job>> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            queue = self
                .queue_ready
                .wait_timeout(queue, Duration::from_millis(200))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Stop in-flight sweeps; settle jobs no queue worker will ever
        // reach, so their event streams terminate instead of leaving
        // streamers blocked forever.
        let settled: Vec<Arc<Job>> = self
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|job| job.settle_if_queued())
            .cloned()
            .collect();
        for job in settled {
            self.finalize_trace(&job);
        }
        self.queue_ready.notify_all();
        if let Some(waker) = self.reactor_waker.get() {
            waker.wake();
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Current status document of one job.
    fn status_json(&self, job: &Job) -> serde_json::Value {
        job.with_progress(|p| {
            let hit_rate = if p.done > 0 {
                p.cache_hits as f64 / p.done as f64
            } else {
                0.0
            };
            let mut doc = json!({
                "id": job.public_id(),
                "name": job.spec.name,
                "status": p.state.name(),
                "total": job.total,
                "done": p.done,
                "cache_hits": p.cache_hits,
                "cache_hit_rate": hit_rate,
            });
            if let serde_json::Value::Object(obj) = &mut doc {
                if let Some(stats) = &p.stats {
                    obj.insert("simulated".into(), json!(stats.simulated));
                    obj.insert("wall_secs".into(), json!(stats.wall_secs));
                    obj.insert("points_per_sec".into(), json!(stats.points_per_sec()));
                }
                if let Some(error) = &p.error {
                    obj.insert("error".into(), json!(error));
                }
            }
            doc
        })
    }
}

/// Queue-depth snapshot under the jobs lock: (total, queued, running).
/// Shared by `/healthz` and the `/metrics` scrape-time gauges so both
/// views count from the same table at the same instant.
fn job_counts(state: &ServerState) -> (usize, usize, usize) {
    let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let queued = jobs
        .iter()
        .filter(|j| j.state() == JobState::Queued)
        .count();
    let running = jobs
        .iter()
        .filter(|j| j.state() == JobState::Running)
        .count();
    (jobs.len(), queued, running)
}

/// This process's live thread count (Linux `/proc`), surfaced through
/// `/healthz` so operators — and the CI smoke — can verify the front
/// holds watchers without spawning a thread per connection.
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("Threads:"))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
}

/// Remote control for a running [`Server`] (tests, embedders).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Ask the reactor, queue workers and in-flight sweeps to stop.
    /// Returns once the request is registered (the `run()` call
    /// unblocks shortly after).
    pub fn shutdown(&self) {
        // request_shutdown wakes the reactor through its eventfd; the
        // connect poke covers a server whose run() has not started
        // serving yet.
        self.state.request_shutdown();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

impl Server {
    /// Bind the listener and open (or create) the shared result cache.
    pub fn bind(config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::open_with_workers(dir, 0)?,
            None => ResultCache::in_memory(),
        };
        // Expose the store's lock/reconcile counters in `/metrics` by
        // binding the very atomics `/store/stats` reads — one source
        // behind both formats, so the two views cannot drift. Re-bind
        // on every bind(): the registry keeps the latest cache's
        // handles (tests open many servers in one process).
        let counters = cache.store_counters();
        let registry = synapse_telemetry::global();
        registry.bind_counter(
            "synapse_store_lock_acquisitions_total",
            "Shard-group lock acquisitions by this process.",
            counters.lock_acquisitions,
        );
        registry.bind_counter(
            "synapse_store_lock_contention_total",
            "Lock acquisitions that waited out another process.",
            counters.lock_contention,
        );
        registry.bind_counter(
            "synapse_store_reconciled_docs_total",
            "Results merged back from other processes sharing the cache dir.",
            counters.reconciled_docs,
        );
        let state = Arc::new(ServerState {
            cache,
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            job_workers: config.job_workers,
            event_buffer: config.event_buffer,
            batch_points: config.batch_points,
            max_connections: config.max_connections,
            active_connections: AtomicUsize::new(0),
            reactor_waker: OnceLock::new(),
            cluster: None,
            recorders: Mutex::new(HashMap::new()),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// Attach a distributed-execution backend, turning this server
    /// into a cluster coordinator: `/cluster/*` endpoints come alive
    /// and `POST /campaigns?cluster=1` fans out through the backend.
    pub fn with_cluster(mut self, backend: Arc<dyn ClusterBackend>) -> Server {
        // The state Arc has not been shared yet (no handle, no run), so
        // the mutation is safe — enforce that by consuming self.
        Arc::get_mut(&mut self.state)
            // lint:allow(no-panic-hot-path, reason = "builder runs before the state Arc is shared; get_mut cannot fail")
            .expect("with_cluster before handles exist")
            .cluster = Some(backend);
        self
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServerError> {
        Ok(self.listener.local_addr()?)
    }

    /// A remote-control handle (usable from other threads).
    pub fn handle(&self) -> Result<ServerHandle, ServerError> {
        Ok(ServerHandle {
            state: self.state.clone(),
            addr: self.listener.local_addr()?,
        })
    }

    /// Serve until [`ServerHandle::shutdown`] (or `POST /shutdown`).
    ///
    /// Blocks the calling thread: the reactor runs here, queue workers
    /// and the handler pool on scoped threads behind it.
    pub fn run(self) -> Result<(), ServerError> {
        let Server {
            listener,
            state,
            config,
        } = self;
        let waker = Arc::new(Waker::new()?);
        let _ = state.reactor_waker.set(waker.clone());
        listener.set_nonblocking(true)?;
        let dispatch = Dispatch {
            tasks: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
        };
        let served: std::io::Result<()> = std::thread::scope(|scope| {
            for worker in 0..config.queue_workers.max(1) {
                let state = &state;
                std::thread::Builder::new()
                    .name(format!("synapse-queue-{worker}"))
                    .spawn_scoped(scope, move || queue_worker(state))
                    // lint:allow(no-panic-hot-path, reason = "thread spawn at server startup; failing fast before serving is intended")
                    .expect("spawn queue worker");
            }
            let handlers = match config.handler_threads {
                0 => DEFAULT_HANDLER_THREADS,
                n => n,
            };
            for handler in 0..handlers {
                let (state, dispatch, waker) = (&state, &dispatch, &*waker);
                std::thread::Builder::new()
                    .name(format!("synapse-handler-{handler}"))
                    .spawn_scoped(scope, move || handler_worker(state, dispatch, waker))
                    // lint:allow(no-panic-hot-path, reason = "thread spawn at server startup; failing fast before serving is intended")
                    .expect("spawn handler");
            }
            let served = (|| {
                let mut reactor = Reactor {
                    state: &state,
                    listener: &listener,
                    poller: Poller::new()?,
                    waker: waker.clone(),
                    dispatch: &dispatch,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    request_timeout: config.request_timeout,
                    high_water: config.stream_high_water.max(4 * 1024),
                    write_stall: config.write_stall_timeout,
                    scratch: Vec::with_capacity(64 * 1024),
                };
                reactor.serve()
            })();
            // The reactor exiting — clean shutdown or fatal error —
            // must take the helper threads with it, or the scope join
            // hangs forever.
            state.request_shutdown();
            dispatch.ready.notify_all();
            served
        });
        served?;
        state.cache.persist()?;
        Ok(())
    }
}

/// One queue worker: take jobs until shutdown.
fn queue_worker(state: &ServerState) {
    while let Some(job) = state.next_job() {
        run_job(state, &job);
    }
}

/// Sweep one job, publishing NDJSON events as points land.
fn run_job(state: &ServerState, job: &Arc<Job>) {
    if job.cancel.is_cancelled() {
        // Cancelled while still queued. DELETE (or shutdown) may have
        // settled it already — emit the terminal event only once.
        let already_settled = job.with_progress(|p| {
            if p.state.is_terminal() {
                true
            } else {
                p.state = JobState::Cancelled;
                false
            }
        });
        if !already_settled {
            job.push_shared_event(
                ndjson(&json!({"event": "cancelled", "id": job.public_id(), "done": 0, "total": job.total})),
            );
            job.close_events();
        }
        state.finalize_trace(job);
        return;
    }
    // A DELETE may settle the job between the check above and here;
    // transition to Running only from a non-terminal state, so a
    // settled job is never revived (and never re-streams `started`
    // into its closed event buffer).
    let proceed = job.with_progress(|p| {
        if p.state.is_terminal() {
            false
        } else {
            p.state = JobState::Running;
            true
        }
    });
    if !proceed {
        return;
    }
    match job.kind {
        JobKind::Sweep => run_sweep_job(state, job),
        JobKind::Lease { start, end } => run_lease_job(state, job, start, end),
        JobKind::Distributed => run_distributed_job(state, job),
    }
    job.close_events();
    state.finalize_trace(job);
}

/// Serialize the hot per-point event by hand: at ~100k points/s the
/// `json!` Value tree (a dozen allocations per event, built on the
/// sweep thread) was the single biggest observer cost. Keys are in
/// the same sorted order the tree serializer emits, strings go
/// through the vendored serde_json escaper, and floats mirror its
/// formatting rules exactly, so the wire shape is indistinguishable.
fn point_event_line(
    result: &synapse_campaign::PointResult,
    cached: bool,
    done: usize,
    total: usize,
) -> String {
    use std::fmt::Write as _;
    fn push_f64(out: &mut String, value: f64) {
        if !value.is_finite() {
            out.push_str("null");
        } else if value == value.trunc() && value.abs() < 1e16 {
            let _ = write!(out, "{value:.1}");
        } else {
            let _ = write!(out, "{value}");
        }
    }
    let mut line = String::with_capacity(416);
    line.push_str("{\"app_tx\":");
    push_f64(&mut line, result.app_tx);
    line.push_str(",\"cached\":");
    line.push_str(if cached { "true" } else { "false" });
    let _ = write!(line, ",\"done\":{done},\"error_pct\":");
    push_f64(&mut line, result.error_pct());
    line.push_str(",\"event\":\"point\",\"fingerprint\":");
    // lint:allow(no-panic-hot-path, reason = "serializing owned in-memory data; Value/string serialization is infallible")
    line.push_str(&serde_json::to_string(&result.fingerprint).expect("fingerprint serializes"));
    let _ = write!(line, ",\"index\":{},\"label\":", result.point.index);
    // lint:allow(no-panic-hot-path, reason = "serializing owned in-memory data; Value/string serialization is infallible")
    line.push_str(&serde_json::to_string(&result.point.label()).expect("label serializes"));
    let _ = write!(line, ",\"total\":{total},\"tx\":");
    push_f64(&mut line, result.tx);
    line.push('}');
    line
}

/// Serialize one lease-stream `batch` frame: `n` landed points packed
/// into a single NDJSON line so a warm lease is hundreds of ring
/// pushes and socket writes instead of tens of thousands. Layout
/// (also specified byte-level in `docs/PROTOCOL.md`):
///
/// ```json
/// {"event":"batch","v":1,"n":2,"len":<bytes>,"points":[
///   {"cached":false,"result":{…PointResult…}}, …]}
/// ```
///
/// `len` is the byte length of the `points` array text (brackets
/// included) — a length prefix the consumer checks against the frame
/// it actually received, so a reframed or spliced line fails loudly
/// instead of merging partial results. `points` is always the final
/// key, which is what makes the check a pure suffix computation.
/// Results round-trip f64-exactly through the JSON layer, so merged
/// reports stay byte-stable.
///
/// When the lease carries a coordinator causality id (`X-Synapse-Trace`
/// on the `POST /leases`), the frame echoes it as a `trace` key before
/// `points`, so merged streams stay attributable to the campaign trace.
pub fn lease_batch_line(
    points: &[(Arc<synapse_campaign::PointResult>, bool)],
    trace: Option<&str>,
) -> String {
    use std::fmt::Write as _;
    let mut payload = String::with_capacity(points.len() * 512 + 2);
    payload.push('[');
    for (i, (result, cached)) in points.iter().enumerate() {
        if i > 0 {
            payload.push(',');
        }
        payload.push_str("{\"cached\":");
        payload.push_str(if *cached { "true" } else { "false" });
        payload.push_str(",\"result\":");
        // lint:allow(no-panic-hot-path, reason = "serializing owned in-memory data; Value/string serialization is infallible")
        payload.push_str(&serde_json::to_string(&**result).expect("result serializes"));
        payload.push('}');
    }
    payload.push(']');
    let mut line = String::with_capacity(payload.len() + 96);
    let _ = write!(
        line,
        "{{\"event\":\"batch\",\"v\":{BATCH_FRAME_VERSION},\"n\":{},\"len\":{}",
        points.len(),
        payload.len(),
    );
    if let Some(trace) = trace {
        let _ = write!(
            line,
            ",\"trace\":{}",
            // lint:allow(no-panic-hot-path, reason = "serializing owned in-memory data; Value/string serialization is infallible")
            serde_json::to_string(trace).expect("trace id serializes")
        );
    }
    let _ = write!(line, ",\"points\":{payload}}}");
    line
}

/// The progress observer shared by local sweeps and distributed runs:
/// per-point NDJSON events with running counters and periodic
/// aggregate snapshots.
fn point_observer(job: &Arc<Job>) -> impl Fn(PointEvent) + Sync + '_ {
    move |event: PointEvent| {
        // The flight recorder sees the identical event stream the
        // NDJSON observers render — one seam, two consumers.
        if let Some(recorder) = job.recorder() {
            recorder.observe(&event);
        }
        match event {
            PointEvent::Started { total } => {
                job.push_shared_event(ndjson(&json!({
                    "event": "started",
                    "id": job.public_id(),
                    "name": job.spec.name,
                    "total": total,
                })));
            }
            PointEvent::PointDone {
                result,
                cached,
                done,
                total,
            } => {
                job.with_progress(|p| {
                    p.done = done;
                    p.cache_hits += usize::from(cached);
                });
                // Distributed runs fold worker-shipped digests into the
                // live view at lease completion; recording the merged
                // point stream here too would double-count every point.
                if !matches!(job.kind, JobKind::Distributed) {
                    job.live().record(&result);
                }
                job.push_event(point_event_line(&result, cached, done, total));
                // The final point's delta travels with the terminal
                // snapshot instead (publish_outcome), so a watcher
                // never sees a mid-sweep snapshot after the last point.
                if done < total {
                    emit_snapshot_delta(job, false);
                }
            }
            // Terminal events are published below, where the report and
            // final state are in hand.
            PointEvent::Finished { .. } | PointEvent::Cancelled { .. } => {}
        }
    }
}

/// Emit one aggregate `snapshot` **delta** event onto both of the
/// job's rings — only the slices whose live aggregates changed since
/// the last emission, never the full table. Skipped when nothing
/// changed, or (unless `force`) when the hybrid cadence says it is
/// too soon: both [`SNAPSHOT_EVERY`] points *and*
/// [`SNAPSHOT_MIN_INTERVAL`] must have passed since the last one.
fn emit_snapshot_delta(job: &Arc<Job>, force: bool) {
    let live = job.live();
    let (done, cache_hits) = job.with_progress(|p| (p.done, p.cache_hits));
    // Decide and advance under the cursor lock, so concurrent sweep
    // threads cannot double-emit one delta window.
    let slices = job.with_snapshot_cursor(|cursor| {
        let due = force
            || (done.saturating_sub(cursor.done) >= SNAPSHOT_EVERY
                && cursor.emitted_at.elapsed() >= SNAPSHOT_MIN_INTERVAL);
        if !due || live.version() == cursor.version {
            return None;
        }
        let (slices, version) = live.delta_since(cursor.version);
        cursor.version = version;
        cursor.done = done;
        cursor.emitted_at = Instant::now();
        Some(slices)
    });
    let Some(slices) = slices else {
        return;
    };
    let line = ndjson(&json!({
        "event": "snapshot",
        "done": done,
        "total": job.total,
        "cache_hits": cache_hits,
        "simulated": done - cache_hits,
        "mean_abs_error_pct": live.mean_abs_error_pct().unwrap_or(0.0),
        "slices": serde_json::Value::Array(slices),
        "v": AGGREGATES_VERSION,
    }));
    let metrics = AggregateMetrics::get();
    metrics.snapshots_emitted.inc();
    metrics.snapshot_bytes.observe(line.len() as f64);
    job.push_shared_event(line);
}

/// Publish a finished (or failed) outcome: final state, report, and
/// exactly one terminal event.
fn publish_outcome(
    job: &Arc<Job>,
    outcome: Result<synapse_campaign::CampaignOutcome, CampaignError>,
) {
    // The guaranteed terminal snapshot: whatever the cadence held
    // back since the last delta lands before the terminal event, so
    // an aggregate-mode watcher always ends holding the complete
    // view. Leases skip it — their stream is the coordinator merge
    // protocol, and the digest rides the `completed` event instead.
    if !matches!(job.kind, JobKind::Lease { .. }) {
        emit_snapshot_delta(job, true);
    }
    match outcome {
        Ok(outcome) => {
            let stats = outcome.stats;
            // Stage timings land in the trace here, not in the engine's
            // Finished event — expand/aggregate walls are only known
            // once the full run returns.
            if let Some(recorder) = job.recorder() {
                recorder.record_stats(&stats);
            }
            job.set_report(outcome.report);
            job.with_progress(|p| {
                p.state = JobState::Completed;
                p.stats = Some(stats);
            });
            job.push_shared_event(ndjson(&json!({
                "event": "completed",
                "id": job.public_id(),
                "name": job.spec.name,
                "points": stats.points,
                "simulated": stats.simulated,
                "cache_hits": stats.cache_hits,
                "cache_hit_rate": stats.hit_rate(),
                "wall_secs": stats.wall_secs,
                "points_per_sec": stats.points_per_sec(),
                "timings": stats.timings_json(),
            })));
        }
        Err(CampaignError::Cancelled { done, total }) => {
            job.with_progress(|p| p.state = JobState::Cancelled);
            // A DELETE racing the queue pop may have settled the job
            // (and closed its stream) already; don't emit twice.
            if !job.events_closed() {
                job.push_shared_event(ndjson(&json!({
                    "event": "cancelled",
                    "id": job.public_id(),
                    "done": done,
                    "total": total,
                })));
            }
        }
        Err(e) => {
            let message = e.to_string();
            job.with_progress(|p| {
                p.state = JobState::Failed;
                p.error = Some(message.clone());
            });
            job.push_shared_event(ndjson(
                &json!({"event": "failed", "id": job.public_id(), "error": message}),
            ));
        }
    }
}

/// Sweep one full-grid job in this process.
fn run_sweep_job(state: &ServerState, job: &Arc<Job>) {
    let config = RunConfig {
        workers: job.workers,
    };
    let observer = point_observer(job);
    let outcome = run_campaign_on(&job.spec, &config, &state.cache, &observer, &job.cancel);
    publish_outcome(job, outcome);
}

/// Fan one distributed job out through the cluster backend.
fn run_distributed_job(state: &ServerState, job: &Arc<Job>) {
    let Some(backend) = &state.cluster else {
        // Guarded at submit time; a job can only get here if the
        // backend vanished, which cannot happen — but fail loudly
        // rather than panic a queue worker.
        publish_outcome(
            job,
            Err(CampaignError::Cluster(
                "this server has no cluster backend".into(),
            )),
        );
        return;
    };
    let observer = point_observer(job);
    let recorder = job.recorder().map(|r| &**r);
    let outcome = backend.run_distributed(
        &job.spec,
        &state.cache,
        job.live(),
        &observer,
        recorder,
        &job.cancel,
    );
    publish_outcome(job, outcome);
}

/// Sweep one lease (a contiguous slice of the grid) on behalf of a
/// coordinator: landed points travel back as `batch` frames (or
/// legacy per-point `point` events when `batch_points <= 1`), each
/// carrying full serialized results, and the terminal event reports
/// lease-relative counters. No report is assembled — merging is the
/// coordinator's job.
fn run_lease_job(state: &ServerState, job: &Arc<Job>, start: usize, end: usize) {
    // Materialize only the leased slice (points keep their global
    // indices) — a worker serving 8 leases of a huge grid must not
    // expand the whole grid 8 times.
    let points = expand_range(&job.spec, start, end);
    let slice = points.as_slice();
    let config = RunConfig {
        workers: job.workers,
    };
    let batch_cap = state.batch_points;
    // The engine observer is called from every sweep thread, so the
    // pending batch lives behind a mutex; frames are built and pushed
    // under it, keeping frame order = landing order.
    // The coordinator's causality id (if the lease carried one): echoed
    // in the lease's own events and batch frames so a merged stream —
    // or a recorded trace — attributes every frame to its campaign.
    let trace = job.lease_trace();
    let with_trace = |mut doc: serde_json::Value| {
        if let (Some(id), serde_json::Value::Object(obj)) = (trace, &mut doc) {
            obj.insert("trace".into(), json!(id));
        }
        doc
    };
    let pending: Mutex<Vec<(Arc<synapse_campaign::PointResult>, bool)>> =
        Mutex::new(Vec::with_capacity(batch_cap.min(4096)));
    let flush = |buf: &mut Vec<(Arc<synapse_campaign::PointResult>, bool)>| {
        if !buf.is_empty() {
            job.push_event(lease_batch_line(buf, trace));
            buf.clear();
        }
    };
    let observer = |event: PointEvent| match event {
        PointEvent::Started { total } => {
            job.push_event(ndjson(&with_trace(json!({
                "event": "started",
                "id": job.public_id(),
                "name": job.spec.name,
                "lease": {"start": start, "end": end},
                "total": total,
            }))));
        }
        PointEvent::PointDone {
            result,
            cached,
            done,
            total,
        } => {
            job.with_progress(|p| {
                p.done = done;
                p.cache_hits += usize::from(cached);
            });
            // The lease keeps its own live view so its terminal event
            // can ship a mergeable digest back to the coordinator.
            job.live().record(&result);
            if batch_cap > 1 {
                let mut buf = pending.lock().unwrap_or_else(|e| e.into_inner());
                buf.push((result, cached));
                if buf.len() >= batch_cap {
                    flush(&mut buf);
                }
            } else {
                job.push_event(ndjson(&with_trace(json!({
                    "event": "point",
                    "index": result.point.index,
                    "cached": cached,
                    "done": done,
                    "total": total,
                    // The coordinator reconstructs PointResult from
                    // this field; f64s round-trip exactly through the
                    // JSON layer, so merged reports stay byte-stable.
                    // lint:allow(no-panic-hot-path, reason = "serializing owned in-memory data; Value/string serialization is infallible")
                    "result": serde_json::to_value(&*result).expect("result serializes"),
                }))));
            }
        }
        PointEvent::Finished { .. } | PointEvent::Cancelled { .. } => {}
    };
    let engine = CampaignEngine::new(slice, &state.cache, &config);
    let outcome = engine.run(&observer, &job.cancel);
    // Whatever landed stays landed: flush the partial tail frame even
    // on error/cancel — the coordinator's merge dedups replays, and a
    // half-delivered lease re-runs elsewhere anyway.
    flush(&mut pending.lock().unwrap_or_else(|e| e.into_inner()));
    // Landed points must survive the process for the shared cache dir.
    if let Err(e) = state.cache.persist() {
        publish_outcome(job, Err(e));
        return;
    }
    match outcome {
        Ok((_, stats)) => {
            job.with_progress(|p| {
                p.state = JobState::Completed;
                p.stats = Some(stats);
            });
            job.push_event(ndjson(&with_trace(json!({
                "event": "completed",
                "id": job.public_id(),
                "name": job.spec.name,
                "lease": {"start": start, "end": end},
                "points": stats.points,
                "simulated": stats.simulated,
                "cache_hits": stats.cache_hits,
                "cache_hit_rate": stats.hit_rate(),
                "wall_secs": stats.wall_secs,
                "timings": stats.timings_json(),
                // The lease's aggregates as a mergeable digest: the
                // coordinator folds it into the campaign's live view,
                // so cluster-wide aggregates agree with a
                // single-process sweep within sketch error. Old
                // coordinators ignore the extra key.
                "aggregates": job.live().digest(),
            }))));
        }
        Err(e) => publish_outcome(job, Err(e)),
    }
}

// ---------------------------------------------------------------------------
// Request routing (runs on the handler pool; returns bytes or a
// stream handle for the reactor to drive — never touches a socket).
// ---------------------------------------------------------------------------

/// What a routed request turns into.
pub(crate) enum Reply {
    /// A complete response: write, close.
    Full(Vec<u8>),
    /// Switch the connection to a live NDJSON event stream, after an
    /// optional preamble line (the `?watch=1` submit ack). `ring`
    /// picks which of the job's event rings feeds the stream: raw
    /// (everything) or aggregates-only (`?aggregates=1`).
    Stream {
        job: Arc<Job>,
        preamble: Option<String>,
        ring: EventRing,
    },
    /// Write the response, then initiate server shutdown.
    Shutdown(Vec<u8>),
}

fn json_reply(status: u16, reason: &str, value: &serde_json::Value) -> Reply {
    Reply::Full(http::json_bytes(status, reason, value))
}

/// Dispatch one parsed request.
fn route(request: &Request, state: &ServerState) -> Reply {
    let path = request.path().trim_end_matches('/').to_string();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (jobs, queued, running) = job_counts(state);
            json_reply(
                200,
                "OK",
                &json!({
                    "status": "ok",
                    "uptime_secs": state.started.elapsed().as_secs_f64(),
                    "jobs": jobs,
                    "queued": queued,
                    "running": running,
                    "active_connections": state.active_connections.load(Ordering::Acquire),
                    "max_connections": state.max_connections,
                    "threads": process_threads(),
                    "coordinator": state.cluster.is_some(),
                }),
            )
        }
        ("GET", ["store", "stats"]) => {
            let stats = state.cache.stats();
            json_reply(
                200,
                "OK",
                &json!({
                    "results": stats.docs,
                    "data_files": stats.data_files,
                    "occupied_shards": stats.occupied_shards,
                    "shard_count": synapse_store::SHARD_COUNT,
                    "dirty_shards": stats.dirty_shards,
                    "bytes_on_disk": stats.bytes_on_disk,
                    "engine": stats.engine,
                    // Cross-process cache-sharing observability: how
                    // often this process's saves collided with another
                    // process on the shared directory, and how many of
                    // their results were merged back in.
                    "lock_acquisitions": stats.lock_acquisitions,
                    "lock_contention": stats.lock_contention,
                    "reconciled_docs": stats.reconciled_docs,
                    "active_connections": state.active_connections.load(Ordering::Acquire),
                }),
            )
        }
        ("GET", ["metrics"]) => {
            // Refresh the scrape-time gauges from the very sources the
            // JSON endpoints report — same job table, same connection
            // counter — so `/healthz` and `/metrics` cannot drift.
            let metrics = ServerMetrics::get();
            let (_, queued, running) = job_counts(state);
            metrics.jobs_queued.set(queued as f64);
            metrics.jobs_running.set(running as f64);
            metrics
                .uptime_seconds
                .set(state.started.elapsed().as_secs_f64());
            metrics
                .connections_active
                .set(state.active_connections.load(Ordering::Acquire) as f64);
            Reply::Full(http::response_bytes(
                200,
                "OK",
                "text/plain; version=0.0.4",
                synapse_telemetry::global().render().as_bytes(),
            ))
        }
        ("POST", ["campaigns"]) => submit_campaign(request, state),
        ("POST", ["leases"]) => submit_lease(request, state),
        (_, ["cluster", rest @ ..]) => cluster_route(request, rest, state),
        ("GET", ["campaigns"]) => {
            let listing: Vec<serde_json::Value> = state
                .jobs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|j| state.status_json(j))
                .collect();
            json_reply(200, "OK", &json!({"campaigns": listing}))
        }
        ("GET", ["campaigns", id]) => match state.job(id) {
            Some(job) => json_reply(200, "OK", &state.status_json(&job)),
            None => not_found(id),
        },
        ("GET", ["campaigns", id, "report"]) => match state.job(id) {
            Some(job) => match job.report_json() {
                Some(body) => Reply::Full(http::response_bytes(
                    200,
                    "OK",
                    "application/json",
                    body.as_bytes(),
                )),
                None => json_reply(
                    409,
                    "Conflict",
                    &json!({
                        "error": format!("campaign {id} is {}, report not available",
                                          job.state().name()),
                    }),
                ),
            },
            None => not_found(id),
        },
        ("GET", ["campaigns", id, "trace"]) => match state.job(id) {
            Some(job) => match job.trace_doc() {
                Some(doc) => Reply::Full(http::response_bytes(
                    200,
                    "OK",
                    "application/x-ndjson",
                    doc.as_bytes(),
                )),
                None => json_reply(
                    409,
                    "Conflict",
                    &json!({
                        "error": if job.recorder().is_some() {
                            format!("campaign {id} is {}, trace not sealed yet", job.state().name())
                        } else {
                            format!("campaign {id} was not recorded (submit with ?record=1)")
                        },
                    }),
                ),
            },
            None => not_found(id),
        },
        ("GET", ["campaigns", id, "aggregates"]) => match state.job(id) {
            Some(job) => aggregates_reply(request, &job),
            None => not_found(id),
        },
        ("GET", ["campaigns", id, "events"]) => match state.job(id) {
            Some(job) => Reply::Stream {
                job,
                preamble: None,
                ring: stream_ring(request),
            },
            None => not_found(id),
        },
        ("DELETE", ["campaigns", id]) => match state.job(id) {
            Some(job) => {
                // A queued job never reaches a worker's cancelled
                // check promptly; settle it here so DELETE is
                // immediate for work that never started. (The queue
                // worker re-checks and skips settled jobs; a running
                // job just gets its token cancelled.)
                if job.settle_if_queued() {
                    state.finalize_trace(&job);
                }
                json_reply(200, "OK", &state.status_json(&job))
            }
            None => not_found(id),
        },
        ("POST", ["shutdown"]) => Reply::Shutdown(http::json_bytes(
            200,
            "OK",
            &json!({"status": "shutting down"}),
        )),
        (_, ["healthz" | "shutdown" | "leases" | "metrics"])
        | (_, ["store", "stats"])
        | (_, ["campaigns", ..]) => json_reply(
            405,
            "Method Not Allowed",
            &json!({"error": format!("{} not allowed on {}", request.method, path)}),
        ),
        _ => json_reply(
            404,
            "Not Found",
            &json!({"error": format!("no such endpoint {path:?}")}),
        ),
    }
}

fn not_found(id: &str) -> Reply {
    json_reply(
        404,
        "Not Found",
        &json!({"error": format!("no such campaign {id:?}")}),
    )
}

/// Which job ring a stream request asked for: `?aggregates=1` selects
/// the lifecycle+snapshot-only ring, anything else the raw ring.
fn stream_ring(request: &Request) -> EventRing {
    if request.query_flag("aggregates") {
        EventRing::Aggregates
    } else {
        EventRing::Raw
    }
}

/// `GET /campaigns/<id>/aggregates[?axis=...&metric=...]`: the live
/// per-(axis, value) aggregate table — answerable mid-sweep (whatever
/// has landed so far) and after completion (the full campaign).
/// Unknown axis or metric names are a 400, not an empty result, so a
/// typo cannot read as "no data".
fn aggregates_reply(request: &Request, job: &Arc<Job>) -> Reply {
    let axis = request.query_value("axis");
    if let Some(axis) = axis {
        if !synapse_campaign::aggregate::AXES
            .iter()
            .any(|(name, _)| *name == axis)
        {
            let known: Vec<&str> = synapse_campaign::aggregate::AXES
                .iter()
                .map(|(name, _)| *name)
                .collect();
            return json_reply(
                400,
                "Bad Request",
                &json!({"error": format!("unknown axis {axis:?} (one of {})", known.join(", "))}),
            );
        }
    }
    let metric = request.query_value("metric");
    if let Some(metric) = metric {
        if !synapse_campaign::live::METRICS.contains(&metric) {
            return json_reply(
                400,
                "Bad Request",
                &json!({
                    "error": format!(
                        "unknown metric {metric:?} (one of {})",
                        synapse_campaign::live::METRICS.join(", ")
                    ),
                }),
            );
        }
    }
    AggregateMetrics::get().queries.inc();
    let (done, state_name) = job.with_progress(|p| (p.done, p.state.name()));
    let mut doc = job.live().render(axis, metric);
    if let serde_json::Value::Object(obj) = &mut doc {
        obj.insert("id".into(), json!(job.public_id()));
        obj.insert("name".into(), json!(job.spec.name));
        obj.insert("status".into(), json!(state_name));
        obj.insert("done".into(), json!(done));
        obj.insert("total".into(), json!(job.total));
    }
    json_reply(200, "OK", &doc)
}

/// `POST /campaigns[?cluster=1]`: parse a TOML or JSON spec, enqueue a
/// job — locally swept, or distributed across the cluster when the
/// flag is set (coordinator servers only).
fn submit_campaign(request: &Request, state: &ServerState) -> Reply {
    if state.shutting_down() {
        return json_reply(
            503,
            "Service Unavailable",
            &json!({"error": "server is shutting down"}),
        );
    }
    let distributed = request.query_flag("cluster");
    if distributed && state.cluster.is_none() {
        return json_reply(
            400,
            "Bad Request",
            &json!({"error": "this server is not a cluster coordinator (start it with `synapse cluster start`)"}),
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return json_reply(
            400,
            "Bad Request",
            &json!({"error": "spec body is not UTF-8"}),
        );
    };
    // Dispatch on declared content type, falling back to sniffing:
    // JSON specs start with '{'.
    let content_type = request.header("content-type").unwrap_or("");
    let parsed = if content_type.contains("json") || text.trim_start().starts_with('{') {
        CampaignSpec::from_json(text)
    } else {
        CampaignSpec::from_toml(text)
    };
    match parsed {
        Ok(spec) => {
            let kind = if distributed {
                JobKind::Distributed
            } else {
                JobKind::Sweep
            };
            let total = spec.point_count();
            // `?record=1` attaches a flight recorder before the job is
            // queued: the trace id is minted deterministically from the
            // spec, so a cluster coordinator and a local run of the
            // same campaign agree on it without coordination.
            let recorder = request
                .query_flag("record")
                .then(|| Arc::new(TraceRecorder::new(&spec)));
            let job = state.submit(spec, total, kind, recorder, None);
            let mut ack = json!({
                "id": job.public_id(),
                "name": job.spec.name,
                "status": job.state().name(),
                "points": job.total,
                "distributed": distributed,
            });
            if let (Some(recorder), serde_json::Value::Object(obj)) = (job.recorder(), &mut ack) {
                obj.insert("trace".into(), json!(recorder.trace_id()));
            }
            // `?watch=1` folds submit + watch into ONE round trip: the
            // ack becomes the stream's first NDJSON line and the
            // job's events follow on the same connection — half the
            // connection churn for the most common client flow.
            if request.query_flag("watch") {
                Reply::Stream {
                    job,
                    preamble: Some(ndjson(&ack)),
                    ring: stream_ring(request),
                }
            } else {
                json_reply(202, "Accepted", &ack)
            }
        }
        Err(e) => json_reply(
            400,
            "Bad Request",
            &json!({"error": format!("invalid campaign spec: {e}")}),
        ),
    }
}

/// `POST /leases`: accept a lease (full spec + grid index range) from
/// a cluster coordinator and enqueue it like any other job. Events
/// stream through the usual `GET /campaigns/<id>/events`.
fn submit_lease(request: &Request, state: &ServerState) -> Reply {
    if state.shutting_down() {
        return json_reply(
            503,
            "Service Unavailable",
            &json!({"error": "server is shutting down"}),
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return json_reply(
            400,
            "Bad Request",
            &json!({"error": "lease body is not UTF-8"}),
        );
    };
    let lease: LeaseRequest = match serde_json::from_str(text) {
        Ok(lease) => lease,
        Err(e) => {
            return json_reply(
                400,
                "Bad Request",
                &json!({"error": format!("invalid lease request: {e}")}),
            )
        }
    };
    // Re-validate after the hop; the range must fit the grid.
    let spec = match lease.spec.validated() {
        Ok(spec) => spec,
        Err(e) => {
            return json_reply(
                400,
                "Bad Request",
                &json!({"error": format!("invalid campaign spec: {e}")}),
            )
        }
    };
    let total = spec.point_count();
    if lease.start >= lease.end || lease.end > total {
        return json_reply(
            400,
            "Bad Request",
            &json!({
                "error": format!(
                    "lease range {}..{} does not fit the {total}-point grid",
                    lease.start, lease.end
                ),
            }),
        );
    }
    // A coordinator propagates its campaign's causality id with the
    // lease; the worker echoes it in every event and batch frame.
    let lease_trace = request.header("x-synapse-trace").map(str::to_string);
    let job = state.submit(
        spec,
        lease.end - lease.start,
        JobKind::Lease {
            start: lease.start,
            end: lease.end,
        },
        None,
        lease_trace,
    );
    let mut ack = json!({
        "id": job.public_id(),
        "name": job.spec.name,
        "status": job.state().name(),
        "points": job.total,
        "lease": {"start": lease.start, "end": lease.end},
        "grid_points": total,
    });
    if let (Some(id), serde_json::Value::Object(obj)) = (job.lease_trace(), &mut ack) {
        obj.insert("trace".into(), json!(id));
    }
    json_reply(202, "Accepted", &ack)
}

/// `/cluster/*`: the coordinator's worker registry. 404s (with a
/// pointer) on servers without a cluster backend.
fn cluster_route(request: &Request, rest: &[&str], state: &ServerState) -> Reply {
    let Some(backend) = &state.cluster else {
        return json_reply(
            404,
            "Not Found",
            &json!({"error": "this server is not a cluster coordinator (start it with `synapse cluster start`)"}),
        );
    };
    match (request.method.as_str(), rest) {
        ("GET", ["status"]) => json_reply(200, "OK", &backend.status()),
        ("POST", ["workers"]) => {
            // Accept `{"addr": "host:port"}` or a bare address body.
            let text = std::str::from_utf8(&request.body).unwrap_or("").trim();
            let addr = serde_json::from_str::<serde_json::Value>(text)
                .ok()
                // lint:allow(no-panic-hot-path, reason = "Value indexing is total; a missing key yields Null, never a panic")
                .and_then(|v| v["addr"].as_str().map(str::to_string))
                .or_else(|| (!text.is_empty() && !text.starts_with('{')).then(|| text.to_string()));
            match addr {
                Some(addr) => json_reply(201, "Created", &backend.register_worker(&addr)),
                None => json_reply(
                    400,
                    "Bad Request",
                    &json!({"error": "worker registration needs {\"addr\": \"host:port\"}"}),
                ),
            }
        }
        ("DELETE", ["workers", id]) => match backend.deregister_worker(id) {
            Some(doc) => json_reply(200, "OK", &doc),
            None => json_reply(
                404,
                "Not Found",
                &json!({"error": format!("no such worker {id:?}")}),
            ),
        },
        ("POST", ["workers", id, "heartbeat"]) => match backend.heartbeat(id) {
            Some(doc) => json_reply(200, "OK", &doc),
            None => json_reply(
                404,
                "Not Found",
                &json!({"error": format!("no such worker {id:?}")}),
            ),
        },
        (_, ["status"]) | (_, ["workers", ..]) => json_reply(
            405,
            "Method Not Allowed",
            &json!({"error": format!("{} not allowed on /cluster/{}", request.method, rest.join("/"))}),
        ),
        _ => json_reply(
            404,
            "Not Found",
            &json!({"error": format!("no such cluster endpoint {:?}", rest.join("/"))}),
        ),
    }
}

// ---------------------------------------------------------------------------
// The reactor: nonblocking accept + per-connection state machines.
// ---------------------------------------------------------------------------

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// The handler-pool mailboxes: parsed requests in, replies out.
struct Dispatch {
    /// (connection token, parsed request, dispatch instant) — the
    /// instant anchors the per-endpoint latency histogram, so queue
    /// wait inside the handler pool is part of what it measures.
    tasks: Mutex<VecDeque<(u64, Request, Instant)>>,
    ready: Condvar,
    completions: Mutex<Vec<(u64, Reply)>>,
}

/// One handler-pool thread: route requests until shutdown (draining
/// whatever is still queued first, so accepted requests always get
/// their response).
fn handler_worker(state: &ServerState, dispatch: &Dispatch, waker: &Waker) {
    loop {
        let task = {
            let mut tasks = dispatch.tasks.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = tasks.pop_front() {
                    break Some(task);
                }
                if state.shutting_down() {
                    break None;
                }
                tasks = dispatch
                    .ready
                    .wait_timeout(tasks, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let Some((token, request, dispatched)) = task else {
            return;
        };
        let endpoint = endpoint_label(request.path());
        let reply = route(&request, state);
        ServerMetrics::get()
            .request_seconds(endpoint)
            .observe_since(dispatched);
        // Same wall the histogram just observed, stamped into the
        // flight recorder this request belongs to (if one is live).
        state.record_span(&request, endpoint, dispatched.elapsed().as_secs_f64());
        dispatch
            .completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((token, reply));
        waker.wake();
    }
}

/// Where one connection's state machine stands.
enum ConnState {
    /// Accumulating request bytes through the incremental parser.
    Reading(RequestParser),
    /// Request dispatched to the handler pool; awaiting its reply.
    Handling,
    /// Flushing `out`; close when drained.
    Writing,
    /// Live event stream: the pump appends ring events to `out` as
    /// they arrive (up to the high-water mark), the reactor flushes on
    /// write readiness. `done` = terminator appended, close after the
    /// final flush.
    Streaming {
        job: Arc<Job>,
        ring: EventRing,
        cursor: usize,
        done: bool,
    },
}

/// One accepted connection.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Unsent output; `out[..written]` already went down the socket.
    out: Vec<u8>,
    written: usize,
    /// Accepted past the connection cap: answer `503` after reading
    /// the request (answering before consuming it would RST the
    /// socket before the client sees the status).
    shed: bool,
    /// Peer shut its write side (EOF seen) after delivering its
    /// request: stop watching for input, keep delivering output.
    read_shut: bool,
    /// Reading-phase cutoff (slow-loris budget).
    deadline: Option<Instant>,
    /// Last successful socket write (stall reclaim).
    last_progress: Instant,
    /// Last stream payload enqueued (heartbeat cadence).
    last_emit: Instant,
    /// Currently-registered epoll interest.
    interest: u32,
}

impl Conn {
    fn pending(&self) -> usize {
        self.out.len() - self.written
    }
}

/// What a readiness-driven read pass concluded.
enum ReadOutcome {
    /// Transport drained, nothing decided.
    Idle,
    /// Peer hung up mid-request (or transport error): reclaim.
    Close,
    /// Peer shut its write side AFTER its request completed — a
    /// half-closing client (`curl --no-keepalive`, `nc -N`, proxies)
    /// is still reading; its response/stream must be delivered. The
    /// old blocking front never read past the request, so it was
    /// naturally immune; the reactor must opt out of read interest
    /// explicitly or the level-triggered EOF would spin.
    ReadShut,
    /// A complete request landed.
    Complete(Request),
    /// The bytes were not a parseable request.
    Fail(HttpError),
}

/// Pull everything the socket has, feeding the parser while the
/// connection is reading. Bytes arriving in any other state are
/// discarded (no pipelining; every response closes the connection).
fn read_conn(conn: &mut Conn) -> ReadOutcome {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                return if matches!(conn.state, ConnState::Reading(_)) {
                    ReadOutcome::Close
                } else {
                    ReadOutcome::ReadShut
                }
            }
            Ok(n) => {
                if let ConnState::Reading(parser) = &mut conn.state {
                    // lint:allow(no-panic-hot-path, reason = "n was just returned by read(), so n <= buf.len()")
                    match parser.feed(&buf[..n]) {
                        Ok(Some(request)) => return ReadOutcome::Complete(request),
                        Ok(None) => {}
                        Err(e) => return ReadOutcome::Fail(e),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadOutcome::Idle,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Close,
        }
    }
}

/// The reactor: owns the poller and every connection; runs on the
/// thread that called [`Server::run`].
struct Reactor<'a> {
    state: &'a ServerState,
    listener: &'a TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    dispatch: &'a Dispatch,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    request_timeout: Duration,
    high_water: usize,
    write_stall: Duration,
    /// Reusable pump buffer (ring bytes are staged here so the chunk
    /// frame can be length-prefixed without per-line allocations).
    scratch: Vec<u8>,
}

impl Reactor<'_> {
    fn serve(&mut self) -> std::io::Result<()> {
        self.poller
            .add(self.waker.fd(), TOKEN_WAKER, reactor::READABLE)?;
        self.poller
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, reactor::READABLE)?;
        let mut events: Vec<reactor::Event> = Vec::new();
        let mut shutdown_grace: Option<Instant> = None;
        let mut last_scan = Instant::now();
        let mut last_pump = Instant::now();
        let metrics = ServerMetrics::get();
        loop {
            events.clear();
            self.poller.wait(&mut events, REACTOR_TICK_MS)?;
            // Quiet ticks (the 250 ms timeout with nothing ready) are
            // not recorded — the histograms describe work per wake,
            // not the idle heartbeat.
            let pass_started = (!events.is_empty()).then(|| {
                metrics.wake_batch.observe(events.len() as f64);
                Instant::now()
            });
            let mut woke = false;
            for &event in &events {
                match event.token {
                    TOKEN_WAKER => {
                        self.waker.drain();
                        woke = true;
                    }
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token, event),
                }
            }
            self.drain_completions();
            // Pump when job activity woke us, or on a short tick that
            // bounds the latency of a partial hook batch (job hooks
            // fire every HOOK_BATCH events / HOOK_LATENCY). Pumping on
            // *every* pass would make unrelated request churn
            // O(open streams) per socket event.
            if woke || last_pump.elapsed() >= Duration::from_millis(25) {
                last_pump = Instant::now();
                self.pump_all_streams();
            }
            // Timer work is coarse (5 s deadlines, 10 s heartbeats,
            // 30 s stalls): scanning every connection on every wake
            // would make busy streams O(conns) per event batch.
            if last_scan.elapsed() >= Duration::from_millis(100) {
                last_scan = Instant::now();
                self.scan_timers();
            }
            if let Some(started) = pass_started {
                metrics.poll_seconds.observe_since(started);
            }
            if self.state.shutting_down() {
                if shutdown_grace.is_none() {
                    self.begin_shutdown();
                    shutdown_grace = Some(Instant::now() + SHUTDOWN_GRACE);
                }
                // Settled jobs closed their rings: pump the terminal
                // events out so watchers end cleanly.
                self.pump_all_streams();
                // lint:allow(no-panic-hot-path, reason = "the shutdown arm above sets the grace deadline unconditionally")
                let grace = shutdown_grace.expect("grace set above");
                if self.conns.is_empty() || Instant::now() >= grace {
                    return Ok(());
                }
            }
        }
    }

    /// Accept until the backlog drains. Capacity policy: past
    /// `max_connections` a connection is still accepted but flagged to
    /// shed (read the request, answer `503`); past twice the cap it is
    /// dropped cold — the gauge is incremented and decremented within
    /// this function, so the count stays exact.
    fn accept_ready(&mut self) {
        let metrics = ServerMetrics::get();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.state.shutting_down() {
                continue; // dropped: the listener closes right behind it
            }
            let active = self.state.active_connections.fetch_add(1, Ordering::AcqRel) + 1;
            let cap = self.state.max_connections;
            let over = cap > 0 && active > cap;
            if over && active > cap.saturating_mul(2) {
                self.state.active_connections.fetch_sub(1, Ordering::AcqRel);
                metrics.connections_dropped.inc();
                continue;
            }
            // Nagle off: event streams write many small chunked
            // frames; holding one back for the previous frame's ACK
            // would serialize the stream on round trips.
            let _ = stream.set_nodelay(true);
            let now = Instant::now();
            let token = self.next_token;
            self.next_token += 1;
            if reactor::set_nonblocking(stream.as_raw_fd()).is_err()
                || self
                    .poller
                    .add(stream.as_raw_fd(), token, reactor::READABLE)
                    .is_err()
            {
                self.state.active_connections.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            metrics.connections_accepted.inc();
            if over {
                metrics.connections_shed.inc();
            }
            self.conns.insert(
                token,
                Conn {
                    stream,
                    state: ConnState::Reading(RequestParser::new()),
                    out: Vec::new(),
                    written: 0,
                    shed: over,
                    read_shut: false,
                    deadline: Some(now + self.request_timeout),
                    last_progress: now,
                    last_emit: now,
                    interest: reactor::READABLE,
                },
            );
        }
    }

    fn conn_ready(&mut self, token: u64, event: reactor::Event) {
        if event.hangup() {
            // Full hangup: both directions dead, nothing deliverable.
            self.close(token);
            return;
        }
        if event.readable() {
            self.conn_readable(token);
        }
        if event.writable() && self.conns.contains_key(&token) {
            self.flush(token);
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            read_conn(conn)
        };
        match outcome {
            ReadOutcome::Idle => {}
            ReadOutcome::Close => self.close(token),
            ReadOutcome::ReadShut => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.read_shut = true;
                }
                self.update_interest(token);
            }
            ReadOutcome::Complete(request) => self.request_complete(token, request),
            ReadOutcome::Fail(e) => {
                let (status, reason) = e.status();
                let body = http::json_bytes(status, reason, &json!({"error": e.to_string()}));
                self.respond(token, body);
            }
        }
    }

    /// Queue a complete response on the connection and start flushing.
    fn respond(&mut self, token: u64, bytes: Vec<u8>) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.out.extend_from_slice(&bytes);
            conn.state = ConnState::Writing;
            conn.deadline = None;
        }
        self.flush(token);
    }

    fn request_complete(&mut self, token: u64, request: Request) {
        let limit = self.state.max_connections;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.deadline = None;
        if conn.shed {
            let body = http::json_bytes(
                503,
                "Service Unavailable",
                &json!({"error": format!("connection limit {limit} reached, retry later")}),
            );
            let _ = conn;
            self.respond(token, body);
            return;
        }
        conn.state = ConnState::Handling;
        self.dispatch
            .tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back((token, request, Instant::now()));
        self.dispatch.ready.notify_one();
    }

    /// Apply replies the handler pool finished. A reply for a
    /// connection that hung up meanwhile is dropped on the floor.
    fn drain_completions(&mut self) {
        let completed: Vec<(u64, Reply)> = std::mem::take(
            &mut *self
                .dispatch
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for (token, reply) in completed {
            match reply {
                Reply::Full(bytes) => self.respond(token, bytes),
                Reply::Shutdown(bytes) => {
                    self.respond(token, bytes);
                    self.state.request_shutdown();
                }
                Reply::Stream {
                    job,
                    preamble,
                    ring,
                } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.out
                            .extend_from_slice(&http::stream_head_bytes("application/x-ndjson"));
                        if let Some(line) = preamble {
                            let mut framed = line.into_bytes();
                            framed.push(b'\n');
                            http::append_chunk(&mut conn.out, &framed);
                        }
                        conn.last_emit = Instant::now();
                        conn.state = ConnState::Streaming {
                            job,
                            ring,
                            cursor: 0,
                            done: false,
                        };
                        self.pump_stream(token);
                    }
                }
            }
        }
    }

    fn pump_all_streams(&mut self) {
        let streaming: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Streaming { done: false, .. }))
            .map(|(&t, _)| t)
            .collect();
        for token in streaming {
            self.pump_stream(token);
        }
    }

    /// Move ring events into the connection's output buffer, up to the
    /// high-water mark (backpressure: a watcher that stops reading
    /// stops consuming ring events; the ring's truncation marker tells
    /// it what it missed when it resumes). Emits the chunked
    /// terminator once the ring closes and is fully drained.
    ///
    /// Pump and flush alternate until the ring has nothing more or the
    /// peer genuinely cannot keep up — a burst larger than the
    /// high-water mark must not strand its tail behind a coalesced
    /// wakeup when the watcher is reading just fine.
    fn pump_stream(&mut self, token: u64) {
        let high_water = self.high_water;
        loop {
            let hit_capacity = {
                let scratch = &mut self.scratch;
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let ConnState::Streaming {
                    job,
                    ring,
                    cursor,
                    done,
                } = &mut conn.state
                else {
                    return;
                };
                let mut hit_capacity = false;
                while !*done {
                    if conn.out.len() - conn.written >= high_water {
                        hit_capacity = true;
                        break;
                    }
                    // One chunked frame per pump pass, not per event
                    // line: a burst of points costs one write, which
                    // is most of the reactor's throughput win over the
                    // old flush-per-event streamer.
                    scratch.clear();
                    let (next, any, closed) =
                        job.ring_events_into(*ring, *cursor, scratch, high_water);
                    *cursor = next;
                    if !any {
                        if closed {
                            conn.out.extend_from_slice(http::CHUNK_TERMINATOR);
                            *done = true;
                        }
                        break;
                    }
                    http::append_chunk(&mut conn.out, scratch);
                    ServerMetrics::get().stream_bytes.add(scratch.len() as u64);
                    conn.last_emit = Instant::now();
                }
                hit_capacity
            };
            self.flush_raw(token);
            if !hit_capacity {
                return;
            }
            // Stopped for capacity: if the flush freed room, keep
            // draining the ring now; otherwise the peer is backed up
            // and the next write-readiness edge resumes the pump.
            match self.conns.get(&token) {
                Some(conn) if conn.pending() < high_water => continue,
                _ => return,
            }
        }
    }

    /// [`Reactor::flush_raw`], then restart the stream pump if the
    /// write freed room below the high-water mark. Every generic
    /// flush path needs this: a watcher that resumed reading may have
    /// drained through *any* of them (the write-readiness edge, a
    /// heartbeat pulse) with its job's ring already closed — no event
    /// hook will ever fire for it again, so whichever flush emptied
    /// the buffer is the only thing left to restart its pump.
    fn flush(&mut self, token: u64) {
        self.flush_raw(token);
        let resumable = self.conns.get(&token).is_some_and(|c| {
            matches!(c.state, ConnState::Streaming { done: false, .. })
                && c.pending() < self.high_water
        });
        if resumable {
            self.pump_stream(token);
        }
    }

    /// Write out buffered bytes until the socket would block. Closes
    /// the connection when a terminal state finishes flushing, and
    /// keeps the epoll interest in sync with whether bytes remain.
    fn flush_raw(&mut self, token: u64) {
        let mut close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                if conn.written == conn.out.len() {
                    break;
                }
                // lint:allow(no-panic-hot-path, reason = "written only advances by counts write() reported, so written <= out.len()")
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_progress = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close {
                if conn.written == conn.out.len() {
                    conn.out.clear();
                    conn.written = 0;
                    close = matches!(
                        conn.state,
                        ConnState::Writing | ConnState::Streaming { done: true, .. }
                    );
                } else if conn.written > 32 * 1024 {
                    // Reclaim the flushed prefix of a long-lived
                    // stream buffer.
                    conn.out.drain(..conn.written);
                    conn.written = 0;
                }
            }
        }
        if close {
            self.close(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Register write interest only while bytes are pending — epoll is
    /// level-triggered, so a permanently-armed EPOLLOUT would spin.
    fn update_interest(&mut self, token: u64) {
        let poller = &self.poller;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut want = if conn.read_shut {
            // EOF already observed: EPOLLIN/EPOLLRDHUP are
            // level-triggered and would refire forever. A later full
            // close still surfaces (EPOLLHUP is always reported, and
            // writes fail).
            0
        } else {
            reactor::READABLE
        };
        if conn.pending() > 0 {
            want |= reactor::WRITABLE;
        }
        if want != conn.interest && poller.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
            conn.interest = want;
        }
    }

    /// Time-based bookkeeping: request deadlines (slow-loris / shed
    /// read budget), stream heartbeats, and stalled-writer reclaim.
    fn scan_timers(&mut self) {
        let now = Instant::now();
        let mut expired: Vec<(u64, bool)> = Vec::new();
        let mut pulse: Vec<u64> = Vec::new();
        let mut stalled: Vec<u64> = Vec::new();
        for (&token, conn) in &mut self.conns {
            if conn.pending() > 0 && now.duration_since(conn.last_progress) >= self.write_stall {
                stalled.push(token);
                continue;
            }
            match &conn.state {
                ConnState::Reading(_) if conn.deadline.is_some_and(|d| now >= d) => {
                    expired.push((token, conn.shed));
                }
                ConnState::Streaming { done: false, .. }
                    if now.duration_since(conn.last_emit) >= HEARTBEAT_EVERY =>
                {
                    http::append_chunk(&mut conn.out, b"{\"event\":\"heartbeat\"}\n");
                    conn.last_emit = now;
                    pulse.push(token);
                }
                _ => {}
            }
        }
        ServerMetrics::get()
            .connections_reclaimed
            .add((expired.len() + stalled.len()) as u64);
        let limit = self.state.max_connections;
        for (token, shed) in expired {
            // Sheds answer 503 even when the request never fully
            // arrived (mirroring the old bounded-read shed thread);
            // ordinary connections that sat on a partial request get
            // the honest timeout status.
            let body = if shed {
                http::json_bytes(
                    503,
                    "Service Unavailable",
                    &json!({"error": format!("connection limit {limit} reached, retry later")}),
                )
            } else {
                http::json_bytes(
                    408,
                    "Request Timeout",
                    &json!({"error": format!("request not received within {:?}", self.request_timeout)}),
                )
            };
            self.respond(token, body);
        }
        for token in pulse {
            self.flush(token);
        }
        for token in stalled {
            self.close(token);
        }
    }

    /// Stop accepting and cut connections that have no response owed
    /// (still reading). Streams and in-flight handlers get the grace
    /// period to emit their terminal events and flush.
    fn begin_shutdown(&mut self) {
        let _ = self.poller.delete(self.listener.as_raw_fd());
        let reading: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Reading(_)))
            .map(|(&t, _)| t)
            .collect();
        for token in reading {
            self.close(token);
        }
    }

    /// The single exit path for a connection: deregister, drop (which
    /// closes the socket) and decrement the gauge — exactly once,
    /// guarded by the map removal.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // No epoll_ctl(DEL): closing the only fd referencing the
            // socket deregisters it implicitly, and this path runs
            // once per connection served.
            drop(conn);
            self.state.active_connections.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_rolled_point_line_matches_the_tree_serializer() {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "fmt"
            machines = ["thinkie"]
            kernels = ["asm"]

            [[workloads]]
            app = "gromacs"
            steps = [10000]
            "#,
        )
        .unwrap();
        let points = synapse_campaign::expand(&spec);
        let cache = ResultCache::in_memory();
        let (results, _) =
            synapse_campaign::runner::run_points(&points, &cache, &RunConfig::default()).unwrap();
        for (i, result) in results.iter().enumerate() {
            let tree = ndjson(&json!({
                "event": "point",
                "index": result.point.index,
                "label": result.point.label(),
                "fingerprint": result.fingerprint,
                "tx": result.tx,
                "app_tx": result.app_tx,
                "error_pct": result.error_pct(),
                "cached": i % 2 == 0,
                "done": i + 1,
                "total": results.len(),
            }));
            let fast = point_event_line(result, i % 2 == 0, i + 1, results.len());
            assert_eq!(fast, tree, "hot-path serializer must be byte-identical");
        }
    }
}
