//! The `synapse serve` daemon: TCP accept loop, request routing, the
//! job queue worker pool and the process-wide result cache.
//!
//! Concurrency model: a thread per connection at the front (requests
//! are short-lived except event streams, which tie up their thread for
//! the life of the watched job), and a fixed pool of queue workers at
//! the back, each draining one job at a time through
//! [`synapse_campaign::run_campaign_on`]. All jobs share one
//! [`ResultCache`] handle — the sharded store is lock-protected per
//! shard group, so concurrent sweeps memoize into (and hit from) the
//! same cache, which is the point of keeping the process alive.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde_json::json;
use synapse_campaign::{
    expand_range, run_campaign_on, CampaignEngine, CampaignError, CampaignSpec, PointEvent,
    ResultCache, RunConfig,
};

use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::job::{Job, JobKind, JobState, LeaseRequest};
use crate::{ClusterBackend, ServerError};

/// How often a long-lived sweep emits an aggregate `snapshot` event
/// into its stream, in landed points.
pub const SNAPSHOT_EVERY: usize = 32;

/// Terminal jobs retained in the table (live jobs never count): the
/// daemon serves status/report/replay for this many finished
/// campaigns, then forgets the oldest — a long-lived process must not
/// accumulate event buffers without bound.
pub const MAX_RETAINED_TERMINAL_JOBS: usize = 64;

/// Terminal *lease* jobs retained. Lease rings are unbounded (their
/// point events are the results a coordinator merges) and nobody
/// replays a drained lease, so they evict far sooner than campaigns —
/// a worker serving thousands of big leases must not retain 64 full
/// result sets.
pub const MAX_RETAINED_TERMINAL_LEASES: usize = 2;

/// Read/write timeouts on accepted connections. Requests are parsed
/// well inside this; for event streams it bounds how long a stalled
/// (non-reading) watcher can pin its connection thread, so shutdown's
/// scope join cannot hang on a dead peer.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// How long an event stream may stay silent before a `heartbeat`
/// event is pulsed, keeping client read-timeouts satisfiable while a
/// job sits queued behind a long sweep.
const HEARTBEAT_EVERY: Duration = Duration::from_secs(10);

/// Serialize one event document to its NDJSON line.
fn ndjson(value: &serde_json::Value) -> String {
    serde_json::to_string(value).expect("event serializes")
}

/// Default cap on concurrently-served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// Default per-job event-ring retention (NDJSON lines).
pub const DEFAULT_EVENT_BUFFER: usize = 8192;

/// How the daemon is set up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (port 0 for ephemeral).
    pub addr: String,
    /// Result-cache directory (`None` ⇒ in-memory for this process).
    pub cache_dir: Option<PathBuf>,
    /// Queue workers = jobs sweeping concurrently.
    pub queue_workers: usize,
    /// Worker threads *per job's* sweep (0 ⇒ auto).
    pub job_workers: usize,
    /// Concurrent-connection cap: requests past it are shed with `503`
    /// instead of spawning unbounded threads (0 ⇒ unlimited).
    pub max_connections: usize,
    /// Event lines retained per job for replay; older lines truncate
    /// with a `truncated` marker (0 ⇒ unbounded — test use only).
    pub event_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            cache_dir: None,
            queue_workers: 2,
            job_workers: 0,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            event_buffer: DEFAULT_EVENT_BUFFER,
        }
    }
}

/// Shared server state: the job table, the submission queue and the
/// process-wide cache handle.
pub(crate) struct ServerState {
    pub(crate) cache: ResultCache,
    jobs: Mutex<Vec<Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_ready: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    job_workers: usize,
    event_buffer: usize,
    max_connections: usize,
    active_connections: AtomicUsize,
    /// Distributed-execution backend (coordinator mode); `None` for a
    /// plain worker/standalone server.
    cluster: Option<Arc<dyn ClusterBackend>>,
    started: Instant,
}

impl ServerState {
    fn job(&self, public_id: &str) -> Option<Arc<Job>> {
        let id: u64 = public_id.strip_prefix('j')?.parse().ok()?;
        self.jobs
            .lock()
            .expect("jobs lock")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    fn submit(&self, spec: CampaignSpec, total: usize, kind: JobKind) -> Arc<Job> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Lease rings are never truncated: their point events *are*
        // the results the coordinator merges, so dropping any would
        // lose grid points for good. The buffer is bounded by the
        // lease's own size (the coordinator controls that), and the
        // job is evicted with the terminal-job retention like any
        // other.
        let event_cap = match kind {
            JobKind::Lease { .. } => 0,
            _ => self.event_buffer,
        };
        let job = Arc::new(Job::new(id, spec, total, self.job_workers, kind, event_cap));
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            jobs.push(job.clone());
            // Bounded retention: the daemon must not grow without limit
            // across weeks of submissions. Oldest *terminal* jobs fall
            // off first (attached streamers keep theirs alive through
            // the Arc until they hang up); live jobs are never evicted.
            // Finished leases go first and fastest — their rings hold
            // full per-point results.
            let is_lease = |j: &Arc<Job>| matches!(j.kind, JobKind::Lease { .. });
            let mut terminal_leases = jobs
                .iter()
                .filter(|j| is_lease(j) && j.state().is_terminal())
                .count();
            jobs.retain(|j| {
                if terminal_leases > MAX_RETAINED_TERMINAL_LEASES
                    && is_lease(j)
                    && j.state().is_terminal()
                {
                    terminal_leases -= 1;
                    false
                } else {
                    true
                }
            });
            let mut terminal = jobs.iter().filter(|j| j.state().is_terminal()).count();
            jobs.retain(|j| {
                if terminal > MAX_RETAINED_TERMINAL_JOBS && j.state().is_terminal() {
                    terminal -= 1;
                    false
                } else {
                    true
                }
            });
        }
        self.queue
            .lock()
            .expect("queue lock")
            .push_back(job.clone());
        self.queue_ready.notify_one();
        // A shutdown can land between the handler's early check and
        // the insertions above — after the shutdown sweep settled the
        // job table. Nobody would ever settle this job, leaving its
        // event stream open forever; settle it here.
        if self.shutting_down() {
            job.settle_if_queued();
        }
        job
    }

    /// Block until a job is queued or shutdown is requested.
    fn next_job(&self) -> Option<Arc<Job>> {
        let mut queue = self.queue.lock().expect("queue lock");
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            queue = self
                .queue_ready
                .wait_timeout(queue, Duration::from_millis(200))
                .expect("queue lock")
                .0;
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Stop in-flight sweeps; settle jobs no queue worker will ever
        // reach, so their event streams terminate instead of leaving
        // streamers (and the connection-thread join) blocked forever.
        for job in self.jobs.lock().expect("jobs lock").iter() {
            job.settle_if_queued();
        }
        self.queue_ready.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Current status document of one job.
    fn status_json(&self, job: &Job) -> serde_json::Value {
        job.with_progress(|p| {
            let hit_rate = if p.done > 0 {
                p.cache_hits as f64 / p.done as f64
            } else {
                0.0
            };
            let mut doc = json!({
                "id": job.public_id(),
                "name": job.spec.name,
                "status": p.state.name(),
                "total": job.total,
                "done": p.done,
                "cache_hits": p.cache_hits,
                "cache_hit_rate": hit_rate,
            });
            if let serde_json::Value::Object(obj) = &mut doc {
                if let Some(stats) = &p.stats {
                    obj.insert("simulated".into(), json!(stats.simulated));
                    obj.insert("wall_secs".into(), json!(stats.wall_secs));
                    obj.insert("points_per_sec".into(), json!(stats.points_per_sec()));
                }
                if let Some(error) = &p.error {
                    obj.insert("error".into(), json!(error));
                }
            }
            doc
        })
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
}

/// Remote control for a running [`Server`] (tests, embedders).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Ask the accept loop, queue workers and in-flight sweeps to
    /// stop. Returns once the request is registered (the `run()` call
    /// unblocks shortly after).
    pub fn shutdown(&self) {
        self.state.request_shutdown();
        // Poke the accept loop out of `accept()`.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

impl Server {
    /// Bind the listener and open (or create) the shared result cache.
    pub fn bind(config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::open_with_workers(dir, 0)?,
            None => ResultCache::in_memory(),
        };
        let state = Arc::new(ServerState {
            cache,
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            job_workers: config.job_workers,
            event_buffer: config.event_buffer,
            max_connections: config.max_connections,
            active_connections: AtomicUsize::new(0),
            cluster: None,
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// Attach a distributed-execution backend, turning this server
    /// into a cluster coordinator: `/cluster/*` endpoints come alive
    /// and `POST /campaigns?cluster=1` fans out through the backend.
    pub fn with_cluster(mut self, backend: Arc<dyn ClusterBackend>) -> Server {
        // The state Arc has not been shared yet (no handle, no run), so
        // the mutation is safe — enforce that by consuming self.
        Arc::get_mut(&mut self.state)
            .expect("with_cluster before handles exist")
            .cluster = Some(backend);
        self
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServerError> {
        Ok(self.listener.local_addr()?)
    }

    /// A remote-control handle (usable from other threads).
    pub fn handle(&self) -> Result<ServerHandle, ServerError> {
        Ok(ServerHandle {
            state: self.state.clone(),
            addr: self.listener.local_addr()?,
        })
    }

    /// Serve until [`ServerHandle::shutdown`] (or `POST /shutdown`).
    ///
    /// Blocks the calling thread: the accept loop runs here, queue
    /// workers and connection handlers on scoped threads behind it.
    pub fn run(self) -> Result<(), ServerError> {
        let Server {
            listener,
            state,
            config,
        } = self;
        std::thread::scope(|scope| {
            for worker in 0..config.queue_workers.max(1) {
                let state = &state;
                std::thread::Builder::new()
                    .name(format!("synapse-queue-{worker}"))
                    .spawn_scoped(scope, move || queue_worker(state))
                    .expect("spawn queue worker");
            }
            for conn in listener.incoming() {
                if state.shutting_down() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let state = &state;
                // Connection cap: shed with a 503 instead of growing
                // one thread per watcher without bound. Shedding still
                // reads the request first — answering before the
                // request is consumed makes the close RST the socket
                // and the client may never see the status — so a shed
                // occupies a short-lived *counted* thread; past twice
                // the cap the connection is dropped cold.
                let active = state.active_connections.fetch_add(1, Ordering::AcqRel) + 1;
                let over = state.max_connections > 0 && active > state.max_connections;
                if over && active > state.max_connections.saturating_mul(2) {
                    state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                let spawned = std::thread::Builder::new()
                    .name(if over { "synapse-shed" } else { "synapse-conn" }.into())
                    .spawn_scoped(scope, move || {
                        if over {
                            shed_connection(stream, state.max_connections);
                        } else {
                            handle_connection(stream, state);
                        }
                        state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    // Out of threads: shed the connection instead of
                    // dying.
                    state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
            }
            // Scope join: waits for queue workers (which exit on the
            // shutdown flag) and any outstanding connections (whose
            // streams end once their jobs cancel).
        });
        state.cache.persist()?;
        Ok(())
    }
}

/// One queue worker: take jobs until shutdown.
fn queue_worker(state: &ServerState) {
    while let Some(job) = state.next_job() {
        run_job(state, &job);
    }
}

/// Sweep one job, publishing NDJSON events as points land.
fn run_job(state: &ServerState, job: &Arc<Job>) {
    if job.cancel.is_cancelled() {
        // Cancelled while still queued. DELETE (or shutdown) may have
        // settled it already — emit the terminal event only once.
        let already_settled = job.with_progress(|p| {
            if p.state.is_terminal() {
                true
            } else {
                p.state = JobState::Cancelled;
                false
            }
        });
        if !already_settled {
            job.push_event(
                ndjson(&json!({"event": "cancelled", "id": job.public_id(), "done": 0, "total": job.total})),
            );
            job.close_events();
        }
        return;
    }
    // A DELETE may settle the job between the check above and here;
    // transition to Running only from a non-terminal state, so a
    // settled job is never revived (and never re-streams `started`
    // into its closed event buffer).
    let proceed = job.with_progress(|p| {
        if p.state.is_terminal() {
            false
        } else {
            p.state = JobState::Running;
            true
        }
    });
    if !proceed {
        return;
    }
    match job.kind {
        JobKind::Sweep => run_sweep_job(state, job),
        JobKind::Lease { start, end } => run_lease_job(state, job, start, end),
        JobKind::Distributed => run_distributed_job(state, job),
    }
    job.close_events();
}

/// The progress observer shared by local sweeps and distributed runs:
/// per-point NDJSON events with running counters and periodic
/// aggregate snapshots.
fn point_observer(job: &Arc<Job>) -> impl Fn(PointEvent) + Sync + '_ {
    move |event: PointEvent| match event {
        PointEvent::Started { total } => {
            job.push_event(ndjson(&json!({
                "event": "started",
                "id": job.public_id(),
                "name": job.spec.name,
                "total": total,
            })));
        }
        PointEvent::PointDone {
            result,
            cached,
            done,
            total,
        } => {
            let abs_err_sum = job.with_progress(|p| {
                p.done = done;
                p.cache_hits += usize::from(cached);
                p.abs_err_sum += result.error_pct().abs();
                p.abs_err_sum
            });
            job.push_event(ndjson(&json!({
                "event": "point",
                "index": result.point.index,
                "label": result.point.label(),
                "fingerprint": result.fingerprint,
                "tx": result.tx,
                "app_tx": result.app_tx,
                "error_pct": result.error_pct(),
                "cached": cached,
                "done": done,
                "total": total,
            })));
            if done % SNAPSHOT_EVERY == 0 && done < total {
                let (cache_hits, simulated) =
                    job.with_progress(|p| (p.cache_hits, p.done - p.cache_hits));
                job.push_event(ndjson(&json!({
                    "event": "snapshot",
                    "done": done,
                    "total": total,
                    "cache_hits": cache_hits,
                    "simulated": simulated,
                    "mean_abs_error_pct": abs_err_sum / done as f64,
                })));
            }
        }
        // Terminal events are published below, where the report and
        // final state are in hand.
        PointEvent::Finished { .. } | PointEvent::Cancelled { .. } => {}
    }
}

/// Publish a finished (or failed) outcome: final state, report, and
/// exactly one terminal event.
fn publish_outcome(
    job: &Arc<Job>,
    outcome: Result<synapse_campaign::CampaignOutcome, CampaignError>,
) {
    match outcome {
        Ok(outcome) => {
            let stats = outcome.stats;
            job.set_report(outcome.report);
            job.with_progress(|p| {
                p.state = JobState::Completed;
                p.stats = Some(stats);
            });
            job.push_event(ndjson(&json!({
                "event": "completed",
                "id": job.public_id(),
                "name": job.spec.name,
                "points": stats.points,
                "simulated": stats.simulated,
                "cache_hits": stats.cache_hits,
                "cache_hit_rate": stats.hit_rate(),
                "wall_secs": stats.wall_secs,
                "points_per_sec": stats.points_per_sec(),
            })));
        }
        Err(CampaignError::Cancelled { done, total }) => {
            job.with_progress(|p| p.state = JobState::Cancelled);
            // A DELETE racing the queue pop may have settled the job
            // (and closed its stream) already; don't emit twice.
            if !job.events_closed() {
                job.push_event(ndjson(&json!({
                    "event": "cancelled",
                    "id": job.public_id(),
                    "done": done,
                    "total": total,
                })));
            }
        }
        Err(e) => {
            let message = e.to_string();
            job.with_progress(|p| {
                p.state = JobState::Failed;
                p.error = Some(message.clone());
            });
            job.push_event(ndjson(
                &json!({"event": "failed", "id": job.public_id(), "error": message}),
            ));
        }
    }
}

/// Sweep one full-grid job in this process.
fn run_sweep_job(state: &ServerState, job: &Arc<Job>) {
    let config = RunConfig {
        workers: job.workers,
    };
    let observer = point_observer(job);
    let outcome = run_campaign_on(&job.spec, &config, &state.cache, &observer, &job.cancel);
    publish_outcome(job, outcome);
}

/// Fan one distributed job out through the cluster backend.
fn run_distributed_job(state: &ServerState, job: &Arc<Job>) {
    let Some(backend) = &state.cluster else {
        // Guarded at submit time; a job can only get here if the
        // backend vanished, which cannot happen — but fail loudly
        // rather than panic a queue worker.
        publish_outcome(
            job,
            Err(CampaignError::Cluster(
                "this server has no cluster backend".into(),
            )),
        );
        return;
    };
    let observer = point_observer(job);
    let outcome = backend.run_distributed(&job.spec, &state.cache, &observer, &job.cancel);
    publish_outcome(job, outcome);
}

/// Sweep one lease (a contiguous slice of the grid) on behalf of a
/// coordinator: point events carry the full serialized result, and the
/// terminal event reports lease-relative counters. No report is
/// assembled — merging is the coordinator's job.
fn run_lease_job(state: &ServerState, job: &Arc<Job>, start: usize, end: usize) {
    // Materialize only the leased slice (points keep their global
    // indices) — a worker serving 8 leases of a huge grid must not
    // expand the whole grid 8 times.
    let points = expand_range(&job.spec, start, end);
    let slice = points.as_slice();
    let config = RunConfig {
        workers: job.workers,
    };
    let observer = |event: PointEvent| match event {
        PointEvent::Started { total } => {
            job.push_event(ndjson(&json!({
                "event": "started",
                "id": job.public_id(),
                "name": job.spec.name,
                "lease": {"start": start, "end": end},
                "total": total,
            })));
        }
        PointEvent::PointDone {
            result,
            cached,
            done,
            total,
        } => {
            job.with_progress(|p| {
                p.done = done;
                p.cache_hits += usize::from(cached);
            });
            job.push_event(ndjson(&json!({
                "event": "point",
                "index": result.point.index,
                "cached": cached,
                "done": done,
                "total": total,
                // The coordinator reconstructs PointResult from this
                // field; f64s round-trip exactly through the JSON
                // layer, so merged reports stay byte-stable.
                "result": serde_json::to_value(&*result).expect("result serializes"),
            })));
        }
        PointEvent::Finished { .. } | PointEvent::Cancelled { .. } => {}
    };
    let engine = CampaignEngine::new(slice, &state.cache, &config);
    let outcome = engine.run(&observer, &job.cancel);
    // Landed points must survive the process for the shared cache dir.
    if let Err(e) = state.cache.persist() {
        publish_outcome(job, Err(e));
        return;
    }
    match outcome {
        Ok((_, stats)) => {
            job.with_progress(|p| {
                p.state = JobState::Completed;
                p.stats = Some(stats);
            });
            job.push_event(ndjson(&json!({
                "event": "completed",
                "id": job.public_id(),
                "name": job.spec.name,
                "lease": {"start": start, "end": end},
                "points": stats.points,
                "simulated": stats.simulated,
                "cache_hits": stats.cache_hits,
                "cache_hit_rate": stats.hit_rate(),
                "wall_secs": stats.wall_secs,
            })));
        }
        Err(e) => publish_outcome(job, Err(e)),
    }
}

/// Refuse one over-limit connection: consume its request (bounded by
/// the parser's size caps and a short timeout), answer `503`, close.
fn shed_connection(stream: TcpStream, limit: usize) {
    let best_effort = (|| -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let _ = http::read_request(&mut reader);
        http::write_json(
            &mut writer,
            503,
            "Service Unavailable",
            &json!({"error": format!("connection limit {limit} reached, retry later")}),
        )
    })();
    let _ = best_effort;
}

/// Serve one connection: parse a request, route it, close.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let peer_closed_is_fine = (|| -> std::io::Result<()> {
        // Bound both directions: a client that connects and never
        // sends, or a watcher that stops reading its stream, must not
        // pin this thread forever (shutdown joins every connection
        // thread).
        stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
        stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        match http::read_request(&mut reader) {
            Ok(request) => route(&request, &mut writer, state),
            Err(HttpError::Closed) => Ok(()), // health probes, port scans
            Err(e) => {
                let (status, reason) = e.status();
                http::write_json(
                    &mut writer,
                    status,
                    reason,
                    &json!({"error": e.to_string()}),
                )
            }
        }
    })();
    // A client hanging up mid-stream is routine, not a server error.
    let _ = peer_closed_is_fine;
}

/// Dispatch one parsed request.
fn route(request: &Request, out: &mut TcpStream, state: &ServerState) -> std::io::Result<()> {
    let path = request.path().trim_end_matches('/').to_string();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (jobs, queued, running) = {
                let jobs = state.jobs.lock().expect("jobs lock");
                let queued = jobs
                    .iter()
                    .filter(|j| j.state() == JobState::Queued)
                    .count();
                let running = jobs
                    .iter()
                    .filter(|j| j.state() == JobState::Running)
                    .count();
                (jobs.len(), queued, running)
            };
            http::write_json(
                out,
                200,
                "OK",
                &json!({
                    "status": "ok",
                    "uptime_secs": state.started.elapsed().as_secs_f64(),
                    "jobs": jobs,
                    "queued": queued,
                    "running": running,
                    "active_connections": state.active_connections.load(Ordering::Relaxed),
                    "max_connections": state.max_connections,
                    "coordinator": state.cluster.is_some(),
                }),
            )
        }
        ("GET", ["store", "stats"]) => {
            let stats = state.cache.stats();
            http::write_json(
                out,
                200,
                "OK",
                &json!({
                    "results": stats.docs,
                    "data_files": stats.data_files,
                    "occupied_shards": stats.occupied_shards,
                    "shard_count": synapse_store::SHARD_COUNT,
                    "dirty_shards": stats.dirty_shards,
                    "bytes_on_disk": stats.bytes_on_disk,
                    "engine": stats.engine,
                    // Cross-process cache-sharing observability: how
                    // often this process's saves collided with another
                    // process on the shared directory, and how many of
                    // their results were merged back in.
                    "lock_acquisitions": stats.lock_acquisitions,
                    "lock_contention": stats.lock_contention,
                    "reconciled_docs": stats.reconciled_docs,
                }),
            )
        }
        ("POST", ["campaigns"]) => submit_campaign(request, out, state),
        ("POST", ["leases"]) => submit_lease(request, out, state),
        (_, ["cluster", rest @ ..]) => cluster_route(request, rest, out, state),
        ("GET", ["campaigns"]) => {
            let listing: Vec<serde_json::Value> = state
                .jobs
                .lock()
                .expect("jobs lock")
                .iter()
                .map(|j| state.status_json(j))
                .collect();
            http::write_json(out, 200, "OK", &json!({"campaigns": listing}))
        }
        ("GET", ["campaigns", id]) => match state.job(id) {
            Some(job) => http::write_json(out, 200, "OK", &state.status_json(&job)),
            None => not_found(out, id),
        },
        ("GET", ["campaigns", id, "report"]) => match state.job(id) {
            Some(job) => match job.report_json() {
                Some(body) => {
                    http::write_response(out, 200, "OK", "application/json", body.as_bytes())
                }
                None => http::write_json(
                    out,
                    409,
                    "Conflict",
                    &json!({
                        "error": format!("campaign {id} is {}, report not available",
                                          job.state().name()),
                    }),
                ),
            },
            None => not_found(out, id),
        },
        ("GET", ["campaigns", id, "events"]) => match state.job(id) {
            Some(job) => stream_events(&job, out),
            None => not_found(out, id),
        },
        ("DELETE", ["campaigns", id]) => match state.job(id) {
            Some(job) => {
                // A queued job never reaches a worker's cancelled
                // check promptly; settle it here so DELETE is
                // immediate for work that never started. (The queue
                // worker re-checks and skips settled jobs; a running
                // job just gets its token cancelled.)
                job.settle_if_queued();
                http::write_json(out, 200, "OK", &state.status_json(&job))
            }
            None => not_found(out, id),
        },
        ("POST", ["shutdown"]) => {
            let reply = http::write_json(out, 200, "OK", &json!({"status": "shutting down"}));
            state.request_shutdown();
            // Unblock our own accept loop.
            if let Ok(addr) = out.local_addr() {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            }
            reply
        }
        (_, ["healthz" | "shutdown" | "leases"])
        | (_, ["store", "stats"])
        | (_, ["campaigns", ..]) => http::write_json(
            out,
            405,
            "Method Not Allowed",
            &json!({"error": format!("{} not allowed on {}", request.method, path)}),
        ),
        _ => http::write_json(
            out,
            404,
            "Not Found",
            &json!({"error": format!("no such endpoint {path:?}")}),
        ),
    }
}

fn not_found(out: &mut TcpStream, id: &str) -> std::io::Result<()> {
    http::write_json(
        out,
        404,
        "Not Found",
        &json!({"error": format!("no such campaign {id:?}")}),
    )
}

/// `POST /campaigns[?cluster=1]`: parse a TOML or JSON spec, enqueue a
/// job — locally swept, or distributed across the cluster when the
/// flag is set (coordinator servers only).
fn submit_campaign(
    request: &Request,
    out: &mut TcpStream,
    state: &ServerState,
) -> std::io::Result<()> {
    if state.shutting_down() {
        return http::write_json(
            out,
            503,
            "Service Unavailable",
            &json!({"error": "server is shutting down"}),
        );
    }
    let distributed = request.query_flag("cluster");
    if distributed && state.cluster.is_none() {
        return http::write_json(
            out,
            400,
            "Bad Request",
            &json!({"error": "this server is not a cluster coordinator (start it with `synapse cluster start`)"}),
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return http::write_json(
            out,
            400,
            "Bad Request",
            &json!({"error": "spec body is not UTF-8"}),
        );
    };
    // Dispatch on declared content type, falling back to sniffing:
    // JSON specs start with '{'.
    let content_type = request.header("content-type").unwrap_or("");
    let parsed = if content_type.contains("json") || text.trim_start().starts_with('{') {
        CampaignSpec::from_json(text)
    } else {
        CampaignSpec::from_toml(text)
    };
    match parsed {
        Ok(spec) => {
            let kind = if distributed {
                JobKind::Distributed
            } else {
                JobKind::Sweep
            };
            let total = spec.point_count();
            let job = state.submit(spec, total, kind);
            http::write_json(
                out,
                202,
                "Accepted",
                &json!({
                    "id": job.public_id(),
                    "name": job.spec.name,
                    "status": job.state().name(),
                    "points": job.total,
                    "distributed": distributed,
                }),
            )
        }
        Err(e) => http::write_json(
            out,
            400,
            "Bad Request",
            &json!({"error": format!("invalid campaign spec: {e}")}),
        ),
    }
}

/// `POST /leases`: accept a lease (full spec + grid index range) from
/// a cluster coordinator and enqueue it like any other job. Events
/// stream through the usual `GET /campaigns/<id>/events`.
fn submit_lease(
    request: &Request,
    out: &mut TcpStream,
    state: &ServerState,
) -> std::io::Result<()> {
    if state.shutting_down() {
        return http::write_json(
            out,
            503,
            "Service Unavailable",
            &json!({"error": "server is shutting down"}),
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return http::write_json(
            out,
            400,
            "Bad Request",
            &json!({"error": "lease body is not UTF-8"}),
        );
    };
    let lease: LeaseRequest = match serde_json::from_str(text) {
        Ok(lease) => lease,
        Err(e) => {
            return http::write_json(
                out,
                400,
                "Bad Request",
                &json!({"error": format!("invalid lease request: {e}")}),
            )
        }
    };
    // Re-validate after the hop; the range must fit the grid.
    let spec = match lease.spec.validated() {
        Ok(spec) => spec,
        Err(e) => {
            return http::write_json(
                out,
                400,
                "Bad Request",
                &json!({"error": format!("invalid campaign spec: {e}")}),
            )
        }
    };
    let total = spec.point_count();
    if lease.start >= lease.end || lease.end > total {
        return http::write_json(
            out,
            400,
            "Bad Request",
            &json!({
                "error": format!(
                    "lease range {}..{} does not fit the {total}-point grid",
                    lease.start, lease.end
                ),
            }),
        );
    }
    let job = state.submit(
        spec,
        lease.end - lease.start,
        JobKind::Lease {
            start: lease.start,
            end: lease.end,
        },
    );
    http::write_json(
        out,
        202,
        "Accepted",
        &json!({
            "id": job.public_id(),
            "name": job.spec.name,
            "status": job.state().name(),
            "points": job.total,
            "lease": {"start": lease.start, "end": lease.end},
            "grid_points": total,
        }),
    )
}

/// `/cluster/*`: the coordinator's worker registry. 404s (with a
/// pointer) on servers without a cluster backend.
fn cluster_route(
    request: &Request,
    rest: &[&str],
    out: &mut TcpStream,
    state: &ServerState,
) -> std::io::Result<()> {
    let Some(backend) = &state.cluster else {
        return http::write_json(
            out,
            404,
            "Not Found",
            &json!({"error": "this server is not a cluster coordinator (start it with `synapse cluster start`)"}),
        );
    };
    match (request.method.as_str(), rest) {
        ("GET", ["status"]) => http::write_json(out, 200, "OK", &backend.status()),
        ("POST", ["workers"]) => {
            // Accept `{"addr": "host:port"}` or a bare address body.
            let text = std::str::from_utf8(&request.body).unwrap_or("").trim();
            let addr = serde_json::from_str::<serde_json::Value>(text)
                .ok()
                .and_then(|v| v["addr"].as_str().map(str::to_string))
                .or_else(|| (!text.is_empty() && !text.starts_with('{')).then(|| text.to_string()));
            match addr {
                Some(addr) => {
                    http::write_json(out, 201, "Created", &backend.register_worker(&addr))
                }
                None => http::write_json(
                    out,
                    400,
                    "Bad Request",
                    &json!({"error": "worker registration needs {\"addr\": \"host:port\"}"}),
                ),
            }
        }
        ("DELETE", ["workers", id]) => match backend.deregister_worker(id) {
            Some(doc) => http::write_json(out, 200, "OK", &doc),
            None => http::write_json(
                out,
                404,
                "Not Found",
                &json!({"error": format!("no such worker {id:?}")}),
            ),
        },
        ("POST", ["workers", id, "heartbeat"]) => match backend.heartbeat(id) {
            Some(doc) => http::write_json(out, 200, "OK", &doc),
            None => http::write_json(
                out,
                404,
                "Not Found",
                &json!({"error": format!("no such worker {id:?}")}),
            ),
        },
        (_, ["status"]) | (_, ["workers", ..]) => http::write_json(
            out,
            405,
            "Method Not Allowed",
            &json!({"error": format!("{} not allowed on /cluster/{}", request.method, rest.join("/"))}),
        ),
        _ => http::write_json(
            out,
            404,
            "Not Found",
            &json!({"error": format!("no such cluster endpoint {:?}", rest.join("/"))}),
        ),
    }
}

/// `GET /campaigns/<id>/events`: replay the buffered NDJSON lines,
/// then follow live until the job reaches a terminal state.
fn stream_events(job: &Arc<Job>, out: &mut TcpStream) -> std::io::Result<()> {
    let mut writer = ChunkedWriter::start(&mut *out, "application/x-ndjson")?;
    let mut cursor = 0usize;
    let mut last_write = Instant::now();
    loop {
        let (next, lines, closed) = job.events_since(cursor, Duration::from_millis(200));
        cursor = next;
        for line in &lines {
            let mut framed = Vec::with_capacity(line.len() + 1);
            framed.extend_from_slice(line.as_bytes());
            framed.push(b'\n');
            // A send failure means the watcher hung up; stop quietly.
            writer.chunk(&framed)?;
        }
        if !lines.is_empty() {
            last_write = Instant::now();
        }
        if closed && lines.is_empty() {
            break;
        }
        // A legitimately quiet stream (job queued behind a long sweep)
        // still pulses, so clients can bound their read timeouts and
        // detect a dead server; the client filters these out.
        if last_write.elapsed() >= HEARTBEAT_EVERY {
            writer.chunk(b"{\"event\":\"heartbeat\"}\n")?;
            last_write = Instant::now();
        }
        // On shutdown the job is cancelled and settled elsewhere; the
        // next drain pass picks up its terminal event and `closed`
        // ends the loop — no special case needed here.
    }
    writer.finish()
}
