//! A small blocking client for the `synapse serve` protocol — the
//! other half of the hand-rolled HTTP layer, used by the `synapse
//! campaign submit|watch|status|cancel` CLI subcommands, the e2e tests
//! and the serve-throughput benchmark.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde_json::Value;

use crate::ServerError;

/// Connection timeout for every request.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Socket read/write timeout for plain request/response round trips.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(60);

/// Default silence threshold on an *established* event stream before
/// the server is presumed dead: the server pulses a heartbeat every
/// [`crate::HEARTBEAT_EVERY`] (10 s) even on a quiet stream, so more
/// than two missed heartbeats (plus a second of slack) means the
/// worker died or the network partitioned — not that the job is slow.
/// Far tighter than the old flat 60 s socket timeout, which let
/// `campaign watch` and coordinator lease watches hang almost a
/// minute on a dead worker.
pub const STREAM_SILENCE_TIMEOUT: Duration =
    Duration::from_secs(2 * crate::server::HEARTBEAT_EVERY.as_secs() + 1);

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Read timeout on established event streams (dead-server
    /// detection); [`STREAM_SILENCE_TIMEOUT`] unless overridden.
    stream_silence: Duration,
    /// Read/write timeout on plain request/response round trips.
    socket_timeout: Duration,
    /// Causality id sent as `X-Synapse-Trace` on every request — how a
    /// cluster coordinator stamps the lease traffic of a recorded
    /// campaign so workers echo it and the recorder can attribute
    /// per-endpoint spans.
    trace: Option<String>,
}

/// A parsed response: status code plus body text (chunked bodies are
/// de-framed transparently).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body as text.
    pub body: String,
}

impl Response {
    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Value, ServerError> {
        serde_json::from_str(&self.body)
            .map_err(|e| ServerError::Protocol(format!("non-JSON body: {e}")))
    }

    /// Error out unless the status is 2xx.
    fn ok(self) -> Result<Response, ServerError> {
        if (200..300).contains(&self.status) {
            Ok(self)
        } else {
            let detail = self
                .json()
                .ok()
                .and_then(|v| v["error"].as_str().map(str::to_string))
                .unwrap_or_else(|| self.body.trim().to_string());
            Err(ServerError::Status(self.status, detail))
        }
    }
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            stream_silence: STREAM_SILENCE_TIMEOUT,
            socket_timeout: SOCKET_TIMEOUT,
            trace: None,
        }
    }

    /// Attach a causality id: every subsequent request carries it as
    /// the `X-Synapse-Trace` header.
    pub fn with_trace(mut self, trace_id: impl Into<String>) -> Client {
        self.trace = Some(trace_id.into());
        self
    }

    /// Override the plain request/response socket timeout. A cluster
    /// coordinator probing a possibly-frozen worker must not wait the
    /// generous default on a connection the peer's kernel accepted
    /// but the stopped process will never answer.
    pub fn with_socket_timeout(mut self, timeout: Duration) -> Client {
        self.socket_timeout = timeout;
        self
    }

    /// Override the event-stream silence threshold (dead-server
    /// detection). Must exceed the server's heartbeat interval or
    /// healthy quiet streams read as dead; tests use tiny values
    /// against deliberately-mute servers.
    pub fn with_stream_silence(mut self, threshold: Duration) -> Client {
        self.stream_silence = threshold;
        self
    }

    fn connect(&self) -> Result<TcpStream, ServerError> {
        // Resolve like TcpStream::connect does, so `localhost:8787`
        // and real hostnames work, not just literal IP:port.
        use std::net::ToSocketAddrs;
        let addrs: Vec<_> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ServerError::Protocol(format!("bad server address {:?}: {e}", self.addr)))?
            .collect();
        let mut last_err = None;
        for addr in &addrs {
            match TcpStream::connect_timeout(addr, CONNECT_TIMEOUT) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.socket_timeout))?;
                    stream.set_write_timeout(Some(self.socket_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(match last_err {
            Some(e) => ServerError::Io(e),
            None => ServerError::Protocol(format!(
                "server address {:?} resolved to nothing",
                self.addr
            )),
        })
    }

    fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<BufReader<TcpStream>, ServerError> {
        let mut stream = self.connect()?;
        let body = body.unwrap_or("");
        let trace_header = match &self.trace {
            Some(id) => format!("X-Synapse-Trace: {id}\r\n"),
            None => String::new(),
        };
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        )?;
        stream.flush()?;
        Ok(BufReader::new(stream))
    }

    /// Read the status line + headers; returns (status, chunked).
    fn read_head(reader: &mut BufReader<TcpStream>) -> Result<(u16, bool), ServerError> {
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ServerError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut chunked = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if line.to_ascii_lowercase().starts_with("transfer-encoding:")
                && line.to_ascii_lowercase().contains("chunked")
            {
                chunked = true;
            }
        }
        Ok((status, chunked))
    }

    /// One full request/response round trip.
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ServerError> {
        let mut reader = self.send(method, path, body)?;
        let (status, chunked) = Self::read_head(&mut reader)?;
        let mut body = String::new();
        if chunked {
            let mut on_line = |line: &str| {
                body.push_str(line);
                body.push('\n');
                true
            };
            Self::drain_chunked(&mut reader, &mut on_line)?;
        } else {
            reader.read_to_string(&mut body)?;
        }
        Ok(Response { status, body })
    }

    /// De-frame a chunked body, invoking `on_line` per complete line.
    /// `on_line` returning `false` aborts the drain (the connection is
    /// simply dropped — chunked streams need no clean goodbye).
    fn drain_chunked(
        reader: &mut BufReader<TcpStream>,
        on_line: &mut dyn FnMut(&str) -> bool,
    ) -> Result<(), ServerError> {
        let mut pending = String::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break; // abrupt close: surface what arrived
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ServerError::Protocol(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                let _ = reader.read_line(&mut String::new()); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            pending.push_str(
                std::str::from_utf8(&chunk)
                    .map_err(|_| ServerError::Protocol("non-UTF-8 chunk".into()))?,
            );
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                let line = line.trim_end();
                if !line.is_empty() && !on_line(line) {
                    return Ok(());
                }
            }
        }
        let rest = pending.trim_end();
        if !rest.is_empty() {
            on_line(rest);
        }
        Ok(())
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Value, ServerError> {
        self.request("GET", "/healthz", None)?.ok()?.json()
    }

    /// `GET /store/stats` — shape of the shared result cache.
    pub fn store_stats(&self) -> Result<Value, ServerError> {
        self.request("GET", "/store/stats", None)?.ok()?.json()
    }

    /// `GET /metrics` — the process-wide telemetry registry in
    /// Prometheus text exposition format (not JSON).
    pub fn metrics(&self) -> Result<String, ServerError> {
        Ok(self.request("GET", "/metrics", None)?.ok()?.body)
    }

    /// `POST /campaigns` with a TOML or JSON spec body. Returns the
    /// submit reply (`{"id": "j1", "points": N, ...}`).
    pub fn submit(&self, spec_text: &str) -> Result<Value, ServerError> {
        self.request("POST", "/campaigns", Some(spec_text))?
            .ok()?
            .json()
    }

    /// `POST /campaigns?watch=1`: submit AND stream on one connection.
    /// The server's first NDJSON line is the submit ack (returned
    /// alongside the terminal event); the job's event stream follows,
    /// delivered to `on_event` exactly like [`watch`](Client::watch).
    /// One round trip instead of two — the path `campaign submit
    /// --watch` and the serve benchmarks ride.
    pub fn submit_watch(
        &self,
        spec_text: &str,
        on_event: impl FnMut(&str) -> bool,
    ) -> Result<(Value, Value), ServerError> {
        self.submit_watch_on("/campaigns?watch=1", spec_text, on_event)
    }

    /// [`submit_watch`](Client::submit_watch) with cluster fan-out
    /// (`POST /campaigns?cluster=1&watch=1`) — the single-connection
    /// form of [`submit_distributed`](Client::submit_distributed).
    pub fn submit_watch_distributed(
        &self,
        spec_text: &str,
        on_event: impl FnMut(&str) -> bool,
    ) -> Result<(Value, Value), ServerError> {
        self.submit_watch_on("/campaigns?cluster=1&watch=1", spec_text, on_event)
    }

    fn submit_watch_on(
        &self,
        path: &str,
        spec_text: &str,
        on_event: impl FnMut(&str) -> bool,
    ) -> Result<(Value, Value), ServerError> {
        let mut reader = self.send("POST", path, Some(spec_text))?;
        let (status, chunked) = Self::read_head(&mut reader)?;
        if status != 200 {
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            let detail = serde_json::from_str::<Value>(&body)
                .ok()
                .and_then(|v| v["error"].as_str().map(str::to_string))
                .unwrap_or(body);
            return Err(ServerError::Status(status, detail));
        }
        if !chunked {
            return Err(ServerError::Protocol("event stream is not chunked".into()));
        }
        let mut ack: Option<Value> = None;
        let summary = self.drain_event_stream(
            &mut reader,
            "submit stream",
            false,
            Some(&mut ack),
            on_event,
        )?;
        let ack =
            ack.ok_or_else(|| ServerError::Protocol("stream carried no submit ack".into()))?;
        Ok((ack, summary))
    }

    /// `POST /campaigns?cluster=1` — submit for distributed fan-out
    /// across the coordinator's registered workers.
    pub fn submit_distributed(&self, spec_text: &str) -> Result<Value, ServerError> {
        self.request("POST", "/campaigns?cluster=1", Some(spec_text))?
            .ok()?
            .json()
    }

    /// `POST /campaigns?record=1` (plus `cluster=1` when `distributed`)
    /// — submit with a flight recorder attached; the ack carries the
    /// minted `trace` id.
    pub fn submit_recorded(
        &self,
        spec_text: &str,
        distributed: bool,
    ) -> Result<Value, ServerError> {
        let path = if distributed {
            "/campaigns?cluster=1&record=1"
        } else {
            "/campaigns?record=1"
        };
        self.request("POST", path, Some(spec_text))?.ok()?.json()
    }

    /// `GET /campaigns/<id>/trace` — the sealed flight-recorder trace
    /// of a finished recorded job, as raw NDJSON text.
    pub fn trace(&self, id: &str) -> Result<String, ServerError> {
        Ok(self
            .request("GET", &format!("/campaigns/{id}/trace"), None)?
            .ok()?
            .body)
    }

    /// `POST /leases` — offer this worker a lease (JSON
    /// [`crate::LeaseRequest`] body: full spec + grid index range).
    pub fn submit_lease(&self, lease_json: &str) -> Result<Value, ServerError> {
        self.request("POST", "/leases", Some(lease_json))?
            .ok()?
            .json()
    }

    /// `POST /cluster/workers` — register (or revive) a worker with a
    /// coordinator.
    pub fn register_worker(&self, worker_addr: &str) -> Result<Value, ServerError> {
        let body = serde_json::to_string(&serde_json::json!({"addr": worker_addr}))
            .expect("registration body serializes");
        self.request("POST", "/cluster/workers", Some(&body))?
            .ok()?
            .json()
    }

    /// `DELETE /cluster/workers/<id>` — remove a worker.
    pub fn deregister_worker(&self, id: &str) -> Result<Value, ServerError> {
        self.request("DELETE", &format!("/cluster/workers/{id}"), None)?
            .ok()?
            .json()
    }

    /// `POST /cluster/workers/<id>/heartbeat` — record liveness.
    pub fn heartbeat_worker(&self, id: &str) -> Result<Value, ServerError> {
        self.request("POST", &format!("/cluster/workers/{id}/heartbeat"), None)?
            .ok()?
            .json()
    }

    /// `GET /cluster/status` — the coordinator's registry document.
    pub fn cluster_status(&self) -> Result<Value, ServerError> {
        self.request("GET", "/cluster/status", None)?.ok()?.json()
    }

    /// `GET /campaigns` — status of every job.
    pub fn list(&self) -> Result<Value, ServerError> {
        self.request("GET", "/campaigns", None)?.ok()?.json()
    }

    /// `GET /campaigns/<id>` — one job's status document.
    pub fn status(&self, id: &str) -> Result<Value, ServerError> {
        self.request("GET", &format!("/campaigns/{id}"), None)?
            .ok()?
            .json()
    }

    /// `GET /campaigns/<id>/report` — the deterministic report of a
    /// completed job.
    pub fn report(&self, id: &str) -> Result<Value, ServerError> {
        self.request("GET", &format!("/campaigns/{id}/report"), None)?
            .ok()?
            .json()
    }

    /// `GET /campaigns/<id>/aggregates` — the job's live per-(axis,
    /// value) aggregate view, answerable mid-sweep. `axis` / `metric`
    /// narrow the slice list server-side (unknown names are a 400
    /// listing the valid ones).
    pub fn aggregates(
        &self,
        id: &str,
        axis: Option<&str>,
        metric: Option<&str>,
    ) -> Result<Value, ServerError> {
        let mut path = format!("/campaigns/{id}/aggregates");
        let mut sep = '?';
        if let Some(axis) = axis {
            path.push(sep);
            path.push_str("axis=");
            path.push_str(axis);
            sep = '&';
        }
        if let Some(metric) = metric {
            path.push(sep);
            path.push_str("metric=");
            path.push_str(metric);
        }
        self.request("GET", &path, None)?.ok()?.json()
    }

    /// `DELETE /campaigns/<id>` — request cooperative cancellation.
    pub fn cancel(&self, id: &str) -> Result<Value, ServerError> {
        self.request("DELETE", &format!("/campaigns/{id}"), None)?
            .ok()?
            .json()
    }

    /// `POST /shutdown` — ask the server to exit.
    pub fn shutdown(&self) -> Result<Value, ServerError> {
        self.request("POST", "/shutdown", None)?.ok()?.json()
    }

    /// Drain an established chunked NDJSON event stream — THE single
    /// implementation of the stream-consumption rules, shared by
    /// `watch` and `submit_watch`: heartbeat filtering (optionally
    /// forwarded as keepalives), last-line tracking (parsed once at
    /// the end — per-line parsing was the biggest client-side cost on
    /// warm sweeps), and mapping read-timeout silence to the
    /// retriable dead-server disconnect. When `ack` is given, the
    /// stream's first line is parsed into it (the `?watch=1` submit
    /// ack) and still forwarded to `on_event`, but never becomes the
    /// terminal event.
    fn drain_event_stream(
        &self,
        reader: &mut BufReader<TcpStream>,
        what: &str,
        keepalive_to_callback: bool,
        mut ack: Option<&mut Option<Value>>,
        mut on_event: impl FnMut(&str) -> bool,
    ) -> Result<Value, ServerError> {
        // The stream is established: from here on, silence longer
        // than the heartbeat cadence allows means the server died —
        // switch from the generous request timeout to the dead-server
        // threshold so watchers (and the cluster coordinator's
        // reassignment path) notice promptly.
        reader
            .get_ref()
            .set_read_timeout(Some(self.stream_silence))?;
        let mut last: Option<String> = None;
        let mut on_line = |line: &str| {
            if let Some(slot) = &mut ack {
                if slot.is_none() {
                    match serde_json::from_str(line) {
                        Ok(value) => **slot = Some(value),
                        Err(_) => return false,
                    }
                    return on_event(line);
                }
            }
            // Heartbeats are transport keepalive, not job events:
            // they never become the stream's outcome, and by default
            // they never reach callers either.
            if line == "{\"event\":\"heartbeat\"}" {
                return if keepalive_to_callback {
                    on_event(line)
                } else {
                    true
                };
            }
            match &mut last {
                Some(slot) => {
                    slot.clear();
                    slot.push_str(line);
                }
                None => last = Some(line.to_string()),
            }
            on_event(line)
        };
        match Self::drain_chunked(reader, &mut on_line) {
            Ok(()) => {}
            // A read timeout here is not a transport hiccup: the
            // server heartbeats every HEARTBEAT_EVERY, so this much
            // silence means it is dead or unreachable. Surface it as
            // the retriable disconnect it is.
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(ServerError::Disconnected(format!(
                    "{what} silent for {:.0?} (> 2× the {:.0?} heartbeat \
                     interval): server presumed dead",
                    self.stream_silence,
                    crate::server::HEARTBEAT_EVERY,
                )));
            }
            Err(e) => return Err(e),
        }
        let last =
            last.ok_or_else(|| ServerError::Protocol("event stream ended without events".into()))?;
        serde_json::from_str(&last)
            .map_err(|e| ServerError::Protocol(format!("non-JSON terminal event: {e}")))
    }

    /// `GET /campaigns/<id>/events`: stream the job's NDJSON events,
    /// invoking `on_event` per line as it arrives, until the job
    /// reaches a terminal state — or until `on_event` returns `false`,
    /// which hangs up immediately (a watcher whose output died must
    /// not stay attached for the rest of a large sweep). Returns the
    /// last event received. Heartbeat keepalives never reach
    /// `on_event`.
    pub fn watch(
        &self,
        id: &str,
        on_event: impl FnMut(&str) -> bool,
    ) -> Result<Value, ServerError> {
        self.watch_opts(id, false, false, on_event)
    }

    /// [`watch`](Client::watch) on the aggregate ring (`GET
    /// /campaigns/<id>/events?aggregates=1`): lifecycle events plus
    /// `snapshot` aggregate deltas, no per-point lines — the stream a
    /// dashboard over a 100k-point sweep wants, sized O(slices ·
    /// snapshots) instead of O(points).
    pub fn watch_aggregates(
        &self,
        id: &str,
        on_event: impl FnMut(&str) -> bool,
    ) -> Result<Value, ServerError> {
        self.watch_opts(id, false, true, on_event)
    }

    /// [`watch`](Client::watch), but heartbeat keepalives are *also*
    /// delivered to `on_event` (they never become the returned last
    /// event). A caller that must react promptly even on a quiet
    /// stream — the cluster coordinator checking its cancel token —
    /// needs the callback to fire at least every heartbeat interval,
    /// not only when the job produces real events.
    pub fn watch_with_keepalive(
        &self,
        id: &str,
        on_event: impl FnMut(&str) -> bool,
    ) -> Result<Value, ServerError> {
        self.watch_opts(id, true, false, on_event)
    }

    fn watch_opts(
        &self,
        id: &str,
        keepalive_to_callback: bool,
        aggregates: bool,
        mut on_event: impl FnMut(&str) -> bool,
    ) -> Result<Value, ServerError> {
        let query = if aggregates { "?aggregates=1" } else { "" };
        let mut reader = self.send("GET", &format!("/campaigns/{id}/events{query}"), None)?;
        let (status, chunked) = Self::read_head(&mut reader)?;
        if status != 200 {
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            let detail = serde_json::from_str::<Value>(&body)
                .ok()
                .and_then(|v| v["error"].as_str().map(str::to_string))
                .unwrap_or(body);
            return Err(ServerError::Status(status, detail));
        }
        if !chunked {
            return Err(ServerError::Protocol("event stream is not chunked".into()));
        }
        self.drain_event_stream(
            &mut reader,
            &format!("event stream for {id}"),
            keepalive_to_callback,
            None,
            &mut on_event,
        )
    }
}
