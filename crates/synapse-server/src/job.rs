//! One submitted campaign: state machine, progress counters and the
//! buffered NDJSON event log its streams replay.
//!
//! Events are serialized once (by the worker that produced them) into
//! a bounded ring; any number of concurrent stream readers replay the
//! retained buffer from the top and then block on a condvar for more.
//! That makes `GET /campaigns/<id>/events` joinable at any time — a
//! client attaching mid-sweep first drains history, then follows live
//! — and means a slow client never stalls the sweep (the workers never
//! wait on a socket). The ring holds at most the configured event cap:
//! a 55k-point grid cannot grow an unbounded replay buffer; readers
//! that fall behind (or attach late) receive a synthesized `truncated`
//! event counting the dropped lines, then the retained tail.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use synapse_campaign::{CampaignReport, CampaignSpec, CancelToken, LiveAggregates, RunStats};
use synapse_trace::TraceRecorder;

/// Wire form of `POST /leases`: sweep grid indices `start..end` of the
/// expanded `spec` on this worker, streaming full per-point results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// The full (already-validated, canonical) campaign spec; the
    /// worker re-validates after the network hop.
    pub spec: CampaignSpec,
    /// First grid index of the lease (inclusive).
    pub start: usize,
    /// One past the last grid index (exclusive).
    pub end: usize,
}

/// How a submitted job executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A full-grid sweep in this process (the classic `POST
    /// /campaigns` path): report assembled at the end.
    Sweep,
    /// A lease: sweep only grid indices `start..end` on behalf of a
    /// cluster coordinator. Point events carry the full serialized
    /// [`synapse_campaign::PointResult`] so the coordinator can merge
    /// a byte-stable report; no local report is assembled.
    Lease {
        /// First grid index (inclusive).
        start: usize,
        /// One past the last grid index (exclusive).
        end: usize,
    },
    /// A distributed campaign: this process coordinates, fanning
    /// leases out to registered workers and merging their streams.
    Distributed,
}

/// Bounded NDJSON event ring with an absolute-position cursor space.
struct EventLog {
    /// Retained lines; `lines[0]` is absolute position `base`.
    lines: VecDeque<String>,
    /// Absolute position of the first retained line (= total dropped).
    base: usize,
    /// Retention cap.
    cap: usize,
    /// Lines pushed since the hook last fired (wake batching).
    unflushed: usize,
    /// When the hook last fired (wake-latency bound).
    last_hook: std::time::Instant,
}

/// Fire the event hook at most every `HOOK_BATCH` pushed lines…
///
/// A fast sweep emits tens of thousands of events per second; waking
/// the reactor for every one makes the scheduler ping-pong between
/// the sweep thread and the reactor on every point. Batching the
/// wakes lets the ring absorb a burst and the reactor drain it in one
/// pump.
const HOOK_BATCH: usize = 16;

/// …or whenever this much time passed since the last fire, so a slow
/// sweep's points still reach watchers promptly (the reactor's own
/// tick bounds the worst case for a sweep that stops mid-batch).
const HOOK_LATENCY: Duration = Duration::from_millis(25);

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a queue worker.
    Queued,
    /// A queue worker is sweeping the grid.
    Running,
    /// Every point landed; report available.
    Completed,
    /// Cancelled before the grid drained.
    Cancelled,
    /// The sweep errored.
    Failed,
}

impl JobState {
    /// Status string used across the HTTP API.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job will never produce further events.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Mutable progress snapshot (behind the job's lock).
#[derive(Debug, Clone)]
pub struct Progress {
    /// Current lifecycle state.
    pub state: JobState,
    /// Points landed so far.
    pub done: usize,
    /// Of those, served from the shared result cache.
    pub cache_hits: usize,
    /// Final run stats (set on completion).
    pub stats: Option<RunStats>,
    /// Failure message (set on error).
    pub error: Option<String>,
}

/// Which of a job's two event rings to read.
///
/// Every job feeds two bounded rings from the same publication path:
/// the **raw** ring carries everything (per-point events included);
/// the **aggregates** ring carries only the shared lines — lifecycle
/// transitions and `snapshot` aggregate deltas — so an
/// aggregate-mode watcher's stream stays O(slices · snapshots), never
/// O(points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventRing {
    /// All events, per-point stream included.
    Raw,
    /// Lifecycle + snapshot deltas only.
    Aggregates,
}

/// Where snapshot-delta emission for a job stands: the aggregate
/// version covered by the last emitted snapshot, and when it was
/// emitted (the server's hybrid count+time cadence reads both).
pub struct SnapshotCursor {
    /// [`LiveAggregates::version`] already covered by emissions.
    pub version: u64,
    /// Points done at the last emission.
    pub done: usize,
    /// Instant of the last emission.
    pub emitted_at: std::time::Instant,
}

/// Out-of-band notification that a job published (or closed) events —
/// how the reactor learns to pump its streams without a thread parked
/// on every job's condvar. Calls coalesce at the receiver (an eventfd
/// counter), so per-point invocation stays cheap.
pub type EventHook = dyn Fn() + Send + Sync;

/// One submitted campaign.
pub struct Job {
    /// Job id (monotonic per server process).
    pub id: u64,
    /// The validated spec as submitted.
    pub spec: CampaignSpec,
    /// Grid size (for leases: the lease's own point count).
    pub total: usize,
    /// Worker threads the sweep runs with.
    pub workers: usize,
    /// How this job executes.
    pub kind: JobKind,
    /// Cooperative cancellation flag (`DELETE /campaigns/<id>`).
    pub cancel: CancelToken,
    progress: Mutex<Progress>,
    /// Deterministic report of a completed job.
    report: Mutex<Option<CampaignReport>>,
    /// Incremental per-(axis, metric) aggregates, shared by every
    /// watcher, snapshot emission and `GET /campaigns/<id>/aggregates`.
    live: Arc<LiveAggregates>,
    /// Snapshot-delta emission state (see [`SnapshotCursor`]).
    snapshot: Mutex<SnapshotCursor>,
    /// Bounded ring of serialized NDJSON lines, in emission order.
    events: Mutex<EventLog>,
    /// Lifecycle + snapshot lines only (see [`EventRing`]).
    aggregate_events: Mutex<EventLog>,
    events_ready: Condvar,
    /// Cheap terminal check for streamers (avoids taking the progress
    /// lock per poll).
    done_events: AtomicUsize,
    /// Reactor wakeup, fired alongside the condvar.
    hook: Option<Arc<EventHook>>,
    /// Flight recorder capturing this job's causal stream
    /// (`POST /campaigns?record=1`). Attached before the job is queued,
    /// so the sweep observer and the recorder see the same events.
    recorder: OnceLock<Arc<TraceRecorder>>,
    /// Rendered trace document of a finished recorded job, served by
    /// `GET /campaigns/<id>/trace`.
    trace_doc: OnceLock<String>,
    /// Causality id a cluster coordinator sent in `X-Synapse-Trace`
    /// (lease jobs only), echoed in this job's lease events and batch
    /// frames so merged streams stay attributable.
    lease_trace: OnceLock<String>,
}

/// Sentinel for "no more events will ever arrive".
const EVENTS_CLOSED: usize = usize::MAX;

impl Job {
    /// A freshly-accepted job in the queued state, retaining at most
    /// `event_cap` NDJSON lines for replay (0 ⇒ unbounded).
    pub fn new(
        id: u64,
        spec: CampaignSpec,
        total: usize,
        workers: usize,
        kind: JobKind,
        event_cap: usize,
    ) -> Job {
        Job::with_hook(id, spec, total, workers, kind, event_cap, None)
    }

    /// [`Job::new`], plus an [`EventHook`] fired on every publish and
    /// on close (the server wires the reactor's waker in here).
    #[allow(clippy::too_many_arguments)]
    pub fn with_hook(
        id: u64,
        spec: CampaignSpec,
        total: usize,
        workers: usize,
        kind: JobKind,
        event_cap: usize,
        hook: Option<Arc<EventHook>>,
    ) -> Job {
        let ring = || {
            Mutex::new(EventLog {
                lines: VecDeque::new(),
                base: 0,
                cap: if event_cap == 0 {
                    usize::MAX
                } else {
                    event_cap
                },
                unflushed: 0,
                last_hook: std::time::Instant::now(),
            })
        };
        Job {
            id,
            spec,
            total,
            workers,
            kind,
            cancel: CancelToken::new(),
            progress: Mutex::new(Progress {
                state: JobState::Queued,
                done: 0,
                cache_hits: 0,
                stats: None,
                error: None,
            }),
            report: Mutex::new(None),
            live: Arc::new(LiveAggregates::new()),
            snapshot: Mutex::new(SnapshotCursor {
                version: 0,
                done: 0,
                emitted_at: std::time::Instant::now(),
            }),
            events: ring(),
            aggregate_events: ring(),
            events_ready: Condvar::new(),
            done_events: AtomicUsize::new(0),
            hook,
            recorder: OnceLock::new(),
            trace_doc: OnceLock::new(),
            lease_trace: OnceLock::new(),
        }
    }

    /// Attach a flight recorder (once, before the job is queued).
    pub fn attach_recorder(&self, recorder: Arc<TraceRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// The attached flight recorder, if the job was submitted with
    /// `?record=1`.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.recorder.get()
    }

    /// Store the finished job's rendered trace document (idempotent —
    /// first render wins, matching the determinism contract).
    pub fn set_trace_doc(&self, doc: String) {
        let _ = self.trace_doc.set(doc);
    }

    /// The finished job's rendered trace, if it was recorded.
    pub fn trace_doc(&self) -> Option<&str> {
        self.trace_doc.get().map(String::as_str)
    }

    /// Remember the coordinator's `X-Synapse-Trace` causality id (once,
    /// before the lease job is queued).
    pub fn set_lease_trace(&self, trace_id: String) {
        let _ = self.lease_trace.set(trace_id);
    }

    /// The causality id this lease's events should echo, if any.
    pub fn lease_trace(&self) -> Option<&str> {
        self.lease_trace.get().map(String::as_str)
    }

    /// The id in its API form (`j<id>`).
    pub fn public_id(&self) -> String {
        format!("j{}", self.id)
    }

    /// Run a closure over the locked progress (read or mutate).
    pub fn with_progress<T>(&self, f: impl FnOnce(&mut Progress) -> T) -> T {
        f(&mut self.progress.lock().expect("progress lock"))
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.with_progress(|p| p.state)
    }

    /// Store the completed job's deterministic report.
    pub fn set_report(&self, report: CampaignReport) {
        *self.report.lock().expect("report lock") = Some(report);
    }

    /// The completed job's report, if any.
    pub fn report_json(&self) -> Option<String> {
        self.report
            .lock()
            .expect("report lock")
            .as_ref()
            .and_then(|r| r.to_json().ok())
    }

    /// The job's shared live-aggregate view.
    pub fn live(&self) -> &Arc<LiveAggregates> {
        &self.live
    }

    /// Run a closure over the locked snapshot-emission cursor (the
    /// server's cadence check reads and advances it atomically).
    pub fn with_snapshot_cursor<T>(&self, f: impl FnOnce(&mut SnapshotCursor) -> T) -> T {
        f(&mut self.snapshot.lock().expect("snapshot cursor lock"))
    }

    /// Push one line onto one ring; returns whether the hook should
    /// fire (batching state is per ring).
    fn push_line(&self, ring: &Mutex<EventLog>, line: String) -> bool {
        let mut events = ring.lock().expect("events lock");
        if events.lines.len() >= events.cap {
            events.lines.pop_front();
            events.base += 1;
            crate::metrics::ServerMetrics::get()
                .ring_truncated_lines
                .inc();
        }
        events.lines.push_back(line);
        self.events_ready.notify_all();
        events.unflushed += 1;
        let fire = events.unflushed >= HOOK_BATCH || events.last_hook.elapsed() >= HOOK_LATENCY;
        if fire {
            events.unflushed = 0;
            events.last_hook = std::time::Instant::now();
        }
        fire
    }

    /// Append one NDJSON event line and wake streamers. When the ring
    /// is at capacity the oldest line falls off (its absolute position
    /// survives in `base`, so late readers learn how much they missed).
    pub fn push_event(&self, line: String) {
        if self.push_line(&self.events, line) {
            if let Some(hook) = &self.hook {
                hook();
            }
        }
    }

    /// Append one NDJSON line to *both* rings — lifecycle transitions
    /// and snapshot deltas, the lines aggregate-mode watchers see too.
    pub fn push_shared_event(&self, line: String) {
        let fire_raw = self.push_line(&self.events, line.clone());
        let fire_agg = self.push_line(&self.aggregate_events, line);
        if fire_raw || fire_agg {
            if let Some(hook) = &self.hook {
                hook();
            }
        }
    }

    /// Mark the event stream closed (terminal state reached) and wake
    /// streamers so they can drain and hang up.
    pub fn close_events(&self) {
        {
            let _events = self.events.lock().expect("events lock");
            self.done_events.store(EVENTS_CLOSED, Ordering::Release);
            self.events_ready.notify_all();
        }
        if let Some(hook) = &self.hook {
            hook();
        }
    }

    /// Whether the stream is closed (no further events will arrive).
    pub fn events_closed(&self) -> bool {
        self.done_events.load(Ordering::Acquire) == EVENTS_CLOSED
    }

    /// Settle a still-queued job as cancelled: flip the token, move
    /// `Queued → Cancelled`, emit the terminal event and close the
    /// stream. Returns whether this call did the settling (false when
    /// the job already ran, is running, or was settled before — the
    /// running path emits its own terminal event). One helper so the
    /// three callers (DELETE, submit-during-shutdown, the shutdown
    /// sweep) can never diverge on the settle protocol.
    pub fn settle_if_queued(&self) -> bool {
        self.cancel.cancel();
        let settled = self.with_progress(|p| {
            if p.state == JobState::Queued {
                p.state = JobState::Cancelled;
                true
            } else {
                false
            }
        });
        if settled {
            let event = serde_json::json!({
                "event": "cancelled",
                "id": self.public_id(),
                "done": 0,
                "total": self.total,
            });
            self.push_shared_event(serde_json::to_string(&event).expect("event serializes"));
            self.close_events();
        }
        settled
    }

    /// [`events_since`](Job::events_since) without the intermediate
    /// `Vec<String>`: appends the retained lines (newline-terminated,
    /// truncation marker included) straight into a caller buffer, up
    /// to `max_bytes` of appended payload. The reactor's stream pump
    /// runs this per wake batch; copying each line through its own
    /// heap `String` first was measurable at 100k events/s. Returns
    /// `(next_cursor, appended_any, closed)`.
    pub fn events_into(
        &self,
        from: usize,
        out: &mut Vec<u8>,
        max_bytes: usize,
    ) -> (usize, bool, bool) {
        self.ring_events_into(EventRing::Raw, from, out, max_bytes)
    }

    /// [`Job::events_into`] over a chosen ring: the aggregates ring
    /// serves `GET /campaigns/<id>/events?aggregates=1` watchers.
    pub fn ring_events_into(
        &self,
        ring: EventRing,
        from: usize,
        out: &mut Vec<u8>,
        max_bytes: usize,
    ) -> (usize, bool, bool) {
        use std::fmt::Write as _;
        let ring = match ring {
            EventRing::Raw => &self.events,
            EventRing::Aggregates => &self.aggregate_events,
        };
        let events = ring.lock().expect("events lock");
        let start = out.len();
        let mut from = from;
        if from < events.base {
            let mut marker = String::with_capacity(48);
            let _ = write!(
                marker,
                "{{\"event\":\"truncated\",\"dropped\":{}}}",
                events.base - from
            );
            out.extend_from_slice(marker.as_bytes());
            out.push(b'\n');
            from = events.base;
        }
        let mut next = from;
        for line in events.lines.iter().skip(from - events.base) {
            if out.len() - start >= max_bytes {
                break;
            }
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
            next += 1;
        }
        (next, out.len() > start, self.events_closed())
    }

    /// Copy out the events at absolute positions `[from..]`, blocking
    /// up to `wait` when the ring has nothing new and the stream is
    /// still open. Returns the next cursor, the copied lines and
    /// whether the stream is closed (after draining, the reader may
    /// hang up once a subsequent call returns empty+closed).
    ///
    /// A reader whose cursor fell behind the ring's retention (late
    /// attach to a huge sweep, or a stalled consumer) first receives a
    /// synthesized `truncated` event counting the dropped lines, then
    /// the retained tail — the stream stays well-formed NDJSON.
    pub fn events_since(&self, from: usize, wait: Duration) -> (usize, Vec<String>, bool) {
        {
            let events = self.events.lock().expect("events lock");
            // `wait == 0` is a pure poll: never touch the condvar,
            // just report what is retained right now.
            if events.base + events.lines.len() <= from && !self.events_closed() && !wait.is_zero()
            {
                drop(
                    self.events_ready
                        .wait_timeout(events, wait)
                        .expect("events lock"),
                );
            }
        }
        // One copy-out implementation: the marker/cursor rules live in
        // `events_into` alone, so the two read paths cannot diverge.
        let mut raw = Vec::new();
        let (next, _, closed) = self.events_into(from, &mut raw, usize::MAX);
        let fresh = raw
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .map(|line| String::from_utf8(line.to_vec()).expect("ring lines are UTF-8"))
            .collect();
        (next, fresh, closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "job"
            machines = ["thinkie"]
            kernels = ["asm"]

            [[workloads]]
            app = "gromacs"
            steps = [1000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn state_names_and_terminality() {
        assert_eq!(JobState::Queued.name(), "queued");
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
    }

    #[test]
    fn events_replay_then_follow_then_close() {
        let job = Job::new(7, spec(), 1, 1, JobKind::Sweep, 0);
        assert_eq!(job.public_id(), "j7");
        job.push_event("{\"event\":\"a\"}".into());
        job.push_event("{\"event\":\"b\"}".into());
        // Replay from the top.
        let (next, lines, closed) = job.events_since(0, Duration::from_millis(1));
        assert_eq!(lines.len(), 2);
        assert_eq!(next, 2);
        assert!(!closed);
        // Nothing new: times out empty.
        let (next, lines, closed) = job.events_since(2, Duration::from_millis(1));
        assert!(lines.is_empty());
        assert_eq!(next, 2);
        assert!(!closed);
        // Close: reader drains and sees the closed flag.
        job.close_events();
        let (_, lines, closed) = job.events_since(2, Duration::from_millis(1));
        assert!(lines.is_empty());
        assert!(closed);
    }

    #[test]
    fn waiting_reader_wakes_on_push() {
        let job = std::sync::Arc::new(Job::new(1, spec(), 1, 1, JobKind::Sweep, 0));
        let reader = {
            let job = job.clone();
            std::thread::spawn(move || job.events_since(0, Duration::from_secs(5)))
        };
        // Give the reader a moment to block, then publish.
        std::thread::sleep(Duration::from_millis(20));
        job.push_event("{\"event\":\"live\"}".into());
        let (_, lines, _) = reader.join().unwrap();
        assert_eq!(lines, vec!["{\"event\":\"live\"}".to_string()]);
    }

    #[test]
    fn bounded_ring_drops_oldest_and_synthesizes_truncation() {
        let job = Job::new(2, spec(), 1, 1, JobKind::Sweep, 3);
        for i in 0..8 {
            job.push_event(format!("{{\"n\":{i}}}"));
        }
        // Only the 3 newest lines are retained; a reader starting from
        // 0 learns exactly how many it missed.
        let (next, lines, _) = job.events_since(0, Duration::from_millis(1));
        assert_eq!(
            lines[0], "{\"event\":\"truncated\",\"dropped\":5}",
            "{lines:?}"
        );
        assert_eq!(&lines[1..], &["{\"n\":5}", "{\"n\":6}", "{\"n\":7}"]);
        assert_eq!(next, 8);
        // A caught-up reader sees no marker.
        let (_, lines, _) = job.events_since(6, Duration::from_millis(1));
        assert_eq!(lines, vec!["{\"n\":6}".to_string(), "{\"n\":7}".into()]);
        // A reader mid-ring gets only the partial drop count.
        let (_, lines, _) = job.events_since(4, Duration::from_millis(1));
        assert_eq!(lines[0], "{\"event\":\"truncated\",\"dropped\":1}");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn truncation_marker_counts_drops_relative_to_the_cursor() {
        // 8 events through a 3-line ring: positions 0..5 are the
        // truncated gap, 5..8 the retained tail.
        let job = Job::new(9, spec(), 1, 1, JobKind::Sweep, 3);
        for i in 0..8 {
            job.push_event(format!("{{\"n\":{i}}}"));
        }
        // Cursor at the gap start (position 0): every dropped line is
        // counted for THIS cursor.
        let (next, lines, _) = job.events_since(0, Duration::ZERO);
        assert_eq!(lines[0], "{\"event\":\"truncated\",\"dropped\":5}");
        assert_eq!(next, 8);
        // Cursor mid-gap (position 3): only the lines this reader
        // actually missed — not the count from the ring's own start.
        let (next, lines, _) = job.events_since(3, Duration::ZERO);
        assert_eq!(
            lines[0], "{\"event\":\"truncated\",\"dropped\":2}",
            "mid-gap cursor counts 3..5, not 0..5"
        );
        assert_eq!(&lines[1..], &["{\"n\":5}", "{\"n\":6}", "{\"n\":7}"]);
        assert_eq!(next, 8);
        // Cursor exactly at the ring head (position 5 = first retained
        // line): nothing was missed, no marker is synthesized.
        let (next, lines, _) = job.events_since(5, Duration::ZERO);
        assert_eq!(lines, vec!["{\"n\":5}", "{\"n\":6}", "{\"n\":7}"]);
        assert_eq!(next, 8);
    }

    #[test]
    fn truncation_marker_is_emitted_exactly_once_per_gap() {
        let job = Job::new(10, spec(), 1, 1, JobKind::Sweep, 2);
        for i in 0..5 {
            job.push_event(format!("{{\"n\":{i}}}"));
        }
        // First read from a stale cursor: one marker, cursor advances
        // past the gap.
        let (next, lines, _) = job.events_since(1, Duration::ZERO);
        assert_eq!(lines[0], "{\"event\":\"truncated\",\"dropped\":2}");
        assert_eq!(next, 5);
        // Resuming from the returned cursor never replays the marker.
        let (next2, lines, _) = job.events_since(next, Duration::ZERO);
        assert!(lines.is_empty(), "{lines:?}");
        assert_eq!(next2, 5);
        // A *new* gap (the ring rolled again past this cursor) is a
        // new marker — counted from this cursor, exactly once.
        for i in 5..9 {
            job.push_event(format!("{{\"n\":{i}}}"));
        }
        let (next3, lines, _) = job.events_since(next2, Duration::ZERO);
        assert_eq!(lines[0], "{\"event\":\"truncated\",\"dropped\":2}");
        assert_eq!(&lines[1..], &["{\"n\":7}", "{\"n\":8}"]);
        assert_eq!(next3, 9);
        let (_, lines, _) = job.events_since(next3, Duration::ZERO);
        assert!(lines.is_empty(), "exactly once: {lines:?}");
    }

    #[test]
    fn event_hook_batches_pushes_and_always_fires_on_close() {
        let fired = Arc::new(AtomicUsize::new(0));
        let hook = {
            let fired = fired.clone();
            Arc::new(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }) as Arc<EventHook>
        };
        let job = Job::with_hook(11, spec(), 1, 1, JobKind::Sweep, 0, Some(hook));
        // A burst wakes the hook per batch, not per event (the
        // latency-bound fallback may add at most a couple more).
        for i in 0..(4 * HOOK_BATCH) {
            job.push_event(format!("{{\"n\":{i}}}"));
        }
        let after_burst = fired.load(Ordering::SeqCst);
        assert!(
            (4..=8).contains(&after_burst),
            "4 batches of {HOOK_BATCH} → ~4 wakes, not {}: {after_burst}",
            4 * HOOK_BATCH
        );
        // Closing always fires so terminal events are never stranded
        // behind a partial batch.
        job.close_events();
        assert_eq!(fired.load(Ordering::SeqCst), after_burst + 1);
    }

    #[test]
    fn shared_events_reach_both_rings_point_events_only_the_raw_one() {
        let job = Job::new(12, spec(), 1, 1, JobKind::Sweep, 0);
        job.push_event("{\"event\":\"point\"}".into());
        job.push_shared_event("{\"event\":\"snapshot\"}".into());
        let mut raw = Vec::new();
        let (next, any, _) = job.ring_events_into(EventRing::Raw, 0, &mut raw, usize::MAX);
        assert_eq!(next, 2);
        assert!(any);
        let mut agg = Vec::new();
        let (next, any, _) = job.ring_events_into(EventRing::Aggregates, 0, &mut agg, usize::MAX);
        assert_eq!(next, 1, "the point event never reaches the aggregates ring");
        assert!(any);
        assert_eq!(agg, b"{\"event\":\"snapshot\"}\n");
        // Cursor spaces are per ring: each ring closes with its own
        // tail intact.
        job.close_events();
        let (_, _, closed) = job.ring_events_into(EventRing::Aggregates, 1, &mut agg, usize::MAX);
        assert!(closed);
    }

    #[test]
    fn job_kinds_carry_lease_ranges() {
        let lease = JobKind::Lease { start: 4, end: 9 };
        assert_eq!(lease, JobKind::Lease { start: 4, end: 9 });
        assert_ne!(lease, JobKind::Sweep);
        let job = Job::new(3, spec(), 5, 1, lease, 0);
        assert_eq!(job.kind, lease);
    }
}
