//! End-to-end tests: a real server on an ephemeral port, driven
//! through the real client over real sockets.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde_json::Value;
use synapse_server::{Client, Server, ServerConfig, ServerHandle};

/// Boot a server with the given config (addr forced ephemeral),
/// returning a client bound to it and the shutdown handle.
fn boot(mut config: ServerConfig) -> (Client, ServerHandle, std::thread::JoinHandle<()>) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind ephemeral");
    let handle = server.handle().expect("handle");
    let addr = server.local_addr().expect("addr");
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (Client::new(addr.to_string()), handle, join)
}

fn example_spec() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaign.toml");
    std::fs::read_to_string(path).expect("examples/campaign.toml readable")
}

/// A small sweep for the fast tests.
fn small_spec() -> &'static str {
    r#"
    name = "e2e-small"
    seed = 41
    machines = ["thinkie", "comet"]
    kernels = ["asm", "c"]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000]
    "#
}

/// Wait until the job reaches a terminal status, returning it.
fn await_terminal(client: &Client, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.status(id).expect("status");
        let state = status["status"]
            .as_str()
            .expect("status string")
            .to_string();
        if ["completed", "cancelled", "failed"].contains(&state.as_str()) {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn healthz_and_store_stats_respond() {
    let (client, handle, join) = boot(ServerConfig::default());
    let health = client.healthz().unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["jobs"].as_u64(), Some(0));
    let stats = client.store_stats().unwrap();
    assert_eq!(stats["results"].as_u64(), Some(0));
    // In-memory stores carry no manifest engine tag; the field is
    // present either way.
    assert!(stats["engine"].as_str().is_some());
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn example_campaign_streams_every_point_and_summary_is_byte_stable() {
    let (client, handle, join) = boot(ServerConfig::default());

    let reply = client.submit(&example_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let total = reply["points"].as_u64().unwrap() as usize;
    assert_eq!(total, 192, "examples/campaign.toml grid size");

    // Consume the stream: exactly one `point` event per grid point,
    // lifecycle events around them, every grid index exactly once.
    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str::<Value>(line).expect("event is JSON"));
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(192));
    assert_eq!(summary["simulated"].as_u64(), Some(192));

    let lines = lines.into_inner().unwrap();
    let points: Vec<&Value> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("point"))
        .collect();
    assert_eq!(points.len(), total, "one point event per grid point");
    let mut indices: Vec<u64> = points
        .iter()
        .map(|p| p["index"].as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..total as u64).collect::<Vec<_>>());
    assert!(
        lines
            .iter()
            .any(|l| l["event"].as_str() == Some("snapshot")),
        "192-point sweep crosses the snapshot cadence"
    );
    // `done` in arrival order is 1..=N: events streamed as they
    // landed, not replayed from a completed job.
    let dones: Vec<u64> = points.iter().map(|p| p["done"].as_u64().unwrap()).collect();
    assert_eq!(dones, (1..=total as u64).collect::<Vec<_>>());

    // Byte-stable report for a fixed seed: an identical submission on
    // a *fresh* server (fresh cache, different completion order)
    // serializes to the identical report.
    let report_a = client.report(&id).unwrap();
    let text_a = serde_json::to_string(&report_a).unwrap();
    let (client_b, handle_b, join_b) = boot(ServerConfig::default());
    let reply_b = client_b.submit(&example_spec()).unwrap();
    let id_b = reply_b["id"].as_str().unwrap().to_string();
    client_b.watch(&id_b, |_| true).unwrap();
    let text_b = serde_json::to_string(&client_b.report(&id_b).unwrap()).unwrap();
    assert_eq!(text_a, text_b, "deterministic report across servers");
    handle_b.shutdown();
    join_b.join().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn resubmitting_an_identical_spec_is_all_cache_hits() {
    let (client, handle, join) = boot(ServerConfig::default());
    let first = client.submit(small_spec()).unwrap();
    let id1 = first["id"].as_str().unwrap().to_string();
    let summary1 = client.watch(&id1, |_| true).unwrap();
    assert_eq!(summary1["cache_hit_rate"].as_f64(), Some(0.0));

    let second = client.submit(small_spec()).unwrap();
    let id2 = second["id"].as_str().unwrap().to_string();
    assert_ne!(id1, id2, "every submission is its own job");
    let summary2 = client.watch(&id2, |_| true).unwrap();
    assert_eq!(
        summary2["cache_hit_rate"].as_f64(),
        Some(1.0),
        "identical spec served entirely from the shared cache: {summary2:?}"
    );
    assert_eq!(summary2["simulated"].as_u64(), Some(0));

    // The status document agrees.
    let status = await_terminal(&client, &id2);
    assert_eq!(status["cache_hit_rate"].as_f64(), Some(1.0));
    // And the process-wide store holds exactly one copy of the grid.
    let stats = client.store_stats().unwrap();
    assert_eq!(stats["results"].as_u64(), Some(8));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_jobs_share_one_cache_handle() {
    // Two identical submissions racing on a 2-worker queue: together
    // they must simulate at most the grid once per point — every
    // overlap is a hit on the shared in-process cache. (Both jobs
    // running concurrently is the configuration under test; the
    // assertion below holds regardless of interleaving.)
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 2,
        job_workers: 2,
        ..Default::default()
    });
    let a = client.submit(small_spec()).unwrap();
    let b = client.submit(small_spec()).unwrap();
    let id_a = a["id"].as_str().unwrap().to_string();
    let id_b = b["id"].as_str().unwrap().to_string();
    let sa = await_terminal(&client, &id_a);
    let sb = await_terminal(&client, &id_b);
    assert_eq!(sa["status"].as_str(), Some("completed"));
    assert_eq!(sb["status"].as_str(), Some("completed"));
    let done_a = sa["done"].as_u64().unwrap();
    let done_b = sb["done"].as_u64().unwrap();
    assert_eq!(done_a + done_b, 16, "both jobs drained their grids");
    // The cache ends up with one entry per distinct point.
    let stats = client.store_stats().unwrap();
    assert_eq!(stats["results"].as_u64(), Some(8));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cancellation_stops_a_running_job_mid_grid() {
    // A wide grid on a single slow worker, cancelled as soon as the
    // first points land.
    let wide = r#"
    name = "e2e-cancel"
    seed = 5
    machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
    kernels = ["asm", "c", "spin"]
    modes = ["openmp", "mpi"]
    threads = [1, 2, 4, 8]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000, 100000, 200000]

    [[workloads]]
    app = "amber"
    steps = [10000, 50000, 100000, 200000]
    "#;
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    let reply = client.submit(wide).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let total = reply["points"].as_u64().unwrap();
    assert_eq!(total, 6 * 3 * 2 * 4 * 8);

    // Wait for the sweep to actually start landing points…
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&id).unwrap();
        if status["done"].as_u64().unwrap() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no point ever landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // …then cancel and confirm the job settles well short of the grid.
    let on_delete = client.cancel(&id).unwrap();
    assert!(["running", "cancelled"].contains(&on_delete["status"].as_str().unwrap()));
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("cancelled"));
    let done = status["done"].as_u64().unwrap();
    assert!(done < total, "cancelled mid-grid: {done}/{total}");
    // The stream of a cancelled job terminates with a cancelled event.
    let last = client.watch(&id, |_| true).unwrap();
    assert_eq!(last["event"].as_str(), Some("cancelled"));
    assert_eq!(last["done"].as_u64(), Some(done));
    // The report never materialized.
    let err = client.report(&id).unwrap_err();
    assert!(err.to_string().contains("409"), "{err}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cancelling_a_queued_job_settles_immediately() {
    // One queue worker busy with a long job; a second job queued
    // behind it is DELETEd before it ever runs.
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    let busy = client.submit(&example_spec()).unwrap();
    let queued = client.submit(small_spec()).unwrap();
    let queued_id = queued["id"].as_str().unwrap().to_string();
    let settled = client.cancel(&queued_id).unwrap();
    assert_eq!(settled["status"].as_str(), Some("cancelled"));
    assert_eq!(settled["done"].as_u64(), Some(0));
    let last = client.watch(&queued_id, |_| true).unwrap();
    assert_eq!(last["event"].as_str(), Some("cancelled"));
    // The busy job is unaffected.
    let busy_id = busy["id"].as_str().unwrap().to_string();
    let status = await_terminal(&client, &busy_id);
    assert_eq!(status["status"].as_str(), Some("completed"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn watch_callback_can_hang_up_early() {
    let (client, handle, join) = boot(ServerConfig::default());
    let id = client.submit(&example_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    // Stop after the first `point` event: watch must return promptly
    // with that event instead of draining the remaining grid.
    let mut seen = 0;
    let last = client
        .watch(&id, |line| {
            if line.contains("\"event\":\"point\"") {
                seen += 1;
                return false;
            }
            true
        })
        .unwrap();
    assert_eq!(seen, 1, "exactly one point consumed");
    assert_eq!(last["event"].as_str(), Some("point"));
    // The job itself is unaffected and runs to completion.
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("completed"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_submissions_get_4xx_not_jobs() {
    let (client, handle, join) = boot(ServerConfig::default());
    for (label, body) in [
        ("bad TOML", "name = \"x\"\nmachines = [unterminated"),
        ("bad JSON", "{\"name\": \"x\", \"machines\":"),
        ("unknown machine", "name = \"x\"\nmachines = [\"frontier\"]\nkernels = [\"asm\"]\n\n[[workloads]]\napp = \"gromacs\"\nsteps = [1000]\n"),
        ("unknown fs", "name = \"x\"\nfilesystems = [\"gpfs\"]\nmachines = [\"thinkie\"]\nkernels = [\"asm\"]\n\n[[workloads]]\napp = \"gromacs\"\nsteps = [1000]\n"),
        ("empty axis", "name = \"x\"\nmachines = [\"thinkie\"]\nkernels = []\n\n[[workloads]]\napp = \"gromacs\"\nsteps = [1000]\n"),
    ] {
        let err = client.submit(body).unwrap_err();
        assert!(
            err.to_string().contains("400"),
            "{label}: expected 400, got {err}"
        );
    }
    // Nothing leaked into the job table.
    let health = client.healthz().unwrap();
    assert_eq!(health["jobs"].as_u64(), Some(0));

    // Unknown endpoints and wrong methods are 404/405, not hangs.
    let missing = client.status("j999").unwrap_err();
    assert!(missing.to_string().contains("404"), "{missing}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn fs_and_atom_axes_are_submittable_over_the_wire() {
    let spec = r#"
    name = "e2e-axes"
    seed = 9
    machines = ["titan"]
    kernels = ["asm"]
    filesystems = ["default", "local"]
    atoms = ["all", "no-storage"]

    [[workloads]]
    app = "gromacs"
    steps = [10000]
    "#;
    let (client, handle, join) = boot(ServerConfig::default());
    let reply = client.submit(spec).unwrap();
    assert_eq!(reply["points"].as_u64(), Some(4), "2 fs × 2 atom sets");
    let id = reply["id"].as_str().unwrap().to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let report = client.report(&id).unwrap();
    let rows = report["results"].as_array().unwrap();
    assert_eq!(rows.len(), 4);
    let atoms: Vec<&str> = rows.iter().map(|r| r["atoms"].as_str().unwrap()).collect();
    assert!(atoms.contains(&"no-storage"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn persistent_cache_dir_survives_server_restarts() {
    let dir = std::env::temp_dir().join(format!("synapse-server-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let (client, handle, join) = boot(config());
    let id = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["simulated"].as_u64(), Some(8));
    handle.shutdown();
    join.join().unwrap();

    // A new process-analogue (fresh server, same dir) serves the same
    // spec without simulating anything.
    let (client2, handle2, join2) = boot(config());
    let id2 = client2.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary2 = client2.watch(&id2, |_| true).unwrap();
    assert_eq!(summary2["cache_hit_rate"].as_f64(), Some(1.0));
    assert_eq!(summary2["simulated"].as_u64(), Some(0));
    handle2.shutdown();
    join2.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lease_endpoint_sweeps_a_slice_with_full_results() {
    let (client, handle, join) = boot(ServerConfig::default());
    let spec = synapse_campaign::CampaignSpec::from_toml(small_spec()).unwrap();
    let total = spec.point_count();
    assert_eq!(total, 8);
    let lease = synapse_server::LeaseRequest {
        spec: spec.clone(),
        start: 2,
        end: 6,
    };
    let reply = client
        .submit_lease(&serde_json::to_string(&lease).unwrap())
        .unwrap();
    assert_eq!(reply["points"].as_u64(), Some(4), "{reply:?}");
    assert_eq!(reply["lease"]["start"].as_u64(), Some(2));
    assert_eq!(reply["grid_points"].as_u64(), Some(8));
    let id = reply["id"].as_str().unwrap().to_string();

    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).unwrap());
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(4));
    let lines = lines.into_inner().unwrap();
    let points: Vec<&Value> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("point"))
        .collect();
    assert_eq!(points.len(), 4);
    // Point events carry GLOBAL grid indices and the full result
    // payload the coordinator merges from.
    let mut indices: Vec<u64> = points
        .iter()
        .map(|p| p["index"].as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![2, 3, 4, 5]);
    for p in &points {
        let result = &p["result"];
        assert_eq!(result["point"]["index"], p["index"]);
        assert!(result["tx"].as_f64().unwrap() > 0.0);
        assert!(result["consumed_cycles"].as_u64().is_some());
    }
    // A lease job has no report (merging is the coordinator's job).
    let err = client.report(&id).unwrap_err();
    assert!(err.to_string().contains("409"), "{err}");

    // Out-of-range and inverted leases are rejected outright.
    for (start, end) in [(6, 2), (0, 9), (8, 8)] {
        let bad = synapse_server::LeaseRequest {
            spec: spec.clone(),
            start,
            end,
        };
        let err = client
            .submit_lease(&serde_json::to_string(&bad).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("400"), "{start}..{end}: {err}");
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_cap_sheds_excess_clients_with_503() {
    let (client, handle, join) = boot(ServerConfig {
        max_connections: 1,
        ..Default::default()
    });
    let addr = {
        // The client resolved the address already; rebuild it from the
        // handle for the raw socket.
        handle.addr()
    };
    // Occupy the single slot with an idle connection.
    let hog = std::net::TcpStream::connect(addr).unwrap();
    // Wait until the accept loop has picked it up, then every further
    // request bounces with 503.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.healthz() {
            Err(e) if e.to_string().contains("503") => break,
            _ => assert!(Instant::now() < deadline, "cap never engaged"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Releasing the slot restores service.
    drop(hog);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.healthz().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn event_ring_truncates_replay_for_late_watchers() {
    // A tiny ring: the 192-point example overflows it long before the
    // sweep ends, so a late watcher replays a truncation marker plus
    // the retained tail instead of the whole history.
    let (client, handle, join) = boot(ServerConfig {
        event_buffer: 16,
        ..Default::default()
    });
    let reply = client.submit(&example_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    await_terminal(&client, &id);

    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).unwrap());
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let lines = lines.into_inner().unwrap();
    assert_eq!(lines.len(), 17, "marker + 16 retained lines");
    assert_eq!(lines[0]["event"].as_str(), Some("truncated"));
    assert!(
        lines[0]["dropped"].as_u64().unwrap() > 150,
        "most of the 192-point history was dropped: {:?}",
        lines[0]
    );
    // The terminal event always survives truncation (it is the newest
    // line), so status/summary semantics are unharmed.
    assert_eq!(lines.last().unwrap()["event"].as_str(), Some("completed"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cluster_endpoints_404_without_a_backend() {
    let (client, handle, join) = boot(ServerConfig::default());
    let err = client.cluster_status().unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    let err = client.submit_distributed(small_spec()).unwrap_err();
    assert!(
        err.to_string().contains("400") && err.to_string().contains("coordinator"),
        "{err}"
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (client, _handle, join) = boot(ServerConfig::default());
    client.shutdown().unwrap();
    // run() returns; subsequent requests fail to connect or are
    // refused.
    join.join().unwrap();
    assert!(client.healthz().is_err());
}
