//! End-to-end tests: a real server on an ephemeral port, driven
//! through the real client over real sockets.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde_json::Value;
use synapse_server::{Client, Server, ServerConfig, ServerHandle};

/// Boot a server with the given config (addr forced ephemeral),
/// returning a client bound to it and the shutdown handle.
fn boot(mut config: ServerConfig) -> (Client, ServerHandle, std::thread::JoinHandle<()>) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind ephemeral");
    let handle = server.handle().expect("handle");
    let addr = server.local_addr().expect("addr");
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (Client::new(addr.to_string()), handle, join)
}

fn example_spec() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaign.toml");
    std::fs::read_to_string(path).expect("examples/campaign.toml readable")
}

/// A small sweep for the fast tests.
fn small_spec() -> &'static str {
    r#"
    name = "e2e-small"
    seed = 41
    machines = ["thinkie", "comet"]
    kernels = ["asm", "c"]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000]
    "#
}

/// Wait until the job reaches a terminal status, returning it.
fn await_terminal(client: &Client, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.status(id).expect("status");
        let state = status["status"]
            .as_str()
            .expect("status string")
            .to_string();
        if ["completed", "cancelled", "failed"].contains(&state.as_str()) {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn healthz_and_store_stats_respond() {
    let (client, handle, join) = boot(ServerConfig::default());
    let health = client.healthz().unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["jobs"].as_u64(), Some(0));
    let stats = client.store_stats().unwrap();
    assert_eq!(stats["results"].as_u64(), Some(0));
    // In-memory stores carry no manifest engine tag; the field is
    // present either way.
    assert!(stats["engine"].as_str().is_some());
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn example_campaign_streams_every_point_and_summary_is_byte_stable() {
    let (client, handle, join) = boot(ServerConfig::default());

    let reply = client.submit(&example_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let total = reply["points"].as_u64().unwrap() as usize;
    assert_eq!(total, 192, "examples/campaign.toml grid size");

    // Consume the stream: exactly one `point` event per grid point,
    // lifecycle events around them, every grid index exactly once.
    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str::<Value>(line).expect("event is JSON"));
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(192));
    assert_eq!(summary["simulated"].as_u64(), Some(192));

    let lines = lines.into_inner().unwrap();
    let points: Vec<&Value> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("point"))
        .collect();
    assert_eq!(points.len(), total, "one point event per grid point");
    let mut indices: Vec<u64> = points
        .iter()
        .map(|p| p["index"].as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..total as u64).collect::<Vec<_>>());
    assert!(
        lines
            .iter()
            .any(|l| l["event"].as_str() == Some("snapshot")),
        "192-point sweep crosses the snapshot cadence"
    );
    // `done` in arrival order is 1..=N: events streamed as they
    // landed, not replayed from a completed job.
    let dones: Vec<u64> = points.iter().map(|p| p["done"].as_u64().unwrap()).collect();
    assert_eq!(dones, (1..=total as u64).collect::<Vec<_>>());

    // Byte-stable report for a fixed seed: an identical submission on
    // a *fresh* server (fresh cache, different completion order)
    // serializes to the identical report.
    let report_a = client.report(&id).unwrap();
    let text_a = serde_json::to_string(&report_a).unwrap();
    let (client_b, handle_b, join_b) = boot(ServerConfig::default());
    let reply_b = client_b.submit(&example_spec()).unwrap();
    let id_b = reply_b["id"].as_str().unwrap().to_string();
    client_b.watch(&id_b, |_| true).unwrap();
    let text_b = serde_json::to_string(&client_b.report(&id_b).unwrap()).unwrap();
    assert_eq!(text_a, text_b, "deterministic report across servers");
    handle_b.shutdown();
    join_b.join().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn aggregates_endpoint_answers_mid_sweep_and_stream_mode_omits_points() {
    // A wide grid on a single slow worker so the sweep is reliably
    // still running when the mid-sweep queries land.
    let wide = r#"
    name = "e2e-aggregates"
    seed = 7
    machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
    kernels = ["asm", "c", "spin"]
    modes = ["openmp", "mpi"]
    threads = [1, 2, 4, 8]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000, 100000, 200000]
    "#;
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    let reply = client.submit(wide).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let total = reply["points"].as_u64().unwrap();

    // Poll /aggregates while the sweep runs: the view must answer
    // mid-sweep with a consistent partial document.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_mid_sweep = false;
    loop {
        let doc = client.aggregates(&id, None, None).unwrap();
        let done = doc["done"].as_u64().unwrap();
        let points = doc["points"].as_u64().unwrap();
        assert!(points <= done, "aggregated {points} of {done} done");
        assert_eq!(doc["v"].as_u64(), Some(1));
        if points > 0 && done < total {
            assert!(
                doc["overall"]["metrics"]["error_pct"]["n"]
                    .as_u64()
                    .unwrap()
                    > 0,
                "overall stats populated mid-sweep: {doc:?}"
            );
            assert!(
                !doc["slices"].as_array().unwrap().is_empty(),
                "per-axis slices populated mid-sweep"
            );
            saw_mid_sweep = true;
            break;
        }
        if ["completed", "cancelled", "failed"]
            .contains(&doc["status"].as_str().unwrap_or("unknown"))
        {
            break;
        }
        assert!(Instant::now() < deadline, "sweep never progressed");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_mid_sweep, "aggregates answered while the job ran");

    // Narrowing by axis keeps only that axis's slices; by metric keeps
    // only that metric's stats.
    let narrowed = client
        .aggregates(&id, Some("machine"), Some("error_pct"))
        .unwrap();
    let slices = narrowed["slices"].as_array().unwrap();
    assert!(!slices.is_empty());
    for slice in slices {
        assert_eq!(slice["axis"].as_str(), Some("machine"));
        let metrics = slice["metrics"].as_object().unwrap();
        assert!(metrics.contains_key("error_pct"));
        assert!(!metrics.contains_key("tx"));
    }
    // Unknown axis names are a 400 listing the valid ones, not a 500.
    let err = client.aggregates(&id, Some("bogus"), None).unwrap_err();
    assert!(err.to_string().contains("400"), "{err}");
    assert!(err.to_string().contains("machine"), "{err}");

    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("completed"));

    // After completion the view covers the whole grid, and the stream
    // in aggregate mode replays lifecycle + snapshots but no points.
    let final_doc = client.aggregates(&id, None, None).unwrap();
    assert_eq!(final_doc["points"].as_u64(), Some(total));
    let lines = Mutex::new(Vec::<Value>::new());
    let last = client
        .watch_aggregates(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).expect("event is JSON"));
            true
        })
        .unwrap();
    assert_eq!(last["event"].as_str(), Some("completed"));
    let lines = lines.into_inner().unwrap();
    assert!(
        lines.iter().all(|l| l["event"].as_str() != Some("point")),
        "aggregate stream carries no per-point lines"
    );
    let snapshots: Vec<&Value> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("snapshot"))
        .collect();
    assert!(!snapshots.is_empty(), "snapshot deltas present");
    // Snapshot `done` counters are monotone and the last one covers
    // the grid (the guaranteed terminal snapshot).
    let dones: Vec<u64> = snapshots
        .iter()
        .map(|s| s["done"].as_u64().unwrap())
        .collect();
    assert!(dones.windows(2).all(|w| w[0] <= w[1]), "{dones:?}");
    assert_eq!(*dones.last().unwrap(), total);

    // /aggregates on an unknown job is a 404.
    let err = client.aggregates("j999", None, None).unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn resubmitting_an_identical_spec_is_all_cache_hits() {
    let (client, handle, join) = boot(ServerConfig::default());
    let first = client.submit(small_spec()).unwrap();
    let id1 = first["id"].as_str().unwrap().to_string();
    let summary1 = client.watch(&id1, |_| true).unwrap();
    assert_eq!(summary1["cache_hit_rate"].as_f64(), Some(0.0));

    let second = client.submit(small_spec()).unwrap();
    let id2 = second["id"].as_str().unwrap().to_string();
    assert_ne!(id1, id2, "every submission is its own job");
    let summary2 = client.watch(&id2, |_| true).unwrap();
    assert_eq!(
        summary2["cache_hit_rate"].as_f64(),
        Some(1.0),
        "identical spec served entirely from the shared cache: {summary2:?}"
    );
    assert_eq!(summary2["simulated"].as_u64(), Some(0));

    // The status document agrees.
    let status = await_terminal(&client, &id2);
    assert_eq!(status["cache_hit_rate"].as_f64(), Some(1.0));
    // And the process-wide store holds exactly one copy of the grid.
    let stats = client.store_stats().unwrap();
    assert_eq!(stats["results"].as_u64(), Some(8));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_jobs_share_one_cache_handle() {
    // Two identical submissions racing on a 2-worker queue: together
    // they must simulate at most the grid once per point — every
    // overlap is a hit on the shared in-process cache. (Both jobs
    // running concurrently is the configuration under test; the
    // assertion below holds regardless of interleaving.)
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 2,
        job_workers: 2,
        ..Default::default()
    });
    let a = client.submit(small_spec()).unwrap();
    let b = client.submit(small_spec()).unwrap();
    let id_a = a["id"].as_str().unwrap().to_string();
    let id_b = b["id"].as_str().unwrap().to_string();
    let sa = await_terminal(&client, &id_a);
    let sb = await_terminal(&client, &id_b);
    assert_eq!(sa["status"].as_str(), Some("completed"));
    assert_eq!(sb["status"].as_str(), Some("completed"));
    let done_a = sa["done"].as_u64().unwrap();
    let done_b = sb["done"].as_u64().unwrap();
    assert_eq!(done_a + done_b, 16, "both jobs drained their grids");
    // The cache ends up with one entry per distinct point.
    let stats = client.store_stats().unwrap();
    assert_eq!(stats["results"].as_u64(), Some(8));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cancellation_stops_a_running_job_mid_grid() {
    // A wide grid on a single slow worker, cancelled as soon as the
    // first points land.
    let wide = r#"
    name = "e2e-cancel"
    seed = 5
    machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
    kernels = ["asm", "c", "spin"]
    modes = ["openmp", "mpi"]
    threads = [1, 2, 4, 8]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000, 100000, 200000]

    [[workloads]]
    app = "amber"
    steps = [10000, 50000, 100000, 200000]
    "#;
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    let reply = client.submit(wide).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let total = reply["points"].as_u64().unwrap();
    assert_eq!(total, 6 * 3 * 2 * 4 * 8);

    // Wait for the sweep to actually start landing points…
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&id).unwrap();
        if status["done"].as_u64().unwrap() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no point ever landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // …then cancel and confirm the job settles well short of the grid.
    let on_delete = client.cancel(&id).unwrap();
    assert!(["running", "cancelled"].contains(&on_delete["status"].as_str().unwrap()));
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("cancelled"));
    let done = status["done"].as_u64().unwrap();
    assert!(done < total, "cancelled mid-grid: {done}/{total}");
    // The stream of a cancelled job terminates with a cancelled event.
    let last = client.watch(&id, |_| true).unwrap();
    assert_eq!(last["event"].as_str(), Some("cancelled"));
    assert_eq!(last["done"].as_u64(), Some(done));
    // The report never materialized.
    let err = client.report(&id).unwrap_err();
    assert!(err.to_string().contains("409"), "{err}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cancelling_a_queued_job_settles_immediately() {
    // One queue worker busy with a long job; a second job queued
    // behind it is DELETEd before it ever runs.
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    let busy = client.submit(&example_spec()).unwrap();
    let queued = client.submit(small_spec()).unwrap();
    let queued_id = queued["id"].as_str().unwrap().to_string();
    let settled = client.cancel(&queued_id).unwrap();
    assert_eq!(settled["status"].as_str(), Some("cancelled"));
    assert_eq!(settled["done"].as_u64(), Some(0));
    let last = client.watch(&queued_id, |_| true).unwrap();
    assert_eq!(last["event"].as_str(), Some("cancelled"));
    // The busy job is unaffected.
    let busy_id = busy["id"].as_str().unwrap().to_string();
    let status = await_terminal(&client, &busy_id);
    assert_eq!(status["status"].as_str(), Some("completed"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn watch_callback_can_hang_up_early() {
    let (client, handle, join) = boot(ServerConfig::default());
    let id = client.submit(&example_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    // Stop after the first `point` event: watch must return promptly
    // with that event instead of draining the remaining grid.
    let mut seen = 0;
    let last = client
        .watch(&id, |line| {
            if line.contains("\"event\":\"point\"") {
                seen += 1;
                return false;
            }
            true
        })
        .unwrap();
    assert_eq!(seen, 1, "exactly one point consumed");
    assert_eq!(last["event"].as_str(), Some("point"));
    // The job itself is unaffected and runs to completion.
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("completed"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_submissions_get_4xx_not_jobs() {
    let (client, handle, join) = boot(ServerConfig::default());
    for (label, body) in [
        ("bad TOML", "name = \"x\"\nmachines = [unterminated"),
        ("bad JSON", "{\"name\": \"x\", \"machines\":"),
        ("unknown machine", "name = \"x\"\nmachines = [\"frontier\"]\nkernels = [\"asm\"]\n\n[[workloads]]\napp = \"gromacs\"\nsteps = [1000]\n"),
        ("unknown fs", "name = \"x\"\nfilesystems = [\"gpfs\"]\nmachines = [\"thinkie\"]\nkernels = [\"asm\"]\n\n[[workloads]]\napp = \"gromacs\"\nsteps = [1000]\n"),
        ("empty axis", "name = \"x\"\nmachines = [\"thinkie\"]\nkernels = []\n\n[[workloads]]\napp = \"gromacs\"\nsteps = [1000]\n"),
    ] {
        let err = client.submit(body).unwrap_err();
        assert!(
            err.to_string().contains("400"),
            "{label}: expected 400, got {err}"
        );
    }
    // Nothing leaked into the job table.
    let health = client.healthz().unwrap();
    assert_eq!(health["jobs"].as_u64(), Some(0));

    // Unknown endpoints and wrong methods are 404/405, not hangs.
    let missing = client.status("j999").unwrap_err();
    assert!(missing.to_string().contains("404"), "{missing}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn fs_and_atom_axes_are_submittable_over_the_wire() {
    let spec = r#"
    name = "e2e-axes"
    seed = 9
    machines = ["titan"]
    kernels = ["asm"]
    filesystems = ["default", "local"]
    atoms = ["all", "no-storage"]

    [[workloads]]
    app = "gromacs"
    steps = [10000]
    "#;
    let (client, handle, join) = boot(ServerConfig::default());
    let reply = client.submit(spec).unwrap();
    assert_eq!(reply["points"].as_u64(), Some(4), "2 fs × 2 atom sets");
    let id = reply["id"].as_str().unwrap().to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let report = client.report(&id).unwrap();
    let rows = report["results"].as_array().unwrap();
    assert_eq!(rows.len(), 4);
    let atoms: Vec<&str> = rows.iter().map(|r| r["atoms"].as_str().unwrap()).collect();
    assert!(atoms.contains(&"no-storage"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn persistent_cache_dir_survives_server_restarts() {
    let dir = std::env::temp_dir().join(format!("synapse-server-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let (client, handle, join) = boot(config());
    let id = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["simulated"].as_u64(), Some(8));
    handle.shutdown();
    join.join().unwrap();

    // A new process-analogue (fresh server, same dir) serves the same
    // spec without simulating anything.
    let (client2, handle2, join2) = boot(config());
    let id2 = client2.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary2 = client2.watch(&id2, |_| true).unwrap();
    assert_eq!(summary2["cache_hit_rate"].as_f64(), Some(1.0));
    assert_eq!(summary2["simulated"].as_u64(), Some(0));
    handle2.shutdown();
    join2.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lease_endpoint_sweeps_a_slice_with_full_results() {
    let (client, handle, join) = boot(ServerConfig::default());
    let spec = synapse_campaign::CampaignSpec::from_toml(small_spec()).unwrap();
    let total = spec.point_count();
    assert_eq!(total, 8);
    let lease = synapse_server::LeaseRequest {
        spec: spec.clone(),
        start: 2,
        end: 6,
    };
    let reply = client
        .submit_lease(&serde_json::to_string(&lease).unwrap())
        .unwrap();
    assert_eq!(reply["points"].as_u64(), Some(4), "{reply:?}");
    assert_eq!(reply["lease"]["start"].as_u64(), Some(2));
    assert_eq!(reply["grid_points"].as_u64(), Some(8));
    let id = reply["id"].as_str().unwrap().to_string();

    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).unwrap());
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(4));
    let lines = lines.into_inner().unwrap();
    // Lease streams batch their point results: with the default
    // `batch_points` (64) this 4-point lease lands as batch frames,
    // not per-point events (docs/PROTOCOL.md §4).
    assert!(
        !lines.iter().any(|l| l["event"].as_str() == Some("point")),
        "batched lease streams carry no per-point events"
    );
    let batches: Vec<&Value> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("batch"))
        .collect();
    assert!(!batches.is_empty());
    let mut entries = Vec::<Value>::new();
    for b in &batches {
        assert_eq!(b["v"].as_u64(), Some(synapse_server::BATCH_FRAME_VERSION));
        let pts = b["points"].as_array().unwrap();
        assert_eq!(b["n"].as_u64(), Some(pts.len() as u64));
        assert!(b["len"].as_u64().is_some());
        entries.extend(pts.iter().cloned());
    }
    assert_eq!(entries.len(), 4);
    // Batched results carry GLOBAL grid indices and the full result
    // payload the coordinator merges from.
    let mut indices: Vec<u64> = entries
        .iter()
        .map(|p| p["result"]["point"]["index"].as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![2, 3, 4, 5]);
    for p in &entries {
        let result = &p["result"];
        assert!(p["cached"].as_bool().is_some());
        assert!(result["tx"].as_f64().unwrap() > 0.0);
        assert!(result["consumed_cycles"].as_u64().is_some());
    }
    // A lease job has no report (merging is the coordinator's job).
    let err = client.report(&id).unwrap_err();
    assert!(err.to_string().contains("409"), "{err}");

    // Out-of-range and inverted leases are rejected outright.
    for (start, end) in [(6, 2), (0, 9), (8, 8)] {
        let bad = synapse_server::LeaseRequest {
            spec: spec.clone(),
            start,
            end,
        };
        let err = client
            .submit_lease(&serde_json::to_string(&bad).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("400"), "{start}..{end}: {err}");
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_points_one_keeps_the_legacy_per_point_stream() {
    let (client, handle, join) = boot(ServerConfig {
        batch_points: 1,
        ..Default::default()
    });
    let spec = synapse_campaign::CampaignSpec::from_toml(small_spec()).unwrap();
    let lease = synapse_server::LeaseRequest {
        spec,
        start: 0,
        end: 3,
    };
    let reply = client
        .submit_lease(&serde_json::to_string(&lease).unwrap())
        .unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).unwrap());
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let lines = lines.into_inner().unwrap();
    assert!(
        !lines.iter().any(|l| l["event"].as_str() == Some("batch")),
        "batch-points 1 disables frame batching"
    );
    let mut indices: Vec<u64> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("point"))
        .map(|p| p["index"].as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![0, 1, 2]);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_cap_sheds_excess_clients_with_503() {
    let (client, handle, join) = boot(ServerConfig {
        max_connections: 1,
        ..Default::default()
    });
    let addr = {
        // The client resolved the address already; rebuild it from the
        // handle for the raw socket.
        handle.addr()
    };
    // Occupy the single slot with an idle connection.
    let hog = std::net::TcpStream::connect(addr).unwrap();
    // Wait until the accept loop has picked it up, then every further
    // request bounces with 503.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.healthz() {
            Err(e) if e.to_string().contains("503") => break,
            _ => assert!(Instant::now() < deadline, "cap never engaged"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Releasing the slot restores service.
    drop(hog);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.healthz().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn event_ring_truncates_replay_for_late_watchers() {
    // A tiny ring: the 192-point example overflows it long before the
    // sweep ends, so a late watcher replays a truncation marker plus
    // the retained tail instead of the whole history.
    let (client, handle, join) = boot(ServerConfig {
        event_buffer: 16,
        ..Default::default()
    });
    let reply = client.submit(&example_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    await_terminal(&client, &id);

    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).unwrap());
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let lines = lines.into_inner().unwrap();
    assert_eq!(lines.len(), 17, "marker + 16 retained lines");
    assert_eq!(lines[0]["event"].as_str(), Some("truncated"));
    assert!(
        lines[0]["dropped"].as_u64().unwrap() > 150,
        "most of the 192-point history was dropped: {:?}",
        lines[0]
    );
    // The terminal event always survives truncation (it is the newest
    // line), so status/summary semantics are unharmed.
    assert_eq!(lines.last().unwrap()["event"].as_str(), Some("completed"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cluster_endpoints_404_without_a_backend() {
    let (client, handle, join) = boot(ServerConfig::default());
    let err = client.cluster_status().unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    let err = client.submit_distributed(small_spec()).unwrap_err();
    assert!(
        err.to_string().contains("400") && err.to_string().contains("coordinator"),
        "{err}"
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn submit_watch_streams_ack_then_events_on_one_connection() {
    let (client, handle, join) = boot(ServerConfig::default());
    let lines = Mutex::new(Vec::<String>::new());
    let (ack, summary) = client
        .submit_watch(small_spec(), |line| {
            lines.lock().unwrap().push(line.to_string());
            true
        })
        .unwrap();
    // The ack carries the submit reply fields and is the stream's
    // first line (CLI and CI pipe it straight through).
    assert_eq!(ack["points"].as_u64(), Some(8));
    let id = ack["id"].as_str().unwrap();
    let lines = lines.into_inner().unwrap();
    assert_eq!(
        serde_json::from_str::<Value>(&lines[0]).unwrap()["id"].as_str(),
        Some(id),
        "first delivered line is the ack: {:?}",
        lines[0]
    );
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(8));
    let points = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"point\""))
        .count();
    assert_eq!(points, 8, "events followed the ack on the same stream");
    // Errors still surface as plain status responses.
    let err = client.submit_watch("machines = [", |_| true).unwrap_err();
    assert!(err.to_string().contains("400"), "{err}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn half_closing_clients_still_get_their_responses() {
    // `printf ... | nc -N`, proxies, and strict HTTP clients shut
    // their write side as soon as the request is out. The reactor
    // must not treat that EOF as a hangup: the response — and a whole
    // event stream — must still be delivered.
    let (client, handle, join) = boot(ServerConfig {
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });

    // Plain request.
    let mut probe = TcpStream::connect(handle.addr()).unwrap();
    write!(probe, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    probe.shutdown(std::net::Shutdown::Write).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    probe.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200") && response.contains("\"status\":\"ok\""),
        "{response:?}"
    );

    // Event stream: half-close right after the GET, then receive the
    // whole job history through the terminal event.
    let id = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let mut watcher = TcpStream::connect(handle.addr()).unwrap();
    write!(
        watcher,
        "GET /campaigns/{id}/events HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .unwrap();
    watcher.shutdown(std::net::Shutdown::Write).unwrap();
    watcher
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut raw = Vec::new();
    watcher.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.contains("\"event\":\"completed\""), "{text:?}");
    assert!(text.ends_with("0\r\n\r\n"), "clean terminator");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (client, _handle, join) = boot(ServerConfig::default());
    client.shutdown().unwrap();
    // run() returns; subsequent requests fail to connect or are
    // refused.
    join.join().unwrap();
    assert!(client.healthz().is_err());
}

// ---------------------------------------------------------------------------
// Reactor-front coverage: slow-loris, backpressure, watcher scale,
// disconnect reclaim, and the connection-gauge regression.
// ---------------------------------------------------------------------------

use std::io::{Read, Write};
use std::net::TcpStream;

/// A ~55k-point grid: at cold debug-build sweep rates this runs for
/// tens of seconds, long enough to hold a queue worker busy while a
/// test inspects the server — always cancelled before teardown.
fn huge_spec() -> &'static str {
    r#"
    name = "e2e-huge"
    seed = 77
    machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
    kernels = ["asm", "c", "spin"]
    modes = ["openmp", "mpi"]
    threads = [1, 2, 4, 8]
    io_blocks = [65536, 1048576]
    sample_rates = [5.0, 10.0, 20.0]
    filesystems = ["default", "local", "lustre", "nfs"]
    atoms = ["all", "no-storage"]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000, 100000, 200000]

    [[workloads]]
    app = "amber"
    steps = [10000, 50000, 100000, 200000]
    "#
}

/// Open a raw socket to the server and send a `GET <path>` request.
fn raw_get(addr: std::net::SocketAddr, path: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").expect("raw send");
    stream
}

/// Clamp a socket's kernel receive buffer so TCP flow control pushes
/// back on the sender after a few KB instead of absorbing megabytes —
/// the only way to make a "watcher that stopped reading" observable
/// to the server under test.
fn shrink_rcvbuf(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    let size: libc::c_int = 4096;
    // SAFETY: passes a pointer to `size` (alive for the call) with the
    // matching c_int length; the fd belongs to the borrowed stream.
    let rc = unsafe {
        libc::setsockopt(
            stream.as_raw_fd(),
            libc::SOL_SOCKET,
            libc::SO_RCVBUF,
            (&size as *const libc::c_int).cast(),
            std::mem::size_of::<libc::c_int>() as libc::socklen_t,
        )
    };
    assert_eq!(rc, 0, "SO_RCVBUF");
}

/// Poll `/healthz` until `active_connections` satisfies `accept`, or
/// panic after `secs`. The probe's own connection counts: a quiet
/// server reports 1, not 0.
fn await_gauge(client: &Client, accept: impl Fn(u64) -> bool, secs: u64, what: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Ok(health) = client.healthz() {
            let active = health["active_connections"].as_u64().expect("gauge");
            if accept(active) {
                return active;
            }
            assert!(Instant::now() < deadline, "{what}: gauge stuck at {active}");
        } else {
            assert!(Instant::now() < deadline, "{what}: healthz unreachable");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn slow_loris_head_parses_within_budget_and_408s_past_it() {
    let (client, handle, join) = boot(ServerConfig {
        request_timeout: Duration::from_millis(600),
        ..Default::default()
    });
    let addr = handle.addr();

    // Byte-at-a-time inside the budget: the incremental parser
    // assembles the request and the reactor answers normally.
    let mut drip = TcpStream::connect(addr).unwrap();
    for byte in b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" {
        drip.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut response = String::new();
    drip.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    drip.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response:?}");

    // Stalling past the budget: the connection is answered 408 and
    // reclaimed — it cannot pin server resources indefinitely.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /healthz HT").unwrap();
    let started = Instant::now();
    let mut response = String::new();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 408"), "{response:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cut at the budget, not some longer socket timeout: {:?}",
        started.elapsed()
    );
    // An idle connection that never sends a byte is reclaimed on the
    // same budget.
    let silent = TcpStream::connect(addr).unwrap();
    await_gauge(&client, |active| active <= 1, 10, "silent conn reclaim");
    drop(silent);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stalled_watcher_gets_backpressure_then_truncated_tail() {
    // Tiny ring + tiny high-water mark against a grid whose event
    // history (~20 MB) dwarfs what the kernel will buffer for a
    // zero-window peer: once the watcher stops reading, the server
    // must stop pulling ring events for it (bounded memory), keep the
    // sweep going, and on resume hand it a well-formed stream —
    // truncation marker, retained tail, terminal event, terminator.
    let (client, handle, join) = boot(ServerConfig {
        event_buffer: 64,
        stream_high_water: 4 * 1024,
        // The deliberate stall below outlives the default reclaim.
        write_stall_timeout: Duration::from_secs(300),
        ..Default::default()
    });
    let reply = client.submit(huge_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let total = reply["points"].as_u64().unwrap();
    assert!(total > 50_000, "{total}");

    // Attach with a clamped receive window, then stall (never read).
    let mut watcher = TcpStream::connect(handle.addr()).unwrap();
    shrink_rcvbuf(&watcher);
    write!(
        watcher,
        "GET /campaigns/{id}/events HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .unwrap();

    // Let the sweep land far more points than kernel buffers + the
    // high-water mark can hold (~4 MB / a few thousand events): the
    // ring must truncate well past the stalled watcher's cursor.
    let deadline = Instant::now() + Duration::from_secs(300);
    let done = loop {
        let status = client.status(&id).expect("status");
        let done = status["done"].as_u64().unwrap();
        if done >= 30_000 {
            break done;
        }
        assert!(
            ["queued", "running"].contains(&status["status"].as_str().unwrap()),
            "sweep must survive its stalled watcher: {status:?}"
        );
        assert!(Instant::now() < deadline, "sweep too slow ({done} points)");
        std::thread::sleep(Duration::from_millis(50));
    };
    client.cancel(&id).unwrap();

    // Resume: drain the stream to its end.
    watcher
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut raw = Vec::new();
    watcher.read_to_end(&mut raw).expect("drain stream");
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.ends_with("0\r\n\r\n"),
        "stream terminates cleanly: ...{:?}",
        &text[text.len().saturating_sub(60)..]
    );
    assert!(
        text.contains("\"event\":\"truncated\""),
        "ring outran the stalled watcher, so the marker must appear \
         ({} bytes received of ~{} swept)",
        raw.len(),
        done * 300,
    );
    assert!(
        text.contains("\"event\":\"cancelled\"") || text.contains("\"event\":\"completed\""),
        "terminal event survives truncation (newest ring line)"
    );
    // Backpressure bound: the watcher received kernel-buffered bytes +
    // the high-water mark + the retained tail — not the full history.
    assert!(
        raw.len() < (done as usize * 300) / 2,
        "received {} bytes; an unbounded buffer would have sent ~{}",
        raw.len(),
        done * 300
    );

    handle.shutdown();
    join.join().unwrap();
}
/// Raise the fd soft limit toward the hard limit and report how many
/// concurrent watcher sockets the test can afford (each one costs two
/// fds: client end + server end).
fn affordable_watchers(want: usize) -> usize {
    let mut lim = libc::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: lim is a valid writable rlimit out-parameter.
    if unsafe { libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) } != 0 {
        return 64;
    }
    let target = (2 * want as u64 + 512).min(lim.rlim_max);
    if lim.rlim_cur < target {
        let raised = libc::rlimit {
            rlim_cur: target,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: raised and lim are valid rlimit structs, read-only
        // and writable respectively, both alive for the calls.
        unsafe { libc::setrlimit(libc::RLIMIT_NOFILE, &raised) };
        // SAFETY: as above; re-reads the effective limit.
        unsafe { libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) };
    }
    ((lim.rlim_cur.saturating_sub(512)) / 2).min(want as u64) as usize
}

#[test]
fn a_thousand_idle_watchers_cost_fds_not_threads() {
    let watchers = affordable_watchers(1000);
    assert!(
        watchers >= 256,
        "fd limit too low to say anything ({watchers})"
    );
    let (client, handle, join) = boot(ServerConfig {
        max_connections: watchers + 64,
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    // One long-running hog occupies the single queue worker; the
    // watched job sits queued behind it, so its stream carries only
    // heartbeats — the watchers are genuinely idle.
    let hog = client.submit(huge_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let quiet = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();

    // The server reports its own live thread count through /healthz
    // (it runs in this test process, so this is the same number the
    // smoke test asserts on in CI).
    let threads_before = client.healthz().unwrap()["threads"].as_u64().unwrap();
    let mut sockets = Vec::with_capacity(watchers);
    for _ in 0..watchers {
        sockets.push(raw_get(
            handle.addr(),
            &format!("/campaigns/{quiet}/events"),
        ));
    }
    // Every watcher is held concurrently (gauge counts them + probe).
    await_gauge(
        &client,
        |active| active >= watchers as u64,
        60,
        "watchers attached",
    );
    let threads_after = client.healthz().unwrap()["threads"].as_u64().unwrap();
    assert!(
        threads_after < threads_before + 100,
        "{watchers} watchers must not spawn per-connection threads \
         ({threads_before} -> {threads_after})"
    );

    // Cancel the watched job: every stream ends with the terminal
    // event and a clean chunked terminator (sampled).
    client.cancel(&quiet).unwrap();
    for (i, socket) in sockets.iter_mut().enumerate() {
        if i % 50 != 0 {
            continue; // sample every 50th stream end to end
        }
        socket
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut raw = Vec::new();
        socket.read_to_end(&mut raw).expect("watcher drains");
        let text = String::from_utf8_lossy(&raw);
        // Cancelled in the expected interleaving; completed if this
        // machine raced the sweep through first. Either way the
        // stream must end with a terminal event and a clean
        // terminator.
        assert!(
            text.contains("\"event\":\"cancelled\"") || text.contains("\"event\":\"completed\""),
            "watcher {i}: {text:?}"
        );
        assert!(text.ends_with("0\r\n\r\n"), "watcher {i} terminator");
    }
    drop(sockets);
    client.cancel(&hog).unwrap();
    // Every slot is reclaimed.
    await_gauge(&client, |active| active <= 1, 60, "slots reclaimed");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn mid_stream_disconnect_reclaims_the_connection_slot() {
    let (client, handle, join) = boot(ServerConfig {
        max_connections: 4,
        queue_workers: 1,
        job_workers: 1,
        ..Default::default()
    });
    // A queued job's stream stays open indefinitely (heartbeats only).
    let hog = client.submit(huge_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let quiet = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let watcher = raw_get(handle.addr(), &format!("/campaigns/{quiet}/events"));
    await_gauge(&client, |active| active >= 2, 30, "watcher attached");

    // The watcher vanishes mid-stream: the reactor notices the hangup
    // and frees the slot without waiting for the job to end.
    drop(watcher);
    await_gauge(&client, |active| active <= 1, 30, "slot reclaimed");

    client.cancel(&quiet).unwrap();
    client.cancel(&hog).unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn connection_gauge_survives_a_cap_hammering() {
    // Satellite regression: every accepted connection — served, shed
    // with 503, shed by read-timeout, or dropped cold past 2× — must
    // decrement `active_connections` exactly once. After the storm the
    // gauge returns to just the probe connection.
    let (client, handle, join) = boot(ServerConfig {
        max_connections: 2,
        request_timeout: Duration::from_millis(300),
        ..Default::default()
    });
    let addr = handle.addr();
    for round in 0..25 {
        let mut batch = Vec::new();
        for kind in 0..6 {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                continue;
            };
            match kind % 3 {
                // A real request (may be served or shed 503).
                0 => {
                    let _ = write!(stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                }
                // A partial request left to the read-timeout path.
                1 => {
                    let _ = stream.write_all(b"GET /heal");
                }
                // Connects and says nothing.
                _ => {}
            }
            batch.push(stream);
        }
        // Let some batches linger past the request timeout, drop
        // others immediately.
        if round % 2 == 0 {
            std::thread::sleep(Duration::from_millis(50));
        }
        drop(batch);
    }
    // Exactly-once accounting: the gauge settles back to the probe
    // itself, never negative (a usize underflow would read as huge).
    let settled = await_gauge(&client, |active| active <= 1, 30, "hammered gauge");
    assert!(settled <= 1, "{settled}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn a_silent_server_is_detected_as_dead_within_the_heartbeat_budget() {
    // A fake "server" that speaks just enough protocol to establish an
    // event stream, then goes mute — a frozen worker or a partitioned
    // network, from the client's point of view.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mute = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut scratch = [0u8; 1024];
        let _ = stream.read(&mut scratch);
        let _ = stream.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
              Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
              14\r\n{\"event\":\"started\"}\n\r\n",
        );
        // Hold the socket open, silently, longer than the client's
        // patience.
        std::thread::sleep(Duration::from_secs(8));
    });

    let client = Client::new(addr.to_string()).with_stream_silence(Duration::from_millis(400));
    let started = Instant::now();
    let err = client.watch("j1", |_| true).unwrap_err();
    assert!(err.is_disconnect(), "{err}");
    assert!(
        err.to_string().contains("presumed dead"),
        "retriable disconnect, not a bare i/o error: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "detected in ~the silence threshold, not the old flat 60 s \
         socket timeout: {:?}",
        started.elapsed()
    );
    mute.join().unwrap();
}

// ---------------------------------------------------------------------------
// /metrics: Prometheus exposition of the process-wide registry.
// ---------------------------------------------------------------------------

/// Validate Prometheus 0.0.4 text shape: every line is `# HELP`,
/// `# TYPE` (counter|gauge|histogram), or a `name{labels} value`
/// sample whose family was declared. Returns the distinct series
/// (name + label set) seen.
fn assert_valid_exposition(text: &str) -> std::collections::HashSet<String> {
    let mut types: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    let mut series = std::collections::HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line has a name");
            let kind = it.next().expect("TYPE line has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE in {line:?}"
            );
            types.insert(name, kind);
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            assert!(
                rest.split_whitespace().nth(1).is_some(),
                "HELP without text: {line:?}"
            );
        } else {
            assert!(!line.starts_with('#'), "unknown comment line {line:?}");
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable sample value in {line:?}"
            );
            let name = name_part.split('{').next().expect("sample has a name");
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|b| types.get(b).copied() == Some("histogram"))
                .unwrap_or(name);
            assert!(
                types.contains_key(base),
                "sample {name} has no preceding TYPE"
            );
            series.insert(name_part.to_string());
        }
    }
    series
}

/// The first sample value for an exact series name (unlabeled).
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .filter_map(|l| l.split_once(' '))
        .find(|(n, _)| *n == name)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("series {name} missing from scrape"))
}

#[test]
fn metrics_scrape_is_valid_exposition_and_spans_subsystems() {
    let (client, handle, join) = boot(ServerConfig::default());
    // One completed sweep populates the engine-side series.
    let id = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    await_terminal(&client, &id);
    let text = client.metrics().unwrap();
    let series = assert_valid_exposition(&text);
    assert!(
        series.len() >= 20,
        "expected >= 20 distinct series, got {}",
        series.len()
    );
    // Engine, server and store series all present in one scrape (the
    // cluster family needs a coordinator; cluster_e2e covers it).
    for name in [
        "synapse_engine_points_total",
        "synapse_engine_cache_misses_total",
        "synapse_engine_simulate_seconds_count",
        "synapse_server_connections_active",
        "synapse_server_connections_accepted_total",
        "synapse_server_uptime_seconds",
        "synapse_store_lock_acquisitions_total",
        "synapse_store_reconciled_docs_total",
    ] {
        assert!(
            text.lines()
                .any(|l| l.split(['{', ' ']).next() == Some(name)),
            "series {name} missing from scrape"
        );
    }
    // The per-endpoint latency family saw the routes this test hit.
    assert!(
        text.contains("synapse_server_request_seconds_bucket{endpoint=\"/metrics\""),
        "request latency histogram missing its /metrics label"
    );
    // Stage timing histograms carry one observation per stage per run.
    assert!(metric_value(&text, "synapse_engine_campaigns_total") >= 1.0);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_counters_are_monotone_under_concurrent_scrapes_of_a_live_job() {
    let (client, handle, join) = boot(ServerConfig::default());
    let id = client.submit(huge_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    // Let the sweep actually start moving before scraping.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&id).unwrap();
        if status["done"].as_u64().unwrap_or(0) > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "55k-point job never progressed");
        std::thread::sleep(Duration::from_millis(20));
    }
    // N concurrent scrapers against the active job: every scrape is a
    // complete, valid exposition (the render is one atomic body).
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = &client;
            scope.spawn(move || {
                for _ in 0..3 {
                    let text = client.metrics().expect("scrape under load");
                    assert_valid_exposition(&text);
                }
            });
        }
    });
    // Counters only move one way while the sweep runs.
    let monotone = [
        "synapse_engine_points_total",
        "synapse_engine_simulate_seconds_count",
        "synapse_server_connections_accepted_total",
        "synapse_server_stream_bytes_total",
    ];
    let first = client.metrics().unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let second = client.metrics().unwrap();
    for name in monotone {
        let (a, b) = (metric_value(&first, name), metric_value(&second, name));
        assert!(b >= a, "{name} went backwards: {a} -> {b}");
    }
    assert!(
        metric_value(&second, "synapse_engine_points_total")
            > metric_value(&first, "synapse_engine_points_total"),
        "an active sweep should land points between scrapes"
    );
    client.cancel(&id).unwrap();
    await_terminal(&client, &id);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn warm_resubmit_moves_the_cache_hit_counter() {
    let (client, handle, join) = boot(ServerConfig::default());
    let id = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let total = await_terminal(&client, &id)["total"].as_u64().unwrap();
    let cold = metric_value(
        &client.metrics().unwrap(),
        "synapse_engine_cache_hits_total",
    );
    let id2 = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let warm_status = await_terminal(&client, &id2);
    assert_eq!(warm_status["cache_hits"].as_u64(), Some(total));
    let warm = metric_value(
        &client.metrics().unwrap(),
        "synapse_engine_cache_hits_total",
    );
    // The registry is process-wide (other tests in this binary may be
    // sweeping concurrently), so assert the floor, not equality.
    assert!(
        warm >= cold + total as f64,
        "warm resubmit of {total} points moved hits only {cold} -> {warm}"
    );
    handle.shutdown();
    join.join().unwrap();
}

/// Poll for the sealed trace: there is a small window where the job's
/// status is terminal but the queue worker has not yet rendered the
/// trace document.
fn await_trace(client: &Client, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.trace(id) {
            Ok(text) => return text,
            Err(e) => assert!(
                Instant::now() < deadline,
                "trace for {id} never sealed: {e}"
            ),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn recorded_job_serves_a_strict_replayable_trace() {
    use synapse_trace::{ReplayMode, Trace};
    let (client, handle, join) = boot(ServerConfig::default());

    let ack = client.submit_recorded(small_spec(), false).unwrap();
    let id = ack["id"].as_str().unwrap().to_string();
    let trace_id = ack["trace"]
        .as_str()
        .expect("ack carries trace id")
        .to_string();
    await_terminal(&client, &id);

    let text = await_trace(&client, &id);
    let trace = Trace::parse(&text).unwrap();
    assert_eq!(trace.header.trace_id, trace_id);
    let summary = trace.verify(ReplayMode::Strict).unwrap();
    assert!(summary.is_clean());
    assert_eq!(summary.points, 8);

    // The reconstructed report equals the one the server assembled
    // from the live sweep — the simulator never re-ran.
    let pretty = trace
        .reconstruct_report()
        .unwrap()
        .to_json_pretty()
        .unwrap();
    let reconstructed: Value = serde_json::from_str(&pretty).unwrap();
    assert_eq!(reconstructed, client.report(&id).unwrap());

    // A job submitted without ?record=1 has no trace to serve.
    let plain = client.submit(small_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    await_terminal(&client, &plain);
    let err = client.trace(&plain).unwrap_err();
    assert!(
        err.to_string().contains("not recorded"),
        "unexpected error: {err}"
    );

    handle.shutdown();
    join.join().unwrap();
}
