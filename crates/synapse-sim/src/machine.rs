//! Whole-machine resource models.
//!
//! A [`MachineModel`] combines a CPU model, per-kernel execution
//! characteristics, memory and filesystem models, and parallel-scaling
//! parameters. Simulated application execution and simulated emulation
//! both price their resource consumption against these models, which
//! is what makes the cross-resource experiments (E.2–E.5) runnable
//! without the original testbeds.
//!
//! ## Mechanisms (not curves)
//!
//! * **Emulation cycle overshoot** (E.3): a compute kernel executes in
//!   whole work units (one matrix multiplication) of `unit_cycles`
//!   cycles, each carrying a fractional loop/bookkeeping overhead.
//!   Consumed cycles are `ceil(directed/unit) × unit × (1+overhead)` —
//!   for short runs quantization dominates (large error), for long
//!   runs the error converges to the overhead fraction, exactly the
//!   convergence shape of Figs 8–10.
//! * **Cross-machine Tx offsets** (E.2): wall time of a cycle budget is
//!   `cycles / (freq × efficiency)`. The application and each kernel
//!   have machine-specific efficiencies (compile-time optimization,
//!   cache behaviour), so emulation is systematically faster on
//!   machines where the default kernel out-runs the application
//!   (Stampede) and slower where it under-runs it (Archer).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use synapse_model::SystemInfo;

use crate::fsmodel::{FsKind, FsModel, IoOp};
use crate::parallel::{ParallelMode, ParallelModel};

/// Which compute implementation is consuming cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// The real application (used when simulating application runs).
    Application,
    /// The paper's C matrix-multiplication kernel: matrices do *not*
    /// fit in cache, more realistic memory access.
    CMatmul,
    /// The paper's assembly kernel: small in-cache matrices, maximum
    /// efficiency.
    AsmMatmul,
}

impl KernelClass {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Application => "application",
            KernelClass::CMatmul => "C",
            KernelClass::AsmMatmul => "ASM",
        }
    }
}

/// Execution characteristics of one kernel class on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Instructions retired per used cycle (Fig. 11's metric).
    pub ipc: f64,
    /// Efficiency: used cycles / (used + stalled) — wall time of a
    /// cycle budget is `cycles / (freq × efficiency)`.
    pub efficiency: f64,
    /// Converged fractional cycle overshoot of the emulation (0 for
    /// the application itself).
    pub overhead_frac: f64,
    /// Work quantum in cycles (one matrix multiplication); drives the
    /// large relative error of very short emulations.
    pub unit_cycles: u64,
}

impl KernelProfile {
    /// Cycles actually consumed when the emulator directs
    /// `directed_cycles` at this kernel.
    ///
    /// ```
    /// use synapse_sim::{comet, KernelClass};
    /// let machine = comet();
    /// let asm = machine.kernel(KernelClass::AsmMatmul);
    /// // Long emulations converge to the kernel's overhead fraction
    /// // (~14.5 % for the ASM kernel on Comet, Fig. 8):
    /// let directed = 100_000_000_000u64;
    /// let err = asm.consumed_cycles(directed) as f64 / directed as f64 - 1.0;
    /// assert!((err - 0.145).abs() < 0.01);
    /// ```
    pub fn consumed_cycles(&self, directed_cycles: u64) -> u64 {
        if directed_cycles == 0 {
            return 0;
        }
        let unit = self.unit_cycles.max(1);
        let units = directed_cycles.div_ceil(unit);
        let raw = units.saturating_mul(unit);
        (raw as f64 * (1.0 + self.overhead_frac.max(0.0))) as u64
    }
}

/// CPU-level parameters of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Advertised base clock in Hz (Table "System" metric).
    pub nominal_freq_hz: f64,
    /// Sustained effective clock in Hz (the paper measures e.g.
    /// ~2.88–2.90 GHz on Comet, ~3.58–3.60 GHz on Supermic under
    /// turbo).
    pub effective_freq_hz: f64,
    /// Cores per node.
    pub ncores: u32,
}

/// A complete machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Machine name as the paper uses it ("thinkie", "stampede", ...).
    pub name: String,
    /// CPU parameters.
    pub cpu: CpuModel,
    /// Total node memory in bytes.
    pub total_memory: u64,
    /// Sustained memory bandwidth in bytes/second (prices the memory
    /// atom's allocation/touch traffic).
    pub mem_bandwidth: f64,
    /// Loopback/interconnect bandwidth in bytes/second (network atom).
    pub net_bandwidth: f64,
    /// Per-kernel execution characteristics.
    pub kernels: BTreeMap<KernelClass, KernelProfile>,
    /// Filesystems reachable from a compute node.
    pub filesystems: Vec<FsModel>,
    /// Which filesystem I/O lands on by default (the paper's
    /// experiment notes: local on Stampede/Archer, Lustre on
    /// Supermic/Titan, NFS on Comet).
    pub default_fs: FsKind,
    /// OpenMP-analogue scaling parameters.
    pub openmp: ParallelModel,
    /// MPI-analogue scaling parameters.
    pub mpi: ParallelModel,
    /// Factor on application cycle counts relative to the profiling
    /// machine (captures compile-time optimization differences, §4.5
    /// "Application Optimization").
    pub app_cycle_factor: f64,
}

impl MachineModel {
    /// The kernel profile for a class; falls back to the application
    /// profile when a machine has no entry for a kernel.
    pub fn kernel(&self, class: KernelClass) -> KernelProfile {
        self.kernels
            .get(&class)
            .or_else(|| self.kernels.get(&KernelClass::Application))
            .copied()
            .unwrap_or(KernelProfile {
                ipc: 2.0,
                efficiency: 0.7,
                overhead_frac: 0.0,
                unit_cycles: 1,
            })
    }

    /// The filesystem model of a kind, if this machine has one.
    pub fn fs(&self, kind: FsKind) -> Option<&FsModel> {
        self.filesystems.iter().find(|f| f.kind == kind)
    }

    /// The default filesystem model (always present by construction).
    pub fn default_fs_model(&self) -> &FsModel {
        self.fs(self.default_fs)
            .or_else(|| self.filesystems.first())
            .expect("machine has at least one filesystem")
    }

    /// Wall-clock seconds to execute a cycle budget with a kernel on a
    /// single core: `cycles / (freq × efficiency)`.
    pub fn compute_time(&self, cycles: u64, class: KernelClass) -> f64 {
        let k = self.kernel(class);
        cycles as f64 / (self.cpu.effective_freq_hz * k.efficiency.max(1e-6))
    }

    /// Wall-clock seconds for the *emulation* of a directed cycle
    /// budget: quantization/overhead first, then pricing.
    pub fn emulation_compute_time(&self, directed_cycles: u64, class: KernelClass) -> f64 {
        let consumed = self.kernel(class).consumed_cycles(directed_cycles);
        self.compute_time(consumed, class)
    }

    /// Seconds to move `bytes` through the memory subsystem.
    pub fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem_bandwidth.max(1.0)
    }

    /// Seconds to move `bytes` over the loopback/interconnect.
    pub fn net_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.net_bandwidth.max(1.0)
    }

    /// Seconds of storage I/O on a chosen filesystem.
    pub fn io_time(&self, bytes: u64, block: u64, op: IoOp, fs: FsKind) -> f64 {
        match self.fs(fs) {
            Some(model) => model.io_time(bytes, block, op),
            None => self.default_fs_model().io_time(bytes, block, op),
        }
    }

    /// Scaling model for a parallel mode.
    pub fn parallel(&self, mode: ParallelMode) -> &ParallelModel {
        match mode {
            ParallelMode::OpenMp => &self.openmp,
            ParallelMode::Mpi => &self.mpi,
        }
    }

    /// The host facts recorded in profiles taken "on" this machine.
    pub fn system_info(&self) -> SystemInfo {
        SystemInfo {
            hostname: self.name.clone(),
            ncores: self.cpu.ncores,
            max_freq_hz: self.cpu.nominal_freq_hz,
            total_memory: self.total_memory,
            load_avg: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn consumed_cycles_quantize_and_overshoot() {
        let k = KernelProfile {
            ipc: 3.0,
            efficiency: 0.9,
            overhead_frac: 0.10,
            unit_cycles: 1000,
        };
        // 1 cycle directed -> one full unit plus overhead.
        assert_eq!(k.consumed_cycles(1), 1100);
        // Exactly one unit.
        assert_eq!(k.consumed_cycles(1000), 1100);
        // Large budgets converge to the overhead fraction.
        let directed = 10_000_000u64;
        let consumed = k.consumed_cycles(directed);
        let err = consumed as f64 / directed as f64 - 1.0;
        assert!((err - 0.10).abs() < 0.001, "converged error {err}");
        assert_eq!(k.consumed_cycles(0), 0);
    }

    #[test]
    fn error_decreases_with_budget() {
        let k = KernelProfile {
            ipc: 3.0,
            efficiency: 0.9,
            overhead_frac: 0.05,
            unit_cycles: 1_000_000,
        };
        let err = |d: u64| k.consumed_cycles(d) as f64 / d as f64 - 1.0;
        assert!(err(1_500_000) > err(15_000_000));
        assert!(err(15_000_000) > err(1_500_000_000) - 1e-9);
        assert!((err(1_500_000_000) - 0.05).abs() < 0.01);
    }

    #[test]
    fn compute_time_prices_by_efficiency() {
        let m = catalog::thinkie();
        let asm = m.kernel(KernelClass::AsmMatmul);
        let c = m.kernel(KernelClass::CMatmul);
        // Higher efficiency -> less wall time for the same cycles.
        assert!(asm.efficiency > c.efficiency);
        assert!(
            m.compute_time(1_000_000_000, KernelClass::AsmMatmul)
                < m.compute_time(1_000_000_000, KernelClass::CMatmul)
        );
    }

    #[test]
    fn kernel_falls_back_to_application() {
        let mut m = catalog::thinkie();
        m.kernels.remove(&KernelClass::CMatmul);
        let k = m.kernel(KernelClass::CMatmul);
        assert_eq!(k, m.kernel(KernelClass::Application));
    }

    #[test]
    fn default_fs_model_is_present_for_all_catalog_machines() {
        for name in catalog::MACHINE_NAMES {
            let m = catalog::machine_by_name(name).unwrap();
            let fsm = m.default_fs_model();
            assert!(fsm.read_bandwidth > 0.0, "{name}");
            // io_time falls back to default for unknown fs kinds.
            let t = m.io_time(1 << 20, 4096, IoOp::Write, m.default_fs);
            assert!(t > 0.0);
        }
    }

    #[test]
    fn system_info_reflects_model() {
        let m = catalog::supermic();
        let info = m.system_info();
        assert_eq!(info.hostname, "supermic");
        assert_eq!(info.ncores, 20);
        assert!(info.total_memory >= 100 << 30);
    }

    #[test]
    fn mem_and_net_time_scale_linearly() {
        let m = catalog::thinkie();
        assert!((m.mem_time(2 << 20) / m.mem_time(1 << 20) - 2.0).abs() < 1e-9);
        assert!((m.net_time(2 << 20) / m.net_time(1 << 20) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_names() {
        assert_eq!(KernelClass::CMatmul.name(), "C");
        assert_eq!(KernelClass::AsmMatmul.name(), "ASM");
        assert_eq!(KernelClass::Application.name(), "application");
    }
}
