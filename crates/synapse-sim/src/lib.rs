#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Resource models of the paper's experiment platforms.
//!
//! The paper evaluates Synapse on six machines — Thinkie (the authors'
//! laptop), Stampede, Archer, Supermic, Comet and Titan — and three
//! filesystem classes (node-local disks, Lustre, NFS). None of those
//! testbeds are available to this reproduction, so this crate models
//! them parametrically (the substitution is documented in DESIGN.md):
//!
//! * [`machine`] — CPU models (nominal and effective clock, core
//!   count, per-kernel IPC and cycle-overhead characteristics) and
//!   whole-machine models combining CPU, memory and filesystems.
//! * [`fsmodel`] — latency/bandwidth/cache models of the storage
//!   systems, used by E.5's block-size sweeps.
//! * [`parallel`] — thread (OpenMP-analogue) and process
//!   (MPI-analogue) scaling models with machine-specific overheads,
//!   used by E.4.
//! * [`vclock`] — the virtual clock that simulated executions advance.
//! * [`noise`] — deterministic measurement noise so repeated simulated
//!   runs produce realistic error bars.
//! * [`catalog`] — the six machines with parameters calibrated from
//!   the paper's own reported numbers (clock speeds, IPC rates,
//!   convergence offsets).
//!
//! The models are *mechanistic*: experiment outcomes (who wins, where
//! error converges) emerge from parameters like per-kernel loop
//! overhead and per-machine optimization factors, not from hard-coded
//! result curves.

pub mod catalog;
pub mod fsmodel;
pub mod machine;
pub mod noise;
pub mod parallel;
pub mod vclock;

pub use catalog::{
    archer, comet, machine_by_name, stampede, supermic, thinkie, titan, MACHINE_NAMES,
};
pub use fsmodel::{FsKind, FsModel, IoOp};
pub use machine::{CpuModel, KernelClass, KernelProfile, MachineModel};
pub use noise::Noise;
pub use parallel::{ParallelMode, ParallelModel};
pub use vclock::VirtualClock;
