//! The six experiment platforms of the paper, as parametric models.
//!
//! Hardware facts (cores, nominal clocks, memory, default filesystems)
//! come from the paper's "Experiment Platform" section. Behavioural
//! parameters (effective clocks, per-kernel IPC and overhead,
//! efficiencies, scaling overheads) are calibrated against the numbers
//! the paper itself reports — e.g. the measured ~2.88–2.90 GHz clock on
//! Comet, the per-kernel IPC rates of Fig. 11, the converged error
//! fractions of Figs 8–10, and the E.2 portability offsets (~-40 % on
//! Stampede, ~+33 % on Archer). See DESIGN.md §1 for the substitution
//! rationale.

use std::collections::BTreeMap;

use crate::fsmodel::{FsKind, FsModel};
use crate::machine::{CpuModel, KernelClass, KernelProfile, MachineModel};
use crate::parallel::ParallelModel;

/// Names of all modelled machines, as the paper spells them.
pub const MACHINE_NAMES: [&str; 6] = [
    "thinkie", "stampede", "archer", "supermic", "comet", "titan",
];

/// Look a machine model up by (case-insensitive) name.
pub fn machine_by_name(name: &str) -> Option<MachineModel> {
    match name.to_ascii_lowercase().as_str() {
        "thinkie" => Some(thinkie()),
        "stampede" => Some(stampede()),
        "archer" => Some(archer()),
        "supermic" => Some(supermic()),
        "comet" => Some(comet()),
        "titan" => Some(titan()),
        _ => None,
    }
}

fn kernels(
    app: KernelProfile,
    c: KernelProfile,
    asm: KernelProfile,
) -> BTreeMap<KernelClass, KernelProfile> {
    let mut m = BTreeMap::new();
    m.insert(KernelClass::Application, app);
    m.insert(KernelClass::CMatmul, c);
    m.insert(KernelClass::AsmMatmul, asm);
    m
}

const GIB: u64 = 1 << 30;

/// Lustre behaves similarly on Titan and Supermic ("Lustre performs
/// very similar for both resources", E.5) — one shared model.
fn lustre() -> FsModel {
    FsModel {
        kind: FsKind::Lustre,
        read_latency: 1.5e-4,
        write_latency: 1.5e-3,
        read_bandwidth: 600e6,
        write_bandwidth: 250e6,
    }
}

/// Thinkie: the profiling host. Intel Core i7 M620 (4 hardware
/// threads), 8 GB memory, Intel 320-series SSD, Debian Linux.
pub fn thinkie() -> MachineModel {
    MachineModel {
        name: "thinkie".into(),
        cpu: CpuModel {
            nominal_freq_hz: 2.67e9,
            effective_freq_hz: 2.67e9,
            ncores: 4,
        },
        total_memory: 8 * GIB,
        mem_bandwidth: 8e9,
        net_bandwidth: 1e9,
        kernels: kernels(
            KernelProfile {
                ipc: 2.00,
                efficiency: 0.70,
                overhead_frac: 0.0,
                unit_cycles: 1,
            },
            KernelProfile {
                ipc: 2.40,
                efficiency: 0.70,
                overhead_frac: 0.04,
                unit_cycles: 5_000_000,
            },
            // The ASM kernel was written/calibrated on this host: the
            // emulation agrees with the application (Fig. 5).
            KernelProfile {
                ipc: 3.00,
                efficiency: 0.755,
                overhead_frac: 0.08,
                unit_cycles: 2_000_000,
            },
        ),
        filesystems: vec![FsModel {
            kind: FsKind::Local,
            read_latency: 4e-5,
            write_latency: 1.2e-4,
            read_bandwidth: 270e6,
            write_bandwidth: 200e6,
        }],
        default_fs: FsKind::Local,
        openmp: ParallelModel {
            startup_fixed: 0.05,
            startup_per_worker: 0.01,
            contention: 1.0,
        },
        mpi: ParallelModel {
            startup_fixed: 0.3,
            startup_per_worker: 0.05,
            contention: 0.8,
        },
        app_cycle_factor: 1.0,
    }
}

/// Stampede: 2× 8-core Xeon E5-2680 (Sandy Bridge), 32 GB, local
/// 250 GB HDD for all experiment I/O. The application benefits from
/// resource-specific optimization the default kernel lacks, so the
/// emulation converges ~40 % *faster* than the application (Fig. 7
/// top): the application's effective efficiency is low relative to the
/// near-peak ASM kernel.
pub fn stampede() -> MachineModel {
    MachineModel {
        name: "stampede".into(),
        cpu: CpuModel {
            nominal_freq_hz: 2.7e9,
            effective_freq_hz: 2.9e9,
            ncores: 16,
        },
        total_memory: 32 * GIB,
        mem_bandwidth: 25e9,
        net_bandwidth: 1e9,
        kernels: kernels(
            KernelProfile {
                ipc: 2.10,
                efficiency: 0.54,
                overhead_frac: 0.0,
                unit_cycles: 1,
            },
            KernelProfile {
                ipc: 2.60,
                efficiency: 0.70,
                overhead_frac: 0.04,
                unit_cycles: 5_000_000,
            },
            KernelProfile {
                ipc: 3.10,
                efficiency: 0.95,
                overhead_frac: 0.12,
                unit_cycles: 2_000_000,
            },
        ),
        filesystems: vec![FsModel {
            kind: FsKind::Local,
            read_latency: 8e-5,
            write_latency: 3e-4,
            read_bandwidth: 140e6,
            write_bandwidth: 110e6,
        }],
        default_fs: FsKind::Local,
        openmp: ParallelModel {
            startup_fixed: 0.05,
            startup_per_worker: 0.01,
            contention: 1.0,
        },
        mpi: ParallelModel {
            startup_fixed: 0.3,
            startup_per_worker: 0.05,
            contention: 0.8,
        },
        app_cycle_factor: 1.05,
    }
}

/// Archer: Cray XC30, 2× 12-core E5-2697 v2 (Ivy Bridge), 64 GB,
/// disk I/O to node-local /tmp. Here the default kernel *under*-runs
/// the application (no Cray-optimized code path), so the emulation
/// converges ~33 % slower (Fig. 7 bottom).
pub fn archer() -> MachineModel {
    MachineModel {
        name: "archer".into(),
        cpu: CpuModel {
            nominal_freq_hz: 2.7e9,
            effective_freq_hz: 3.0e9,
            ncores: 24,
        },
        total_memory: 64 * GIB,
        mem_bandwidth: 30e9,
        net_bandwidth: 1e9,
        kernels: kernels(
            KernelProfile {
                ipc: 2.20,
                efficiency: 0.72,
                overhead_frac: 0.0,
                unit_cycles: 1,
            },
            KernelProfile {
                ipc: 2.55,
                efficiency: 0.66,
                overhead_frac: 0.04,
                unit_cycles: 5_000_000,
            },
            KernelProfile {
                ipc: 3.00,
                efficiency: 0.60,
                overhead_frac: 0.12,
                unit_cycles: 2_000_000,
            },
        ),
        filesystems: vec![FsModel {
            kind: FsKind::Local,
            read_latency: 9e-5,
            write_latency: 3.5e-4,
            read_bandwidth: 130e6,
            write_bandwidth: 100e6,
        }],
        default_fs: FsKind::Local,
        openmp: ParallelModel {
            startup_fixed: 0.05,
            startup_per_worker: 0.01,
            contention: 1.0,
        },
        mpi: ParallelModel {
            startup_fixed: 0.3,
            startup_per_worker: 0.05,
            contention: 0.8,
        },
        app_cycle_factor: 1.01,
    }
}

/// Supermic: 2× 10-core Xeon E5-2680 (Ivy Bridge-EP), 128 GB, Lustre
/// for all I/O. Measured clock ~3.58–3.60 GHz; per-kernel IPC and
/// converged error fractions from Figs 8–11 (C: ~4 %, ASM: ~26.5 %;
/// IPC app ~2.04, C ~2.53, ASM ~2.86). Thread contention is high, so
/// MPI-style emulation outscales OpenMP (Fig. 12).
pub fn supermic() -> MachineModel {
    MachineModel {
        name: "supermic".into(),
        cpu: CpuModel {
            nominal_freq_hz: 2.8e9,
            effective_freq_hz: 3.59e9,
            ncores: 20,
        },
        total_memory: 128 * GIB,
        mem_bandwidth: 40e9,
        net_bandwidth: 1e9,
        kernels: kernels(
            KernelProfile {
                ipc: 2.04,
                efficiency: 0.70,
                overhead_frac: 0.0,
                unit_cycles: 1,
            },
            KernelProfile {
                ipc: 2.53,
                efficiency: 0.70,
                overhead_frac: 0.040,
                unit_cycles: 5_000_000,
            },
            KernelProfile {
                ipc: 2.86,
                efficiency: 0.70,
                overhead_frac: 0.265,
                unit_cycles: 2_000_000,
            },
        ),
        filesystems: vec![
            lustre(),
            FsModel {
                kind: FsKind::Local,
                read_latency: 1.2e-4,
                write_latency: 8e-4,
                read_bandwidth: 120e6,
                write_bandwidth: 60e6,
            },
        ],
        default_fs: FsKind::Lustre,
        openmp: ParallelModel {
            startup_fixed: 0.05,
            startup_per_worker: 0.01,
            contention: 2.2,
        },
        mpi: ParallelModel {
            startup_fixed: 0.3,
            startup_per_worker: 0.04,
            contention: 0.7,
        },
        app_cycle_factor: 1.0,
    }
}

/// Comet: 2× 12-core Xeon E5-2680v3, 128 GB, NFS for all I/O.
/// Measured clock ~2.88–2.90 GHz; per-kernel parameters from Figs 8–11
/// (C: ~3.5 %, ASM: ~14.5 %; IPC app ~2.17, C ~2.80, ASM ~3.30).
pub fn comet() -> MachineModel {
    MachineModel {
        name: "comet".into(),
        cpu: CpuModel {
            nominal_freq_hz: 2.5e9,
            effective_freq_hz: 2.89e9,
            ncores: 24,
        },
        total_memory: 128 * GIB,
        mem_bandwidth: 40e9,
        net_bandwidth: 1e9,
        kernels: kernels(
            KernelProfile {
                ipc: 2.17,
                efficiency: 0.70,
                overhead_frac: 0.0,
                unit_cycles: 1,
            },
            KernelProfile {
                ipc: 2.80,
                efficiency: 0.70,
                overhead_frac: 0.035,
                unit_cycles: 5_000_000,
            },
            KernelProfile {
                ipc: 3.30,
                efficiency: 0.70,
                overhead_frac: 0.145,
                unit_cycles: 2_000_000,
            },
        ),
        filesystems: vec![FsModel {
            kind: FsKind::Nfs,
            read_latency: 6e-4,
            write_latency: 6e-3,
            read_bandwidth: 120e6,
            write_bandwidth: 30e6,
        }],
        default_fs: FsKind::Nfs,
        openmp: ParallelModel {
            startup_fixed: 0.05,
            startup_per_worker: 0.01,
            contention: 1.2,
        },
        mpi: ParallelModel {
            startup_fixed: 0.3,
            startup_per_worker: 0.04,
            contention: 0.8,
        },
        app_cycle_factor: 1.0,
    }
}

/// Titan: 16-core AMD Opteron 6274, 32 GB, K20X GPU (unused by
/// Synapse), Lustre plus a fast local filesystem ("the local FS on
/// Titan performs much better than the one on Supermic", E.5).
/// Threads are cheap on the Opteron module architecture, so OpenMP
/// outscales MPI here (Fig. 12).
pub fn titan() -> MachineModel {
    MachineModel {
        name: "titan".into(),
        cpu: CpuModel {
            nominal_freq_hz: 2.2e9,
            effective_freq_hz: 2.2e9,
            ncores: 16,
        },
        total_memory: 32 * GIB,
        mem_bandwidth: 20e9,
        net_bandwidth: 1e9,
        kernels: kernels(
            KernelProfile {
                ipc: 1.80,
                efficiency: 0.65,
                overhead_frac: 0.0,
                unit_cycles: 1,
            },
            KernelProfile {
                ipc: 2.20,
                efficiency: 0.66,
                overhead_frac: 0.05,
                unit_cycles: 5_000_000,
            },
            KernelProfile {
                ipc: 2.60,
                efficiency: 0.70,
                overhead_frac: 0.15,
                unit_cycles: 2_000_000,
            },
        ),
        filesystems: vec![
            lustre(),
            FsModel {
                kind: FsKind::Local,
                read_latency: 2e-5,
                write_latency: 1e-4,
                read_bandwidth: 500e6,
                write_bandwidth: 350e6,
            },
        ],
        default_fs: FsKind::Lustre,
        openmp: ParallelModel {
            startup_fixed: 0.05,
            startup_per_worker: 0.005,
            contention: 0.5,
        },
        mpi: ParallelModel {
            startup_fixed: 0.5,
            startup_per_worker: 0.08,
            contention: 0.45,
        },
        app_cycle_factor: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsmodel::IoOp;
    use crate::machine::KernelClass::{Application, AsmMatmul, CMatmul};
    use crate::parallel::ParallelMode;

    /// Converged emulation/application Tx ratio on a machine for a
    /// compute-bound workload emulated with a kernel.
    fn tx_ratio(m: &MachineModel, kernel: KernelClass) -> f64 {
        let cycles: u64 = 50_000_000_000; // long run -> converged
        let app = m.kernel(Application);
        let app_time =
            (cycles as f64 * m.app_cycle_factor) / (m.cpu.effective_freq_hz * app.efficiency);
        let emu_time = m.emulation_compute_time(cycles, kernel);
        emu_time / app_time
    }

    #[test]
    fn all_names_resolve() {
        for name in MACHINE_NAMES {
            let m = machine_by_name(name).unwrap();
            assert_eq!(m.name, name);
        }
        assert!(machine_by_name("THINKIE").is_some());
        assert!(machine_by_name("frontier").is_none());
    }

    #[test]
    fn same_resource_emulation_agrees_on_thinkie() {
        // Fig. 5: on the profiling machine the emulation matches.
        let r = tx_ratio(&thinkie(), AsmMatmul);
        assert!((r - 1.0).abs() < 0.05, "thinkie ratio {r}");
    }

    #[test]
    fn stampede_emulation_converges_faster() {
        // Fig. 7 top: difference converges to ~ -40 %.
        let r = tx_ratio(&stampede(), AsmMatmul);
        assert!(r < 0.7, "stampede ratio {r} should be ~0.60");
        assert!(r > 0.5, "stampede ratio {r} should be ~0.60");
    }

    #[test]
    fn archer_emulation_converges_slower() {
        // Fig. 7 bottom: difference converges to ~ +33 %.
        let r = tx_ratio(&archer(), AsmMatmul);
        assert!(r > 1.25, "archer ratio {r} should be ~1.33");
        assert!(r < 1.45, "archer ratio {r} should be ~1.33");
    }

    #[test]
    fn e3_c_kernel_beats_asm_on_comet_and_supermic() {
        for m in [comet(), supermic()] {
            let c = m.kernel(CMatmul);
            let asm = m.kernel(AsmMatmul);
            assert!(c.overhead_frac < asm.overhead_frac, "{}", m.name);
            // IPC ordering from Fig. 11: app < C < ASM.
            let app = m.kernel(Application);
            assert!(app.ipc < c.ipc && c.ipc < asm.ipc, "{}", m.name);
        }
    }

    #[test]
    fn e3_converged_cycle_errors_match_paper() {
        let comet = comet();
        let budget = 100_000_000_000u64;
        let err = |k: KernelClass, m: &MachineModel| {
            m.kernel(k).consumed_cycles(budget) as f64 / budget as f64 - 1.0
        };
        assert!((err(CMatmul, &comet) - 0.035).abs() < 0.01);
        assert!((err(AsmMatmul, &comet) - 0.145).abs() < 0.01);
        let sm = supermic();
        assert!((err(CMatmul, &sm) - 0.040).abs() < 0.01);
        assert!((err(AsmMatmul, &sm) - 0.265).abs() < 0.01);
    }

    #[test]
    fn supermic_executes_faster_than_titan() {
        // E.4: "Supermic (Xeon, 2.8 GHz) executes the tasks faster
        // than Titan (Opterons, 2.2 GHz)".
        let cycles = 10_000_000_000u64;
        let t_titan = titan().emulation_compute_time(cycles, AsmMatmul);
        let t_sm = supermic().emulation_compute_time(cycles, AsmMatmul);
        assert!(t_sm < t_titan);
    }

    #[test]
    fn parallel_mode_ordering_flips_between_titan_and_supermic() {
        let w = 120.0; // seconds of serial compute
        let t = titan();
        let omp_t = t.parallel(ParallelMode::OpenMp).time(w, 16, 16);
        let mpi_t = t.parallel(ParallelMode::Mpi).time(w, 16, 16);
        assert!(omp_t < mpi_t, "OpenMP wins on Titan: {omp_t} vs {mpi_t}");
        let s = supermic();
        let omp_s = s.parallel(ParallelMode::OpenMp).time(w, 20, 20);
        let mpi_s = s.parallel(ParallelMode::Mpi).time(w, 20, 20);
        assert!(mpi_s < omp_s, "MPI wins on Supermic: {mpi_s} vs {omp_s}");
    }

    #[test]
    fn lustre_similar_across_machines_local_differs() {
        // E.5 observations.
        let bytes = 256 << 20;
        let block = 1 << 20;
        let t_l = titan().io_time(bytes, block, IoOp::Write, FsKind::Lustre);
        let s_l = supermic().io_time(bytes, block, IoOp::Write, FsKind::Lustre);
        assert!(
            (t_l / s_l - 1.0).abs() < 0.01,
            "lustre similar: {t_l} vs {s_l}"
        );
        let t_local = titan().io_time(bytes, block, IoOp::Write, FsKind::Local);
        let s_local = supermic().io_time(bytes, block, IoOp::Write, FsKind::Local);
        assert!(
            t_local < s_local / 2.0,
            "titan local much faster: {t_local} vs {s_local}"
        );
    }

    #[test]
    fn writes_an_order_of_magnitude_slower_at_small_blocks() {
        // E.5: "write operations are generally an order of magnitude
        // slower than read operations".
        for m in [titan(), supermic(), comet()] {
            let fs = m.default_fs_model();
            let bytes = 64 << 20;
            let block = 64 << 10;
            let r = fs.io_time(bytes, block, IoOp::Read);
            let w = fs.io_time(bytes, block, IoOp::Write);
            assert!(w > 5.0 * r, "{}: write {w} vs read {r}", m.name);
        }
    }

    #[test]
    fn serde_roundtrip_of_machine_model() {
        let m = comet();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
