//! Parallel scaling models for E.4 ("Emulating Parallel Execution").
//!
//! Synapse distributes the compute emulation over OpenMP threads or
//! MPI ranks. The paper observes good scaling at small core counts and
//! diminishing returns near the full node ("overall system stress
//! limits potential performance gains"), with machine-dependent
//! ordering: OpenMP beats MPI on Titan but loses on Supermic.
//!
//! We model the parallel execution time of a fixed work volume W as
//!
//! ```text
//! t(n) = startup(n) + (W / n) × (1 + contention(n))
//! startup(n)    = s₀ + s₁ × n                  (thread/rank launch)
//! contention(n) = c × (n - 1) / ncores         (shared-resource stress)
//! ```
//!
//! with per-mode parameters (`s₀`, `s₁`, `c`). Threads share memory so
//! their per-thread startup is cheap but contention higher; ranks pay
//! per-process startup and duplicated resources but less sharing —
//! which of the two wins at a given `n` depends on the machine's
//! parameter set, exactly the crossover the paper reports.

use serde::{Deserialize, Serialize};

/// The two single-node parallelization modes Synapse emulation offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelMode {
    /// Thread-based data parallelism (the paper's OpenMP kernels).
    OpenMp,
    /// Process-based parallelism (the paper's OpenMPI emulation).
    Mpi,
}

impl ParallelMode {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ParallelMode::OpenMp => "OpenMP",
            ParallelMode::Mpi => "OpenMPI",
        }
    }
}

/// Scaling-cost parameters of one mode on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelModel {
    /// Fixed startup cost in seconds (runtime/communicator setup).
    pub startup_fixed: f64,
    /// Per-worker startup cost in seconds.
    pub startup_per_worker: f64,
    /// Contention coefficient: fractional slowdown per worker relative
    /// to the node's core count.
    pub contention: f64,
}

impl ParallelModel {
    /// Execution time of `serial_seconds` of work spread over `n`
    /// workers on a node with `ncores` cores.
    pub fn time(&self, serial_seconds: f64, n: u32, ncores: u32) -> f64 {
        let n = n.max(1) as f64;
        let ncores = ncores.max(1) as f64;
        let startup = self.startup_fixed + self.startup_per_worker * n;
        let contention = self.contention * (n - 1.0) / ncores;
        startup + (serial_seconds / n) * (1.0 + contention)
    }

    /// Speedup relative to one worker.
    pub fn speedup(&self, serial_seconds: f64, n: u32, ncores: u32) -> f64 {
        self.time(serial_seconds, 1, ncores) / self.time(serial_seconds, n, ncores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ParallelModel {
        ParallelModel {
            startup_fixed: 0.2,
            startup_per_worker: 0.05,
            contention: 0.8,
        }
    }

    #[test]
    fn scaling_improves_then_saturates() {
        let m = model();
        let w = 100.0;
        let t1 = m.time(w, 1, 16);
        let t4 = m.time(w, 4, 16);
        let t16 = m.time(w, 16, 16);
        assert!(t4 < t1, "4 workers beat 1");
        assert!(t16 < t4, "16 workers beat 4 for large work");
        // Speedup is sublinear near the full node.
        let s16 = m.speedup(w, 16, 16);
        assert!(s16 < 16.0, "contention prevents linear speedup, got {s16}");
        assert!(s16 > 4.0, "but parallelism still pays off, got {s16}");
    }

    #[test]
    fn small_work_is_dominated_by_startup() {
        let m = model();
        // 0.1 s of work: launching 16 workers costs more than it saves.
        assert!(m.time(0.1, 16, 16) > m.time(0.1, 1, 16));
    }

    #[test]
    fn diminishing_returns_monotone_in_contention() {
        let low = ParallelModel {
            contention: 0.1,
            ..model()
        };
        let high = ParallelModel {
            contention: 2.0,
            ..model()
        };
        assert!(low.speedup(100.0, 16, 16) > high.speedup(100.0, 16, 16));
    }

    #[test]
    fn n_zero_clamps_to_one() {
        let m = model();
        assert_eq!(m.time(10.0, 0, 16), m.time(10.0, 1, 16));
    }

    #[test]
    fn mode_names_match_paper() {
        assert_eq!(ParallelMode::OpenMp.name(), "OpenMP");
        assert_eq!(ParallelMode::Mpi.name(), "OpenMPI");
    }

    #[test]
    fn crossover_between_modes_is_parameter_driven() {
        // Titan-like: threads cheap, contention moderate -> OpenMP wins.
        let omp = ParallelModel {
            startup_fixed: 0.1,
            startup_per_worker: 0.01,
            contention: 0.5,
        };
        let mpi = ParallelModel {
            startup_fixed: 0.5,
            startup_per_worker: 0.08,
            contention: 0.4,
        };
        let w = 60.0;
        assert!(omp.time(w, 16, 16) < mpi.time(w, 16, 16));
        // Supermic-like: heavier thread contention -> MPI wins.
        let omp2 = ParallelModel {
            contention: 2.5,
            ..omp
        };
        assert!(mpi.time(w, 20, 20) < omp2.time(w, 20, 20));
    }
}
