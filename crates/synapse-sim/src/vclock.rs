//! Virtual time for simulated executions.

/// A virtual clock: simulated executions advance it instead of
/// sleeping. Time is in seconds, monotone, and supports the "max of
//  concurrent branches" pattern the emulator's concurrent atoms need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by a non-negative duration (negative/NaN inputs are
    /// clamped to zero — simulation cost functions can round to tiny
    /// negatives through float error).
    pub fn advance(&mut self, dt: f64) {
        if dt.is_finite() && dt > 0.0 {
            self.now += dt;
        }
    }

    /// Advance to an absolute time, never moving backwards.
    pub fn advance_to(&mut self, t: f64) {
        if t.is_finite() && t > self.now {
            self.now = t;
        }
    }

    /// Run several concurrent branches starting now: each closure gets
    /// its own copy of the clock, and the parent clock jumps to the
    /// *latest* finish time (a barrier, like the emulator's per-sample
    /// "all atoms complete" semantics).
    pub fn concurrently<F>(&mut self, branches: &mut [F])
    where
        F: FnMut(&mut VirtualClock),
    {
        let start = *self;
        let mut latest = self.now;
        for branch in branches.iter_mut() {
            let mut local = start;
            branch(&mut local);
            latest = latest.max(local.now);
        }
        self.now = latest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
        c.advance(-1.0); // ignored
        c.advance(f64::NAN); // ignored
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = VirtualClock::new();
        c.advance_to(3.0);
        c.advance_to(1.0);
        assert!((c.now() - 3.0).abs() < 1e-12);
    }

    type Branch = Box<dyn FnMut(&mut VirtualClock)>;

    #[test]
    fn concurrent_branches_join_at_latest() {
        let mut c = VirtualClock::new();
        c.advance(1.0);
        let durations = [0.5, 2.0, 1.0];
        let mut branches: Vec<Branch> = durations
            .iter()
            .map(|&d| Box::new(move |clk: &mut VirtualClock| clk.advance(d)) as _)
            .collect();
        c.concurrently(&mut branches);
        // Started at 1.0, longest branch 2.0 -> 3.0.
        assert!((c.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_with_no_branches_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(1.0);
        let mut branches: Vec<Branch> = Vec::new();
        c.concurrently(&mut branches);
        assert!((c.now() - 1.0).abs() < 1e-12);
    }
}
