//! Deterministic measurement noise for simulated experiments.
//!
//! Repeated profiling runs in the paper show "some noise in the
//! measured metrics ... in very good agreement with the distribution
//! of the pure application Tx" (E.1). Simulated runs reproduce that by
//! perturbing modelled quantities with a seeded, reproducible noise
//! source, so error bars in the regenerated figures are meaningful but
//! every harness run prints identical numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded multiplicative-noise source.
#[derive(Debug, Clone)]
pub struct Noise {
    rng: StdRng,
    cv: f64,
}

impl Noise {
    /// Noise with the given coefficient of variation (std/mean), e.g.
    /// 0.02 for the ~2 % run-to-run jitter typical of the paper's
    /// compute-bound measurements.
    pub fn new(seed: u64, cv: f64) -> Self {
        Noise {
            rng: StdRng::seed_from_u64(seed),
            cv: cv.max(0.0),
        }
    }

    /// Zero-noise source (deterministic pass-through).
    pub fn none() -> Self {
        Noise::new(0, 0.0)
    }

    /// The configured coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Perturb a value multiplicatively: `value × (1 + ε)` with ε
    /// uniform in `[-cv·√3, +cv·√3]` (which has standard deviation
    /// `cv`). Values never go negative.
    pub fn apply(&mut self, value: f64) -> f64 {
        if self.cv == 0.0 {
            return value;
        }
        let half_width = self.cv * 3f64.sqrt();
        let eps: f64 = self.rng.gen_range(-half_width..half_width);
        (value * (1.0 + eps)).max(0.0)
    }

    /// Perturb an integer count.
    pub fn apply_u64(&mut self, value: u64) -> u64 {
        self.apply(value as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::Summary;

    #[test]
    fn zero_cv_is_identity() {
        let mut n = Noise::none();
        assert_eq!(n.apply(42.0), 42.0);
        assert_eq!(n.apply_u64(42), 42);
        assert_eq!(n.cv(), 0.0);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Noise::new(7, 0.05);
        let mut b = Noise::new(7, 0.05);
        for _ in 0..10 {
            assert_eq!(a.apply(100.0), b.apply(100.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1, 0.05);
        let mut b = Noise::new(2, 0.05);
        let va: Vec<f64> = (0..5).map(|_| a.apply(100.0)).collect();
        let vb: Vec<f64> = (0..5).map(|_| b.apply(100.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn empirical_cv_matches_configuration() {
        let mut n = Noise::new(42, 0.05);
        let values: Vec<f64> = (0..20_000).map(|_| n.apply(1000.0)).collect();
        let s = Summary::of(&values).unwrap();
        let cv = s.std / s.mean;
        assert!((cv - 0.05).abs() < 0.005, "empirical cv {cv}");
        assert!((s.mean - 1000.0).abs() < 5.0, "mean preserved: {}", s.mean);
    }

    #[test]
    fn never_negative() {
        let mut n = Noise::new(3, 2.0); // absurdly noisy
        for _ in 0..1000 {
            assert!(n.apply(1.0) >= 0.0);
        }
    }
}
