//! Filesystem cost models for E.5 ("Emulating Variable I/O
//! Granularity").
//!
//! The paper sweeps I/O block sizes against node-local filesystems,
//! Lustre and NFS, and observes: writes are roughly an order of
//! magnitude slower than reads ("owed to the difficulty of providing
//! cache consistency on write, specifically on shared file systems");
//! many small operations are much slower than few large ones (per-op
//! latency dominates); Lustre performs similarly across machines while
//! local storage differs significantly.
//!
//! The model is the classic latency-bandwidth form with a read cache:
//!
//! ```text
//! t(bytes, block, op) = n_ops × latency(op) + bytes / bandwidth(op)
//! n_ops = ceil(bytes / block)
//! ```
//!
//! with read latency/bandwidth improved by a cache factor (read-ahead
//! and page-cache hits, which both local disks and Lustre clients
//! provide).

use serde::{Deserialize, Serialize};

/// Which storage system class a model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsKind {
    /// Node-local disk (SSD or HDD) — `/tmp` in the paper's runs.
    Local,
    /// Lustre parallel filesystem.
    Lustre,
    /// NFS shared filesystem.
    Nfs,
}

impl FsKind {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            FsKind::Local => "local",
            FsKind::Lustre => "lustre",
            FsKind::Nfs => "nfs",
        }
    }

    /// Parse a name (CLI/bench argument).
    pub fn parse(s: &str) -> Option<FsKind> {
        match s.to_ascii_lowercase().as_str() {
            "local" | "tmp" | "/tmp" => Some(FsKind::Local),
            "lustre" => Some(FsKind::Lustre),
            "nfs" => Some(FsKind::Nfs),
            _ => None,
        }
    }
}

/// Read or write, the two op classes E.5 distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Read from storage.
    Read,
    /// Write to storage.
    Write,
}

/// A latency/bandwidth/cache model of one filesystem on one machine.
///
/// ```
/// use synapse_sim::{FsKind, FsModel, IoOp};
/// let fs = FsModel {
///     kind: FsKind::Lustre,
///     read_latency: 1.5e-4,
///     write_latency: 1.5e-3,
///     read_bandwidth: 600e6,
///     write_bandwidth: 250e6,
/// };
/// // Many small writes are far slower than few large ones (Fig. 15):
/// let small = fs.io_time(64 << 20, 4 << 10, IoOp::Write);
/// let large = fs.io_time(64 << 20, 16 << 20, IoOp::Write);
/// assert!(small > 10.0 * large);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsModel {
    /// Which class of storage this models.
    pub kind: FsKind,
    /// Per-operation read latency in seconds (after caching).
    pub read_latency: f64,
    /// Per-operation write latency in seconds.
    pub write_latency: f64,
    /// Streaming read bandwidth in bytes/second (after caching).
    pub read_bandwidth: f64,
    /// Streaming write bandwidth in bytes/second.
    pub write_bandwidth: f64,
}

impl FsModel {
    /// Time to move `bytes` in blocks of `block_size` for `op`.
    ///
    /// `block_size` of zero is treated as one op for all bytes (the
    /// degenerate "one giant write" case).
    pub fn io_time(&self, bytes: u64, block_size: u64, op: IoOp) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let block = if block_size == 0 { bytes } else { block_size };
        let n_ops = bytes.div_ceil(block) as f64;
        let (lat, bw) = match op {
            IoOp::Read => (self.read_latency, self.read_bandwidth),
            IoOp::Write => (self.write_latency, self.write_bandwidth),
        };
        n_ops * lat + bytes as f64 / bw
    }

    /// Effective throughput in bytes/second at a given block size.
    pub fn throughput(&self, bytes: u64, block_size: u64, op: IoOp) -> f64 {
        let t = self.io_time(bytes, block_size, op);
        if t <= 0.0 {
            0.0
        } else {
            bytes as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FsModel {
        FsModel {
            kind: FsKind::Local,
            read_latency: 1e-5,
            write_latency: 1e-4,
            read_bandwidth: 500e6,
            write_bandwidth: 100e6,
        }
    }

    #[test]
    fn small_blocks_cost_more_than_large() {
        let m = model();
        let bytes = 64 * 1024 * 1024;
        let t_small = m.io_time(bytes, 1024, IoOp::Write);
        let t_large = m.io_time(bytes, 16 * 1024 * 1024, IoOp::Write);
        assert!(
            t_small > 5.0 * t_large,
            "per-op latency must dominate at small blocks: {t_small} vs {t_large}"
        );
    }

    #[test]
    fn writes_slower_than_reads() {
        let m = model();
        let bytes = 16 * 1024 * 1024;
        let block = 64 * 1024;
        assert!(m.io_time(bytes, block, IoOp::Write) > m.io_time(bytes, block, IoOp::Read));
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        assert_eq!(model().io_time(0, 4096, IoOp::Read), 0.0);
    }

    #[test]
    fn zero_block_means_single_op() {
        let m = model();
        let bytes = 1024 * 1024;
        let t = m.io_time(bytes, 0, IoOp::Read);
        let expect = m.read_latency + bytes as f64 / m.read_bandwidth;
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn io_time_scales_with_bytes_at_fixed_block() {
        let m = model();
        let t1 = m.io_time(1 << 20, 4096, IoOp::Write);
        let t2 = m.io_time(2 << 20, 4096, IoOp::Write);
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn throughput_improves_with_block_size_monotonically() {
        let m = model();
        let bytes = 32 * 1024 * 1024;
        let mut last = 0.0;
        for pow in 10..=24 {
            let tp = m.throughput(bytes, 1 << pow, IoOp::Write);
            assert!(
                tp >= last,
                "throughput must be non-decreasing in block size"
            );
            last = tp;
        }
        // And bounded by raw bandwidth.
        assert!(last <= m.write_bandwidth);
    }

    #[test]
    fn fs_kind_names_and_parse() {
        for k in [FsKind::Local, FsKind::Lustre, FsKind::Nfs] {
            assert_eq!(FsKind::parse(k.name()), Some(k));
        }
        assert_eq!(FsKind::parse("/tmp"), Some(FsKind::Local));
        assert_eq!(FsKind::parse("LUSTRE"), Some(FsKind::Lustre));
        assert_eq!(FsKind::parse("gpfs"), None);
    }

    #[test]
    fn partial_last_block_rounds_op_count_up() {
        let m = model();
        // 10 KiB in 4 KiB blocks = 3 ops.
        let t = m.io_time(10 * 1024, 4 * 1024, IoOp::Read);
        let expect = 3.0 * m.read_latency + 10.0 * 1024.0 / m.read_bandwidth;
        assert!((t - expect).abs() < 1e-12);
    }
}
