//! Time-stamped profile samples.
//!
//! A [`Sample`] is the unit of observation produced by the profiler's
//! watcher plugins at (roughly) equidistant points in time, and the unit
//! of replay consumed by the emulation atoms. Per the paper (§4.4),
//! emulation preserves *sample order* across resource types but discards
//! absolute timing — so a sample carries both its timestamp (for
//! profiling analysis) and per-resource *delta* quantities (for replay).

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// CPU activity within one sampling interval.
///
/// Counter fields are deltas over the interval; `threads` is a gauge
/// (instantaneous value at sampling time).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComputeSample {
    /// CPU cycles counted toward the application (perf `cycles`).
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Cycles the frontend stalled.
    pub stalled_frontend: u64,
    /// Cycles the backend stalled.
    pub stalled_backend: u64,
    /// Floating-point operations (derived or counted).
    pub flops: u64,
    /// Number of application threads at sampling time (gauge).
    pub threads: u32,
}

impl ComputeSample {
    /// Cycles "wasted" per the paper's efficiency definition: all
    /// stalled cycles, frontend plus backend.
    pub fn cycles_wasted(&self) -> u64 {
        self.stalled_frontend + self.stalled_backend
    }

    /// CPU efficiency: `cycles_used / (cycles_used + cycles_wasted)`.
    ///
    /// Returns `None` for an idle interval (no cycles at all), since the
    /// quotient is undefined there.
    pub fn efficiency(&self) -> Option<f64> {
        let spent = self.cycles + self.cycles_wasted();
        if spent == 0 {
            None
        } else {
            Some(self.cycles as f64 / spent as f64)
        }
    }

    /// Instructions retired per used cycle ("instruction rate" in the
    /// paper's Fig. 11). `None` when no cycles were used.
    pub fn ipc(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.instructions as f64 / self.cycles as f64)
        }
    }

    /// Element-wise sum of two compute samples.
    pub fn merged(&self, other: &ComputeSample) -> ComputeSample {
        ComputeSample {
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            stalled_frontend: self.stalled_frontend + other.stalled_frontend,
            stalled_backend: self.stalled_backend + other.stalled_backend,
            flops: self.flops + other.flops,
            threads: self.threads.max(other.threads),
        }
    }
}

/// Memory activity within one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemorySample {
    /// Bytes allocated during the interval.
    pub allocated: u64,
    /// Bytes freed during the interval.
    pub freed: u64,
    /// Resident set size at sampling time (gauge).
    pub rss: u64,
    /// Peak resident set size so far (gauge, monotone).
    pub peak: u64,
}

impl MemorySample {
    /// Net allocation delta of the interval (may be negative).
    pub fn net(&self) -> i64 {
        self.allocated as i64 - self.freed as i64
    }

    /// Element-wise merge: deltas add, gauges take the maximum.
    pub fn merged(&self, other: &MemorySample) -> MemorySample {
        MemorySample {
            allocated: self.allocated + other.allocated,
            freed: self.freed + other.freed,
            rss: self.rss.max(other.rss),
            peak: self.peak.max(other.peak),
        }
    }
}

/// Disk I/O within one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageSample {
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Number of read operations (when the provider reports them).
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
}

impl StorageSample {
    /// Mean read block size over the interval, if any reads happened.
    pub fn read_block_size(&self) -> Option<u64> {
        self.bytes_read.checked_div(self.read_ops)
    }

    /// Mean write block size over the interval, if any writes happened.
    pub fn write_block_size(&self) -> Option<u64> {
        self.bytes_written.checked_div(self.write_ops)
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &StorageSample) -> StorageSample {
        StorageSample {
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            read_ops: self.read_ops + other.read_ops,
            write_ops: self.write_ops + other.write_ops,
        }
    }
}

/// Network traffic within one sampling interval (planned/partial in the
/// paper; carried in the model so the network atom can replay it).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkSample {
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
}

impl NetworkSample {
    /// Element-wise sum.
    pub fn merged(&self, other: &NetworkSample) -> NetworkSample {
        NetworkSample {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_recv: self.bytes_recv + other.bytes_recv,
        }
    }
}

/// One multi-resource observation interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Sample {
    /// Seconds since profile start at the *beginning* of the interval.
    pub t: f64,
    /// Interval length in seconds.
    pub dt: f64,
    /// CPU activity during the interval.
    pub compute: ComputeSample,
    /// Memory activity during the interval.
    pub memory: MemorySample,
    /// Disk I/O during the interval.
    pub storage: StorageSample,
    /// Network traffic during the interval.
    pub network: NetworkSample,
}

impl Sample {
    /// Construct an empty sample covering `[t, t + dt)`.
    pub fn at(t: f64, dt: f64) -> Self {
        Sample {
            t,
            dt,
            ..Default::default()
        }
    }

    /// End of the interval.
    pub fn t_end(&self) -> f64 {
        self.t + self.dt
    }

    /// Whether the sample records any resource activity at all.
    pub fn is_idle(&self) -> bool {
        self.compute.cycles == 0
            && self.compute.instructions == 0
            && self.compute.flops == 0
            && self.memory.allocated == 0
            && self.memory.freed == 0
            && self.storage.bytes_read == 0
            && self.storage.bytes_written == 0
            && self.network.bytes_sent == 0
            && self.network.bytes_recv == 0
    }

    /// Validate domain constraints: finite non-negative timestamp and a
    /// strictly useful (finite, non-negative) interval.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.t.is_finite() || self.t < 0.0 {
            return Err(ModelError::InvalidValue {
                field: "t",
                reason: format!("timestamp {} must be finite and >= 0", self.t),
            });
        }
        if !self.dt.is_finite() || self.dt < 0.0 {
            return Err(ModelError::InvalidValue {
                field: "dt",
                reason: format!("interval {} must be finite and >= 0", self.dt),
            });
        }
        Ok(())
    }

    /// Merge another sample's resource consumption into a copy of this
    /// one (used when down-sampling a profile to a coarser rate).
    /// Timing follows this sample's start; the interval is extended to
    /// cover both.
    pub fn absorb(&self, other: &Sample) -> Sample {
        Sample {
            t: self.t.min(other.t),
            dt: (self.t_end().max(other.t_end())) - self.t.min(other.t),
            compute: self.compute.merged(&other.compute),
            memory: self.memory.merged(&other.memory),
            storage: self.storage.merged(&other.storage),
            network: self.network.merged(&other.network),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_sample() -> Sample {
        Sample {
            t: 1.0,
            dt: 0.5,
            compute: ComputeSample {
                cycles: 1000,
                instructions: 2500,
                stalled_frontend: 100,
                stalled_backend: 150,
                flops: 800,
                threads: 2,
            },
            memory: MemorySample {
                allocated: 4096,
                freed: 1024,
                rss: 1 << 20,
                peak: 2 << 20,
            },
            storage: StorageSample {
                bytes_read: 8192,
                bytes_written: 2048,
                read_ops: 4,
                write_ops: 1,
            },
            network: NetworkSample {
                bytes_sent: 10,
                bytes_recv: 20,
            },
        }
    }

    #[test]
    fn efficiency_matches_paper_formula() {
        let c = busy_sample().compute;
        // used / (used + wasted) = 1000 / (1000 + 250)
        let eff = c.efficiency().unwrap();
        assert!((eff - 0.8).abs() < 1e-12);
        assert_eq!(c.cycles_wasted(), 250);
    }

    #[test]
    fn efficiency_and_ipc_undefined_when_idle() {
        let c = ComputeSample::default();
        assert!(c.efficiency().is_none());
        assert!(c.ipc().is_none());
    }

    #[test]
    fn ipc_is_instructions_per_used_cycle() {
        let c = busy_sample().compute;
        assert!((c.ipc().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn block_sizes_derive_from_ops() {
        let s = busy_sample().storage;
        assert_eq!(s.read_block_size(), Some(2048));
        assert_eq!(s.write_block_size(), Some(2048));
        assert_eq!(StorageSample::default().read_block_size(), None);
    }

    #[test]
    fn memory_net_can_be_negative() {
        let m = MemorySample {
            allocated: 10,
            freed: 30,
            ..Default::default()
        };
        assert_eq!(m.net(), -20);
    }

    #[test]
    fn idle_detection() {
        assert!(Sample::at(0.0, 0.1).is_idle());
        assert!(!busy_sample().is_idle());
    }

    #[test]
    fn validation_rejects_bad_timestamps() {
        let mut s = Sample::at(0.0, 0.1);
        s.t = f64::NAN;
        assert!(s.validate().is_err());
        s.t = -1.0;
        assert!(s.validate().is_err());
        s.t = 0.0;
        s.dt = f64::INFINITY;
        assert!(s.validate().is_err());
        s.dt = 0.1;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn absorb_sums_deltas_and_maxes_gauges() {
        let a = busy_sample();
        let mut b = busy_sample();
        b.t = 1.5;
        b.memory.rss = 3 << 20;
        let m = a.absorb(&b);
        assert_eq!(m.t, 1.0);
        assert!((m.dt - 1.0).abs() < 1e-12); // covers [1.0, 2.0)
        assert_eq!(m.compute.cycles, 2000);
        assert_eq!(m.memory.allocated, 8192);
        assert_eq!(m.memory.rss, 3 << 20); // gauge: max
        assert_eq!(m.storage.bytes_read, 16384);
        assert_eq!(m.network.bytes_recv, 40);
    }

    #[test]
    fn serde_roundtrip() {
        let s = busy_sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
