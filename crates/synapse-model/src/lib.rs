#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Data model for Synapse profiles, samples, metrics and statistics.
//!
//! This crate is the foundation of the Synapse reproduction: it defines
//! the *profile* representation produced by the profiler and consumed by
//! the emulator, the metric registry mirroring Table 1 of the paper, and
//! the statistics helpers (mean, standard deviation, 99 % confidence
//! intervals, error percentages) used throughout the evaluation.
//!
//! The model is deliberately independent of how samples are *collected*
//! (see `synapse-proc`, `synapse-perf`) and of how they are *replayed*
//! (see `synapse-atoms`, `synapse`). Everything here is plain data with
//! `serde` round-tripping, so profiles can be stored in the document
//! store (`synapse-store`) or on disk as JSON.

pub mod analysis;
pub mod error;
pub mod metrics;
pub mod profile;
pub mod sample;
pub mod stats;
pub mod tags;
pub mod units;

pub use analysis::{compare_profiles, io_granularity, IoGranularity, ProfileComparison};
pub use error::ModelError;
pub use metrics::{Metric, MetricUsage, ResourceClass, Support, METRIC_REGISTRY};
pub use profile::{DerivedMetrics, Profile, ProfileSet, SystemInfo, Totals};
pub use sample::{ComputeSample, MemorySample, NetworkSample, Sample, StorageSample};
pub use stats::{ci99_halfwidth, error_pct, Summary};
pub use tags::{ProfileKey, Tags};
