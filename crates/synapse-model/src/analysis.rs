//! Profile analysis: derived I/O granularity and profile comparison.
//!
//! Two capabilities the paper motivates:
//!
//! * **Block-size inference** (§4.2/§6): the profiler cannot yet trace
//!   block-level I/O directly (the blktrace watcher is "experimental"),
//!   but per-sample byte and operation counts imply mean block sizes —
//!   "We consider using this data in Synapse emulation when
//!   applications require that granularity". [`IoGranularity`]
//!   extracts them so an emulation plan can adopt the *profiled*
//!   granularity instead of static defaults.
//! * **Profile comparison** (E.2): "As a sanity check, we profiled the
//!   emulated application and compared the reported system resource
//!   consumption results". [`compare_profiles`] quantifies that
//!   agreement metric by metric.

use serde::{Deserialize, Serialize};

use crate::profile::Profile;
use crate::stats::error_pct;

/// Inferred I/O granularity of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoGranularity {
    /// Mean read block size over the whole run (bytes/ops), if any
    /// read operations were recorded.
    pub read_block: Option<u64>,
    /// Mean write block size, if any write operations were recorded.
    pub write_block: Option<u64>,
    /// Largest single-sample mean write block (bursts often reveal the
    /// application's true buffer size better than the global mean).
    pub peak_write_block: Option<u64>,
}

/// Infer I/O granularity from a profile's sample series.
pub fn io_granularity(profile: &Profile) -> IoGranularity {
    let t = profile.totals();
    let read_block = (t.read_ops > 0).then(|| t.bytes_read / t.read_ops);
    let write_block = (t.write_ops > 0).then(|| t.bytes_written / t.write_ops);
    let peak_write_block = profile
        .samples
        .iter()
        .filter_map(|s| s.storage.write_block_size())
        .max();
    IoGranularity {
        read_block,
        write_block,
        peak_write_block,
    }
}

/// Per-metric relative errors between two profiles (measured vs
/// reference), as percentages. `None` where the reference is zero.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileComparison {
    /// Runtime Tx error.
    pub runtime: Option<f64>,
    /// Used-cycles error.
    pub cycles: Option<f64>,
    /// Instruction-count error.
    pub instructions: Option<f64>,
    /// Bytes-read error.
    pub bytes_read: Option<f64>,
    /// Bytes-written error.
    pub bytes_written: Option<f64>,
    /// Peak-RSS error.
    pub mem_peak: Option<f64>,
}

impl ProfileComparison {
    /// The largest error across all compared metrics (ignoring
    /// undefined ones). `None` when nothing was comparable.
    pub fn worst(&self) -> Option<f64> {
        [
            self.runtime,
            self.cycles,
            self.instructions,
            self.bytes_read,
            self.bytes_written,
            self.mem_peak,
        ]
        .into_iter()
        .flatten()
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Whether every comparable metric is within `tolerance_pct`.
    pub fn within(&self, tolerance_pct: f64) -> bool {
        self.worst().is_none_or(|w| w <= tolerance_pct)
    }
}

/// Compare a measured profile against a reference, metric by metric.
pub fn compare_profiles(reference: &Profile, measured: &Profile) -> ProfileComparison {
    let r = reference.totals();
    let m = measured.totals();
    ProfileComparison {
        runtime: error_pct(measured.runtime, reference.runtime),
        cycles: error_pct(m.cycles as f64, r.cycles as f64),
        instructions: error_pct(m.instructions as f64, r.instructions as f64),
        bytes_read: error_pct(m.bytes_read as f64, r.bytes_read as f64),
        bytes_written: error_pct(m.bytes_written as f64, r.bytes_written as f64),
        mem_peak: error_pct(m.mem_peak as f64, r.mem_peak as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SystemInfo;
    use crate::sample::Sample;
    use crate::tags::{ProfileKey, Tags};

    fn profile_with_io(ops: &[(u64, u64)]) -> Profile {
        // ops: per sample (bytes_written, write_ops)
        let mut p = Profile::new(
            ProfileKey::new("io", Tags::new()),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = ops.len() as f64;
        for (i, &(bytes, n)) in ops.iter().enumerate() {
            let mut s = Sample::at(i as f64, 1.0);
            s.storage.bytes_written = bytes;
            s.storage.write_ops = n;
            s.storage.bytes_read = bytes / 2;
            s.storage.read_ops = n;
            s.compute.cycles = 1000;
            s.compute.instructions = 2000;
            p.push(s).unwrap();
        }
        p
    }

    #[test]
    fn granularity_from_totals_and_peak() {
        // Sample blocks: 4096 (8192/2), 65536 (65536/1).
        let p = profile_with_io(&[(8192, 2), (65536, 1)]);
        let g = io_granularity(&p);
        assert_eq!(g.write_block, Some((8192 + 65536) / 3));
        assert_eq!(g.peak_write_block, Some(65536));
        assert_eq!(g.read_block, Some(((8192 + 65536) / 2) / 3));
    }

    #[test]
    fn granularity_of_io_free_profile_is_none() {
        let mut p = Profile::new(ProfileKey::default(), SystemInfo::default(), 1.0);
        p.runtime = 1.0;
        p.push(Sample::at(0.0, 1.0)).unwrap();
        let g = io_granularity(&p);
        assert_eq!(g.read_block, None);
        assert_eq!(g.write_block, None);
        assert_eq!(g.peak_write_block, None);
    }

    #[test]
    fn identical_profiles_compare_to_zero() {
        let p = profile_with_io(&[(8192, 2)]);
        let c = compare_profiles(&p, &p);
        assert_eq!(c.worst(), Some(0.0));
        assert!(c.within(0.0));
    }

    #[test]
    fn comparison_reports_per_metric_errors() {
        let a = profile_with_io(&[(10_000, 2)]);
        let mut b = profile_with_io(&[(10_000, 2)]);
        b.runtime = a.runtime * 1.10;
        b.samples[0].storage.bytes_written = 12_000;
        let c = compare_profiles(&a, &b);
        assert!((c.runtime.unwrap() - 10.0).abs() < 1e-9);
        assert!((c.bytes_written.unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(c.cycles, Some(0.0));
        assert!((c.worst().unwrap() - 20.0).abs() < 1e-9);
        assert!(c.within(20.0));
        assert!(!c.within(19.9));
    }

    #[test]
    fn zero_reference_metrics_are_undefined_not_infinite() {
        let mut a = Profile::new(ProfileKey::default(), SystemInfo::default(), 1.0);
        a.runtime = 1.0;
        a.push(Sample::at(0.0, 1.0)).unwrap();
        let b = profile_with_io(&[(100, 1)]);
        let c = compare_profiles(&a, &b);
        assert!(c.bytes_written.is_none());
        // worst() skips undefined metrics.
        assert!(c.worst().is_some()); // runtime is comparable
    }
}
