//! Application profiles: time series of samples plus system context.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::sample::Sample;
use crate::stats::Summary;
use crate::tags::ProfileKey;

/// Host information recorded alongside every profile (the "System"
/// block of Table 1). Needed to compute derived metrics (utilization)
/// and to judge profile portability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemInfo {
    /// Host name of the profiling resource.
    pub hostname: String,
    /// Number of CPU cores.
    pub ncores: u32,
    /// Maximum CPU frequency in Hz.
    pub max_freq_hz: f64,
    /// Total system memory in bytes.
    pub total_memory: u64,
    /// 1-minute system load average at profiling start (Table 1's
    /// "system load (CPU)" total). Zero when unknown.
    #[serde(default)]
    pub load_avg: f64,
}

impl Default for SystemInfo {
    fn default() -> Self {
        SystemInfo {
            hostname: "unknown".into(),
            ncores: 1,
            max_freq_hz: 1e9,
            total_memory: 1 << 30,
            load_avg: 0.0,
        }
    }
}

/// Integrated totals over a whole profile (the "Tot." column of
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Totals {
    /// Total used CPU cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Total frontend-stalled cycles.
    pub stalled_frontend: u64,
    /// Total backend-stalled cycles.
    pub stalled_backend: u64,
    /// Total floating-point operations.
    pub flops: u64,
    /// Total bytes read from storage.
    pub bytes_read: u64,
    /// Total bytes written to storage.
    pub bytes_written: u64,
    /// Total storage read operations.
    pub read_ops: u64,
    /// Total storage write operations.
    pub write_ops: u64,
    /// Total bytes allocated.
    pub mem_allocated: u64,
    /// Total bytes freed.
    pub mem_freed: u64,
    /// Peak resident set size observed.
    pub mem_peak: u64,
    /// Total bytes sent over the network.
    pub net_sent: u64,
    /// Total bytes received over the network.
    pub net_recv: u64,
    /// Maximum number of threads observed.
    pub max_threads: u32,
}

/// Metrics derived from totals and system info (the "Der." rows of
/// Table 1: efficiency, utilization, FLOPs rate, IPC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// `cycles_used / (cycles_used + cycles_wasted)` — the paper's
    /// efficiency formula, counting all stalls as waste.
    pub efficiency: Option<f64>,
    /// `cycles_used / cycles_max`, where `cycles_max = max_freq *
    /// runtime * threads_used`. The paper derives `cycles_max` from
    /// clock speed and architecture; we additionally scale by the
    /// number of threads the application actually employed so a
    /// single-threaded run on a 24-core node is not reported as ~4 %
    /// busy.
    pub utilization: Option<f64>,
    /// Instructions retired per used cycle.
    pub ipc: Option<f64>,
    /// Floating-point operations per second of runtime.
    pub flops_per_sec: Option<f64>,
}

/// A complete application profile: identification, host context,
/// sampling configuration and the observed time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// `(command, tags)` identification used as the database index.
    pub key: ProfileKey,
    /// Host the profile was taken on.
    pub system: SystemInfo,
    /// Configured sampling rate in Hz (samples per second).
    pub sample_rate_hz: f64,
    /// Total application runtime Tx in seconds (wall clock, corrected
    /// for the profiler startup offset via the `time -v` wrapper).
    pub runtime: f64,
    /// The observed samples, ordered by timestamp.
    pub samples: Vec<Sample>,
}

impl Profile {
    /// Create an empty profile shell for a key on a host.
    pub fn new(key: ProfileKey, system: SystemInfo, sample_rate_hz: f64) -> Self {
        Profile {
            key,
            system,
            sample_rate_hz,
            runtime: 0.0,
            samples: Vec::new(),
        }
    }

    /// Append a sample, keeping the series ordered.
    pub fn push(&mut self, sample: Sample) -> Result<(), ModelError> {
        sample.validate()?;
        if let Some(last) = self.samples.last() {
            if sample.t < last.t {
                return Err(ModelError::UnorderedSamples {
                    index: self.samples.len(),
                });
            }
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Validate the whole profile: ordered, valid samples and a
    /// non-negative runtime.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.runtime.is_finite() || self.runtime < 0.0 {
            return Err(ModelError::InvalidValue {
                field: "runtime",
                reason: format!("{} must be finite and >= 0", self.runtime),
            });
        }
        let mut prev = f64::NEG_INFINITY;
        for (i, s) in self.samples.iter().enumerate() {
            s.validate()?;
            if s.t < prev {
                return Err(ModelError::UnorderedSamples { index: i });
            }
            prev = s.t;
        }
        Ok(())
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the profile holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Integrate the sample series into totals.
    pub fn totals(&self) -> Totals {
        let mut t = Totals::default();
        for s in &self.samples {
            t.cycles += s.compute.cycles;
            t.instructions += s.compute.instructions;
            t.stalled_frontend += s.compute.stalled_frontend;
            t.stalled_backend += s.compute.stalled_backend;
            t.flops += s.compute.flops;
            t.bytes_read += s.storage.bytes_read;
            t.bytes_written += s.storage.bytes_written;
            t.read_ops += s.storage.read_ops;
            t.write_ops += s.storage.write_ops;
            t.mem_allocated += s.memory.allocated;
            t.mem_freed += s.memory.freed;
            t.mem_peak = t.mem_peak.max(s.memory.peak).max(s.memory.rss);
            t.net_sent += s.network.bytes_sent;
            t.net_recv += s.network.bytes_recv;
            t.max_threads = t.max_threads.max(s.compute.threads);
        }
        t
    }

    /// Compute the derived metrics of Table 1 from the totals and the
    /// recorded system information.
    pub fn derived(&self) -> DerivedMetrics {
        let t = self.totals();
        let wasted = t.stalled_frontend + t.stalled_backend;
        let spent = t.cycles + wasted;
        let efficiency = if spent == 0 {
            None
        } else {
            Some(t.cycles as f64 / spent as f64)
        };
        let threads = t.max_threads.max(1) as f64;
        let cycles_max = self.system.max_freq_hz * self.runtime * threads;
        let utilization = if cycles_max > 0.0 {
            Some(t.cycles as f64 / cycles_max)
        } else {
            None
        };
        let ipc = if t.cycles == 0 {
            None
        } else {
            Some(t.instructions as f64 / t.cycles as f64)
        };
        let flops_per_sec = if self.runtime > 0.0 {
            Some(t.flops as f64 / self.runtime)
        } else {
            None
        };
        DerivedMetrics {
            efficiency,
            utilization,
            ipc,
            flops_per_sec,
        }
    }

    /// Merge every group of `factor` consecutive samples into one,
    /// producing the profile that a `factor`-times-slower sampling rate
    /// would have observed. Used by the sampling-effect experiments
    /// (Figs 2–3) and the ordering ablation.
    pub fn downsample(&self, factor: usize) -> Profile {
        assert!(factor >= 1, "downsample factor must be >= 1");
        let mut out = Profile {
            key: self.key.clone(),
            system: self.system.clone(),
            sample_rate_hz: self.sample_rate_hz / factor as f64,
            runtime: self.runtime,
            samples: Vec::with_capacity(self.samples.len().div_ceil(factor)),
        };
        for chunk in self.samples.chunks(factor) {
            let mut merged = chunk[0];
            for s in &chunk[1..] {
                merged = merged.absorb(s);
            }
            out.samples.push(merged);
        }
        out
    }

    /// Last sample end time; 0 for an empty profile. Useful as a lower
    /// bound on the runtime (profiling only terminates on full sample
    /// periods, §4.5).
    pub fn observed_span(&self) -> f64 {
        self.samples.last().map_or(0.0, Sample::t_end)
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, ModelError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deserialize from a JSON string.
    pub fn from_json(s: &str) -> Result<Profile, ModelError> {
        Ok(serde_json::from_str(s)?)
    }
}

/// A set of repeated profiles of the same `(command, tags)` workload,
/// supporting the "basic statistics analysis" §4 describes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileSet {
    profiles: Vec<Profile>,
}

impl ProfileSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a profile. All profiles in a set should share a key; the
    /// first profile fixes it and mismatching keys are rejected.
    pub fn push(&mut self, p: Profile) -> Result<(), ModelError> {
        if let Some(first) = self.profiles.first() {
            if first.key != p.key {
                return Err(ModelError::InvalidValue {
                    field: "key",
                    reason: format!("expected {}, got {}", first.key, p.key),
                });
            }
        }
        self.profiles.push(p);
        Ok(())
    }

    /// Number of profiles in the set.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profiles.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Summary of runtimes Tx across the repeated runs.
    pub fn runtime_summary(&self) -> Result<Summary, ModelError> {
        Summary::of(&self.profiles.iter().map(|p| p.runtime).collect::<Vec<_>>())
    }

    /// Summary of one totals field across the runs.
    pub fn totals_summary(&self, f: impl Fn(&Totals) -> f64) -> Result<Summary, ModelError> {
        Summary::of(
            &self
                .profiles
                .iter()
                .map(|p| f(&p.totals()))
                .collect::<Vec<_>>(),
        )
    }

    /// The *mean profile*: the profile whose runtime is closest to the
    /// mean runtime. Emulation of a profile set replays a concrete run
    /// (sample ordering matters), so we pick the most representative
    /// one rather than averaging sample-by-sample.
    pub fn representative(&self) -> Option<&Profile> {
        let mean = self.runtime_summary().ok()?.mean;
        self.profiles.iter().min_by(|a, b| {
            (a.runtime - mean)
                .abs()
                .partial_cmp(&(b.runtime - mean).abs())
                .unwrap()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{ComputeSample, MemorySample, NetworkSample, StorageSample};
    use crate::tags::Tags;

    fn sample(t: f64, cycles: u64, written: u64) -> Sample {
        Sample {
            t,
            dt: 0.5,
            compute: ComputeSample {
                cycles,
                instructions: cycles * 2,
                stalled_frontend: cycles / 10,
                stalled_backend: cycles / 10,
                flops: cycles / 2,
                threads: 1,
            },
            memory: MemorySample {
                allocated: 100,
                freed: 50,
                rss: 1000,
                peak: 1200,
            },
            storage: StorageSample {
                bytes_read: 10,
                bytes_written: written,
                read_ops: 1,
                write_ops: 1,
            },
            network: NetworkSample::default(),
        }
    }

    fn profile() -> Profile {
        let mut p = Profile::new(
            ProfileKey::new("app", Tags::parse("steps=10")),
            SystemInfo {
                hostname: "thinkie".into(),
                ncores: 4,
                max_freq_hz: 2e9,
                total_memory: 8 << 30,
                load_avg: 0.0,
            },
            2.0,
        );
        p.runtime = 2.0;
        for i in 0..4 {
            p.push(sample(i as f64 * 0.5, 1000, 64)).unwrap();
        }
        p
    }

    #[test]
    fn push_enforces_order() {
        let mut p = profile();
        let early = sample(0.1, 1, 1);
        assert!(matches!(
            p.push(early),
            Err(ModelError::UnorderedSamples { .. })
        ));
        // Equal timestamps are allowed (watchers are unsynchronized).
        let same_t = sample(1.5, 1, 1);
        assert!(p.push(same_t).is_ok());
    }

    #[test]
    fn totals_integrate_series() {
        let t = profile().totals();
        assert_eq!(t.cycles, 4000);
        assert_eq!(t.instructions, 8000);
        assert_eq!(t.flops, 2000);
        assert_eq!(t.bytes_written, 256);
        assert_eq!(t.mem_allocated, 400);
        assert_eq!(t.mem_peak, 1200);
        assert_eq!(t.max_threads, 1);
    }

    #[test]
    fn derived_metrics_follow_paper_formulas() {
        let p = profile();
        let d = p.derived();
        // efficiency = 4000 / (4000 + 800)
        assert!((d.efficiency.unwrap() - 4000.0 / 4800.0).abs() < 1e-12);
        // utilization = 4000 / (2e9 * 2.0 * 1 thread)
        assert!((d.utilization.unwrap() - 4000.0 / 4e9).abs() < 1e-18);
        assert!((d.ipc.unwrap() - 2.0).abs() < 1e-12);
        assert!((d.flops_per_sec.unwrap() - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics_on_empty_profile() {
        let p = Profile::new(ProfileKey::default(), SystemInfo::default(), 1.0);
        let d = p.derived();
        assert!(d.efficiency.is_none());
        assert!(d.ipc.is_none());
        assert!(d.flops_per_sec.is_none());
    }

    #[test]
    fn downsample_preserves_totals() {
        let p = profile();
        let d = p.downsample(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sample_rate_hz, 1.0);
        assert_eq!(d.totals(), p.totals());
        // And further down to a single sample.
        let d4 = p.downsample(4);
        assert_eq!(d4.len(), 1);
        assert_eq!(d4.totals(), p.totals());
    }

    #[test]
    fn downsample_uneven_chunks() {
        let mut p = profile();
        p.push(sample(2.0, 500, 1)).unwrap(); // 5 samples now
        let d = p.downsample(2);
        assert_eq!(d.len(), 3); // 2 + 2 + 1
        assert_eq!(d.totals(), p.totals());
    }

    #[test]
    fn observed_span_and_validate() {
        let p = profile();
        assert!((p.observed_span() - 2.0).abs() < 1e-12);
        assert!(p.validate().is_ok());
        let mut bad = p.clone();
        bad.runtime = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let p = profile();
        let back = Profile::from_json(&p.to_json().unwrap()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn profile_set_statistics() {
        let mut set = ProfileSet::new();
        for rt in [1.0, 2.0, 3.0] {
            let mut p = profile();
            p.runtime = rt;
            set.push(p).unwrap();
        }
        let s = set.runtime_summary().unwrap();
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(set.len(), 3);
        // representative = run closest to the mean runtime
        assert!((set.representative().unwrap().runtime - 2.0).abs() < 1e-12);
        let cyc = set.totals_summary(|t| t.cycles as f64).unwrap();
        assert!((cyc.mean - 4000.0).abs() < 1e-12);
    }

    #[test]
    fn profile_set_rejects_key_mismatch() {
        let mut set = ProfileSet::new();
        set.push(profile()).unwrap();
        let mut other = profile();
        other.key = ProfileKey::new("different", Tags::new());
        assert!(set.push(other).is_err());
    }
}
