//! Statistics over repeated measurements.
//!
//! The paper reports means with error bars denoting a 99 % confidence
//! interval (E.3: "for all data points, the width of the confidence
//! interval is no more than 6.6 % of the value of the data point"), and
//! error percentages of emulation relative to application runs. This
//! module implements those computations with a small-sample Student-t
//! table for the 99 % level.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Two-sided Student-t critical values at the 99 % confidence level for
/// `df = 1..=30` degrees of freedom. Beyond 30 we fall back to the
/// normal quantile 2.576.
const T99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// Critical value of the two-sided 99 % Student-t distribution for the
/// given degrees of freedom (clamped to the normal quantile for large
/// `df`).
pub fn t99(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T99.len() {
        T99[df - 1]
    } else {
        2.576
    }
}

/// Summary statistics of a series of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n = 1).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a series. Errors on an empty input or non-finite data.
    pub fn of(values: &[f64]) -> Result<Summary, ModelError> {
        if values.is_empty() {
            return Err(ModelError::EmptySeries);
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(ModelError::InvalidValue {
                field: "values",
                reason: format!("non-finite observation {bad}"),
            });
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        })
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.std / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the 99 % confidence interval of the mean.
    /// Zero for a single observation with zero variance convention
    /// would be misleading, so `n = 1` yields infinity (unknown spread).
    pub fn ci99(&self) -> f64 {
        if self.n <= 1 {
            if self.std == 0.0 && self.n == 1 {
                // A single noiseless (deterministic) observation: the
                // interval collapses.
                return 0.0;
            }
            return f64::INFINITY;
        }
        t99(self.n - 1) * self.stderr()
    }

    /// Relative CI half-width (CI99 / |mean|), the "width no more than
    /// 6.6 % of the value" check from E.3. `None` when the mean is 0.
    pub fn ci99_rel(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.ci99() / self.mean.abs())
        }
    }

    /// Coefficient of variation (std / |mean|). `None` when mean is 0.
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std / self.mean.abs())
        }
    }
}

/// Convenience: 99 % CI half-width of a raw series.
pub fn ci99_halfwidth(values: &[f64]) -> Result<f64, ModelError> {
    Ok(Summary::of(values)?.ci99())
}

/// Error percentage of a measured value against a reference, as the
/// paper's second y-axes report it: `|measured - reference| /
/// reference * 100`.
///
/// Returns `None` when the reference is zero (undefined).
pub fn error_pct(measured: f64, reference: f64) -> Option<f64> {
    if reference == 0.0 {
        None
    } else {
        Some(((measured - reference) / reference).abs() * 100.0)
    }
}

/// Signed difference percentage (`(measured - reference) / reference *
/// 100`), used where the paper distinguishes faster vs slower (E.2:
/// Stampede converges to ~-40 %, Archer to ~+33 %).
pub fn diff_pct(measured: f64, reference: f64) -> Option<f64> {
    if reference == 0.0 {
        None
    } else {
        Some((measured - reference) / reference * 100.0)
    }
}

/// Online mean/variance accumulator (Welford). Used by watchers that
/// summarize high-frequency raw readings between samples without
/// storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Running sample variance (n-1; 0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Known dataset: population std = 2, sample std = sqrt(32/7)
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_rejects_empty_and_nonfinite() {
        assert!(matches!(Summary::of(&[]), Err(ModelError::EmptySeries)));
        assert!(Summary::of(&[1.0, f64::NAN]).is_err());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn single_observation_summary() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci99(), 0.0);
    }

    #[test]
    fn t_table_monotone_and_converging() {
        assert!(t99(1) > t99(2));
        assert!(t99(5) > t99(30));
        assert!((t99(1000) - 2.576).abs() < 1e-12);
        assert!(t99(0).is_infinite());
    }

    #[test]
    fn ci99_matches_hand_computation() {
        // n = 5, std = 1 -> ci = t99(4) / sqrt(5)
        let vals = [0.0, 0.5, 1.0, 1.5, 2.0];
        let s = Summary::of(&vals).unwrap();
        let expect = t99(4) * s.std / (5f64).sqrt();
        assert!((s.ci99() - expect).abs() < 1e-12);
    }

    #[test]
    fn relative_ci_and_cv() {
        let s = Summary::of(&[10.0, 10.0, 10.0, 10.0]).unwrap();
        assert_eq!(s.ci99_rel(), Some(0.0));
        assert_eq!(s.cv(), Some(0.0));
        let z = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(z.ci99_rel().is_none()); // mean is zero
    }

    #[test]
    fn error_and_diff_percentages() {
        assert!((error_pct(140.0, 100.0).unwrap() - 40.0).abs() < 1e-12);
        assert!((error_pct(60.0, 100.0).unwrap() - 40.0).abs() < 1e-12);
        assert!((diff_pct(60.0, 100.0).unwrap() + 40.0).abs() < 1e-12);
        assert!(error_pct(1.0, 0.0).is_none());
        assert!(diff_pct(1.0, 0.0).is_none());
    }

    #[test]
    fn welford_agrees_with_summary() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for v in vals {
            w.push(v);
        }
        let s = Summary::of(&vals).unwrap();
        assert!((w.mean() - s.mean).abs() < 1e-12);
        assert!((w.std() - s.std).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(7.0);
        assert_eq!(w1.mean(), 7.0);
        assert_eq!(w1.std(), 0.0);
    }
}
