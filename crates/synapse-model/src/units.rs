//! Unit helpers: byte sizes, frequencies and durations.
//!
//! The paper reports quantities in a mix of units (Hz sampling rates,
//! GHz clock speeds, bytes, MB documents, seconds). These helpers keep
//! conversions in one place and make the experiment harness output
//! readable.

/// Number of bytes in a kibibyte.
pub const KIB: u64 = 1024;
/// Number of bytes in a mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Number of bytes in a gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// One million cycles/ops — convenient for counter arithmetic.
pub const MEGA: u64 = 1_000_000;
/// One billion cycles/ops.
pub const GIGA: u64 = 1_000_000_000;

/// Convert a frequency in GHz to Hz.
#[inline]
pub fn ghz(f: f64) -> f64 {
    f * 1e9
}

/// Convert a frequency in MHz to Hz.
#[inline]
pub fn mhz(f: f64) -> f64 {
    f * 1e6
}

/// Format a byte count with a binary-prefixed unit, e.g. `1.50 MiB`.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Format an operation count with an SI prefix, e.g. `2.40 Gops`.
pub fn fmt_ops(ops: u64) -> String {
    let o = ops as f64;
    if ops >= GIGA {
        format!("{:.2} G", o / GIGA as f64)
    } else if ops >= MEGA {
        format!("{:.2} M", o / MEGA as f64)
    } else if ops >= 1000 {
        format!("{:.2} k", o / 1e3)
    } else {
        format!("{ops} ")
    }
}

/// Format seconds with adaptive precision, e.g. `12.3 s` or `45 ms`.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting_uses_binary_prefixes() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * MIB + MIB / 2), "3.50 MiB");
        assert_eq!(fmt_bytes(GIB), "1.00 GiB");
    }

    #[test]
    fn ops_formatting_uses_si_prefixes() {
        assert_eq!(fmt_ops(999), "999 ");
        assert_eq!(fmt_ops(1_500), "1.50 k");
        assert_eq!(fmt_ops(2_500_000), "2.50 M");
        assert_eq!(fmt_ops(7 * GIGA), "7.00 G");
    }

    #[test]
    fn seconds_formatting_adapts() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(42e-6), "42.0 us");
    }

    #[test]
    fn frequency_conversions() {
        assert_eq!(ghz(2.5), 2.5e9);
        assert_eq!(mhz(800.0), 8e8);
    }
}
