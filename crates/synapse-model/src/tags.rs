//! Profile identification: command lines and tags.
//!
//! Per the paper (§4), the application startup command and custom tags
//! are used as the search index in the profile database. Tags
//! distinguish profiles where the command line is identical but
//! configuration files or environment change the actual workload (e.g.
//! `steps=100000` for a Gromacs run).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An ordered set of `key=value` tags attached to a profile.
///
/// Tags are kept in a sorted map so that two tag sets with the same
/// content always produce the same canonical form, independent of
/// insertion order — essential for database lookups.
///
/// ```
/// use synapse_model::Tags;
/// let stored = Tags::parse("steps=100000,host=thinkie");
/// // Queries match on a subset of tags:
/// assert!(stored.matches(&Tags::parse("steps=100000")));
/// assert!(!stored.matches(&Tags::parse("steps=1")));
/// // Canonical form is insertion-order independent:
/// assert_eq!(stored.to_string(), "host=thinkie,steps=100000");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tags(BTreeMap<String, String>);

impl Tags {
    /// Empty tag set.
    pub fn new() -> Self {
        Tags(BTreeMap::new())
    }

    /// Build from `key=value` pairs. Later duplicates win.
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        Tags(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Parse a comma-separated `k=v,k2=v2` string (the CLI format).
    /// A bare token without `=` becomes a flag tag with empty value.
    pub fn parse(s: &str) -> Self {
        let mut map = BTreeMap::new();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok.split_once('=') {
                Some((k, v)) => map.insert(k.trim().to_string(), v.trim().to_string()),
                None => map.insert(tok.to_string(), String::new()),
            };
        }
        Tags(map)
    }

    /// Insert or replace one tag; returns `self` for chaining.
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.0.insert(key.into(), value.to_string());
        self
    }

    /// Look a tag value up.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the tag set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether all of `other`'s tags are present with equal values.
    /// (Database queries match on a subset: a query `{steps=100}`
    /// matches a stored profile tagged `{steps=100, host=thinkie}`.)
    pub fn matches(&self, query: &Tags) -> bool {
        query.0.iter().all(|(k, v)| self.0.get(k) == Some(v))
    }

    /// Iterate `(key, value)` pairs in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl fmt::Display for Tags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.0 {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if v.is_empty() {
                write!(f, "{k}")?;
            } else {
                write!(f, "{k}={v}")?;
            }
        }
        Ok(())
    }
}

/// The `(command, tags)` pair that identifies a family of profiles in
/// the store.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProfileKey {
    /// Application startup command line.
    pub command: String,
    /// Workload-distinguishing tags.
    pub tags: Tags,
}

impl ProfileKey {
    /// Construct a key.
    pub fn new(command: impl Into<String>, tags: Tags) -> Self {
        ProfileKey {
            command: command.into(),
            tags,
        }
    }

    /// Canonical string id, stable across tag insertion orders; used as
    /// the index key in the document store and as file names in the
    /// file store (after sanitisation).
    pub fn id(&self) -> String {
        if self.tags.is_empty() {
            self.command.clone()
        } else {
            format!("{}#{}", self.command, self.tags)
        }
    }

    /// Whether a stored key satisfies this key used as a query:
    /// commands must be equal, stored tags must contain the query tags.
    pub fn matches(&self, query: &ProfileKey) -> bool {
        self.command == query.command && self.tags.matches(&query.tags)
    }
}

impl fmt::Display for ProfileKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_canonical_order_is_insertion_independent() {
        let a = Tags::new().with("b", 2).with("a", 1);
        let b = Tags::new().with("a", 1).with("b", 2);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "a=1,b=2");
    }

    #[test]
    fn parse_handles_flags_and_whitespace() {
        let t = Tags::parse(" steps=100 , gpu ,host=thinkie ");
        assert_eq!(t.get("steps"), Some("100"));
        assert_eq!(t.get("gpu"), Some(""));
        assert_eq!(t.get("host"), Some("thinkie"));
        assert_eq!(t.len(), 3);
        assert!(Tags::parse("").is_empty());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let t = Tags::parse("a=1,b,c=x");
        let back = Tags::parse(&t.to_string());
        assert_eq!(t, back);
    }

    #[test]
    fn subset_matching() {
        let stored = Tags::parse("steps=100,host=thinkie");
        assert!(stored.matches(&Tags::parse("steps=100")));
        assert!(stored.matches(&Tags::new()));
        assert!(!stored.matches(&Tags::parse("steps=200")));
        assert!(!stored.matches(&Tags::parse("missing=1")));
    }

    #[test]
    fn key_id_stable_and_command_sensitive() {
        let k1 = ProfileKey::new("gromacs mdrun", Tags::parse("steps=100"));
        let k2 = ProfileKey::new("gromacs mdrun", Tags::parse("steps=100"));
        assert_eq!(k1.id(), k2.id());
        assert!(k1.id().contains('#'));
        let plain = ProfileKey::new("sleep 1", Tags::new());
        assert_eq!(plain.id(), "sleep 1");
    }

    #[test]
    fn key_query_matching() {
        let stored = ProfileKey::new("app", Tags::parse("steps=100,host=x"));
        assert!(stored.matches(&ProfileKey::new("app", Tags::parse("steps=100"))));
        assert!(!stored.matches(&ProfileKey::new("other", Tags::parse("steps=100"))));
        assert!(!stored.matches(&ProfileKey::new("app", Tags::parse("steps=1"))));
    }

    #[test]
    fn serde_roundtrip() {
        let k = ProfileKey::new("cmd", Tags::parse("a=1"));
        let json = serde_json::to_string(&k).unwrap();
        let back: ProfileKey = serde_json::from_str(&json).unwrap();
        assert_eq!(k, back);
    }
}
