//! Metric registry mirroring Table 1 of the paper.
//!
//! Table 1 ("List of Synapse metrics and their usage") enumerates every
//! metric Synapse knows about, grouped by resource class, together with
//! four usage columns:
//!
//! * **Tot.** — integrated total over the whole runtime,
//! * **Sampl.** — sampled over time (time series),
//! * **Der.** — derived from other metrics,
//! * **Emul.** — used to drive emulation,
//!
//! where `+` means supported, `-` unsupported, `(+)` partially
//! supported and `(-)` planned. The registry below is the programmatic
//! source of truth; the `table1_metrics` bench target renders it in the
//! paper's layout and the profiler/emulator consult it to decide which
//! quantities to collect and replay.

use serde::{Deserialize, Serialize};

/// Resource class a metric belongs to (first column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Host-level information (cores, frequency, load, runtime).
    System,
    /// CPU activity (cycles, instructions, efficiency, threads).
    Compute,
    /// Disk I/O.
    Storage,
    /// Memory allocation and residency.
    Memory,
    /// Network traffic (largely planned in the paper).
    Network,
}

impl ResourceClass {
    /// All classes in the order Table 1 lists them.
    pub const ALL: [ResourceClass; 5] = [
        ResourceClass::System,
        ResourceClass::Compute,
        ResourceClass::Storage,
        ResourceClass::Memory,
        ResourceClass::Network,
    ];

    /// Display name used in the rendered table.
    pub fn name(self) -> &'static str {
        match self {
            ResourceClass::System => "System",
            ResourceClass::Compute => "Compute",
            ResourceClass::Storage => "Storage",
            ResourceClass::Memory => "Memory",
            ResourceClass::Network => "Network",
        }
    }
}

/// Support level for one usage column of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Support {
    /// `+` — fully supported.
    Yes,
    /// `-` — not supported and not planned.
    No,
    /// `(+)` — partially supported.
    Partial,
    /// `(-)` — planned future work.
    Planned,
}

impl Support {
    /// The notation used in the paper's table.
    pub fn symbol(self) -> &'static str {
        match self {
            Support::Yes => "+",
            Support::No => "-",
            Support::Partial => "(+)",
            Support::Planned => "(-)",
        }
    }

    /// Whether the metric is available in this column at all
    /// (fully or partially).
    pub fn available(self) -> bool {
        matches!(self, Support::Yes | Support::Partial)
    }
}

/// Usage flags for a single metric: the four columns of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricUsage {
    /// Integrated total over runtime.
    pub total: Support,
    /// Sampled over time.
    pub sampled: Support,
    /// Derived from other metrics.
    pub derived: Support,
    /// Used in emulation.
    pub emulated: Support,
}

const fn usage(
    total: Support,
    sampled: Support,
    derived: Support,
    emulated: Support,
) -> MetricUsage {
    MetricUsage {
        total,
        sampled,
        derived,
        emulated,
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metric {
    /// Resource class (table grouping).
    pub class: ResourceClass,
    /// Metric name as printed in the paper.
    pub name: &'static str,
    /// Usage columns.
    pub usage: MetricUsage,
}

use Support::{No, Partial, Planned, Yes};

/// The full Table 1 registry, in the paper's row order.
pub const METRIC_REGISTRY: &[Metric] = &[
    // System
    Metric {
        class: ResourceClass::System,
        name: "number of cores",
        usage: usage(Yes, No, No, No),
    },
    Metric {
        class: ResourceClass::System,
        name: "max CPU frequency",
        usage: usage(Yes, No, No, No),
    },
    Metric {
        class: ResourceClass::System,
        name: "total memory",
        usage: usage(Yes, No, No, No),
    },
    Metric {
        class: ResourceClass::System,
        name: "runtime",
        usage: usage(Yes, Yes, No, No),
    },
    Metric {
        class: ResourceClass::System,
        name: "system load (CPU)",
        usage: usage(Yes, No, No, Yes),
    },
    Metric {
        class: ResourceClass::System,
        name: "system load (disk)",
        usage: usage(No, No, No, Yes),
    },
    Metric {
        class: ResourceClass::System,
        name: "system load (memory)",
        usage: usage(No, No, No, Yes),
    },
    // Compute
    Metric {
        class: ResourceClass::Compute,
        name: "CPU instructions",
        usage: usage(Yes, Yes, No, Yes),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "cycles used",
        usage: usage(Yes, Yes, No, Yes),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "cycles stalled backend",
        usage: usage(Yes, Yes, No, No),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "cycles stalled frontend",
        usage: usage(Yes, Yes, No, No),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "efficiency",
        usage: usage(Yes, Yes, Yes, Partial),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "utilization",
        usage: usage(Yes, Yes, Yes, No),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "FLOPs",
        usage: usage(Yes, Yes, Yes, Yes),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "FLOP/s",
        usage: usage(Yes, Yes, Yes, No),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "number of threads",
        usage: usage(Yes, No, No, Partial),
    },
    Metric {
        class: ResourceClass::Compute,
        name: "OpenMP",
        usage: usage(Partial, No, No, Yes),
    },
    // Storage
    Metric {
        class: ResourceClass::Storage,
        name: "bytes read",
        usage: usage(Yes, Yes, No, Yes),
    },
    Metric {
        class: ResourceClass::Storage,
        name: "bytes written",
        usage: usage(Yes, Yes, No, Yes),
    },
    Metric {
        class: ResourceClass::Storage,
        name: "block size read",
        usage: usage(No, Partial, No, Yes),
    },
    Metric {
        class: ResourceClass::Storage,
        name: "block size write",
        usage: usage(No, Partial, No, Yes),
    },
    Metric {
        class: ResourceClass::Storage,
        name: "used file system",
        usage: usage(Yes, No, No, Yes),
    },
    // Memory
    Metric {
        class: ResourceClass::Memory,
        name: "bytes peak",
        usage: usage(Yes, Yes, No, No),
    },
    Metric {
        class: ResourceClass::Memory,
        name: "bytes resident size",
        usage: usage(Yes, Yes, No, No),
    },
    Metric {
        class: ResourceClass::Memory,
        name: "bytes allocated",
        usage: usage(Yes, Yes, Yes, Yes),
    },
    Metric {
        class: ResourceClass::Memory,
        name: "bytes freed",
        usage: usage(Yes, Yes, Yes, Yes),
    },
    Metric {
        class: ResourceClass::Memory,
        name: "block size alloc",
        usage: usage(No, Planned, No, Planned),
    },
    Metric {
        class: ResourceClass::Memory,
        name: "block size free",
        usage: usage(No, Planned, No, Planned),
    },
    // Network
    Metric {
        class: ResourceClass::Network,
        name: "connection endpoint",
        usage: usage(Planned, Planned, No, Partial),
    },
    Metric {
        class: ResourceClass::Network,
        name: "bytes read",
        usage: usage(Planned, Planned, No, Partial),
    },
    Metric {
        class: ResourceClass::Network,
        name: "bytes written",
        usage: usage(Planned, Planned, No, Partial),
    },
    Metric {
        class: ResourceClass::Network,
        name: "block size read",
        usage: usage(No, Planned, No, Planned),
    },
    Metric {
        class: ResourceClass::Network,
        name: "block size write",
        usage: usage(No, Planned, No, Planned),
    },
];

/// Iterate the registry rows belonging to one resource class.
pub fn metrics_for(class: ResourceClass) -> impl Iterator<Item = &'static Metric> {
    METRIC_REGISTRY.iter().filter(move |m| m.class == class)
}

/// Look a metric up by class and name.
pub fn find_metric(class: ResourceClass, name: &str) -> Option<&'static Metric> {
    METRIC_REGISTRY
        .iter()
        .find(|m| m.class == class && m.name == name)
}

/// Render the registry in the paper's Table 1 layout.
///
/// Produces a fixed-width text table with one row per metric and the
/// four usage columns, suitable for terminal output and for comparison
/// against the published table.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<26} {:>6} {:>6} {:>6} {:>6}\n",
        "Resource", "Metric", "Tot.", "Samp.", "Der.", "Emul."
    ));
    out.push_str(&"-".repeat(66));
    out.push('\n');
    let mut last_class = None;
    for m in METRIC_REGISTRY {
        let class = if last_class == Some(m.class) {
            ""
        } else {
            last_class = Some(m.class);
            m.class.name()
        };
        out.push_str(&format!(
            "{:<10} {:<26} {:>6} {:>6} {:>6} {:>6}\n",
            class,
            m.name,
            m.usage.total.symbol(),
            m.usage.sampled.symbol(),
            m.usage.derived.symbol(),
            m.usage.emulated.symbol(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_paper_row_count() {
        // Table 1 has 7 system + 10 compute + 5 storage + 6 memory +
        // 5 network rows.
        assert_eq!(METRIC_REGISTRY.len(), 33);
        assert_eq!(metrics_for(ResourceClass::System).count(), 7);
        assert_eq!(metrics_for(ResourceClass::Compute).count(), 10);
        assert_eq!(metrics_for(ResourceClass::Storage).count(), 5);
        assert_eq!(metrics_for(ResourceClass::Memory).count(), 6);
        assert_eq!(metrics_for(ResourceClass::Network).count(), 5);
    }

    #[test]
    fn registry_rows_are_grouped_by_class() {
        // Rows must appear grouped (System block, then Compute, ...) so
        // the rendered table matches the paper's layout.
        let mut seen = Vec::new();
        for m in METRIC_REGISTRY {
            if seen.last() != Some(&m.class) {
                assert!(
                    !seen.contains(&m.class),
                    "class {:?} appears in two blocks",
                    m.class
                );
                seen.push(m.class);
            }
        }
        assert_eq!(seen, ResourceClass::ALL.to_vec());
    }

    #[test]
    fn key_rows_match_paper() {
        let flops = find_metric(ResourceClass::Compute, "FLOPs").unwrap();
        assert_eq!(flops.usage, super::usage(Yes, Yes, Yes, Yes));
        let eff = find_metric(ResourceClass::Compute, "efficiency").unwrap();
        assert_eq!(eff.usage.emulated, Support::Partial);
        let peak = find_metric(ResourceClass::Memory, "bytes peak").unwrap();
        assert_eq!(peak.usage.emulated, Support::No);
        let net = find_metric(ResourceClass::Network, "bytes read").unwrap();
        assert_eq!(net.usage.total, Support::Planned);
        assert_eq!(net.usage.emulated, Support::Partial);
    }

    #[test]
    fn support_symbols_match_notation() {
        assert_eq!(Support::Yes.symbol(), "+");
        assert_eq!(Support::No.symbol(), "-");
        assert_eq!(Support::Partial.symbol(), "(+)");
        assert_eq!(Support::Planned.symbol(), "(-)");
        assert!(Support::Yes.available());
        assert!(Support::Partial.available());
        assert!(!Support::No.available());
        assert!(!Support::Planned.available());
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let table = render_table1();
        for m in METRIC_REGISTRY {
            assert!(table.contains(m.name), "missing row {}", m.name);
        }
        // Header and the five class labels appear.
        for c in ResourceClass::ALL {
            assert!(table.contains(c.name()));
        }
        assert!(table.contains("Emul."));
    }

    #[test]
    fn find_metric_misses_gracefully() {
        assert!(find_metric(ResourceClass::System, "no such metric").is_none());
        // Same name exists in Storage and Network; class disambiguates.
        let s = find_metric(ResourceClass::Storage, "bytes read").unwrap();
        let n = find_metric(ResourceClass::Network, "bytes read").unwrap();
        assert_ne!(s.usage.total, n.usage.total);
    }
}
