//! Error type for the data-model layer.

use std::fmt;

/// Errors produced while constructing, validating or serializing model
/// types.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A sample or profile field carried a value outside its domain
    /// (negative interval, NaN timestamp, ...).
    InvalidValue {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Samples were not ordered by timestamp.
    UnorderedSamples {
        /// Index of the first out-of-order sample.
        index: usize,
    },
    /// A profile had no samples where at least one was required.
    EmptyProfile,
    /// JSON (de)serialization failure.
    Serde(String),
    /// A statistics routine was asked for a summary of an empty series.
    EmptySeries,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidValue { field, reason } => {
                write!(f, "invalid value for `{field}`: {reason}")
            }
            ModelError::UnorderedSamples { index } => {
                write!(f, "sample {index} is out of timestamp order")
            }
            ModelError::EmptyProfile => write!(f, "profile contains no samples"),
            ModelError::Serde(e) => write!(f, "serialization error: {e}"),
            ModelError::EmptySeries => write!(f, "statistics requested over an empty series"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<serde_json::Error> for ModelError {
    fn from(e: serde_json::Error) -> Self {
        ModelError::Serde(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidValue {
            field: "dt",
            reason: "negative".into(),
        };
        assert!(e.to_string().contains("dt"));
        assert!(e.to_string().contains("negative"));
        assert!(ModelError::EmptyProfile.to_string().contains("no samples"));
        assert!(ModelError::UnorderedSamples { index: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn from_serde_error() {
        let bad: Result<u32, _> = serde_json::from_str("not json");
        let err: ModelError = bad.unwrap_err().into();
        assert!(matches!(err, ModelError::Serde(_)));
    }
}
