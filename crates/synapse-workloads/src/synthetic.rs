//! Phase-scripted synthetic workloads.
//!
//! Figures 2–3 of the paper reason about applications with "a mix of
//! serial and concurrent CPU and disk operations". This module scripts
//! such applications explicitly as a sequence of phases, each either a
//! single operation or a group of concurrent operations. Scripts can
//! be *executed for real* (burn CPU, hit the filesystem — for live
//! profiling on this host) and are also consumed analytically by the
//! simulated profiler.

use std::fs::File;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::thread;

/// One primitive operation of a synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseOp {
    /// Execute roughly `flops` floating-point operations.
    Compute {
        /// FLOP count of the phase.
        flops: u64,
    },
    /// Write `bytes` to a scratch file in blocks of `block`.
    DiskWrite {
        /// Total bytes.
        bytes: u64,
        /// Block size per write call.
        block: u64,
    },
    /// Read `bytes` back from the scratch file in blocks of `block`.
    DiskRead {
        /// Total bytes.
        bytes: u64,
        /// Block size per read call.
        block: u64,
    },
    /// Hold `bytes` of additionally allocated memory from this phase
    /// on (touching every page).
    Allocate {
        /// Bytes to allocate and touch.
        bytes: u64,
    },
    /// Run the inner operations concurrently (threads).
    Concurrent(Vec<PhaseOp>),
}

impl PhaseOp {
    /// Total FLOPs contributed by this op (recursively).
    pub fn flops(&self) -> u64 {
        match self {
            PhaseOp::Compute { flops } => *flops,
            PhaseOp::Concurrent(ops) => ops.iter().map(PhaseOp::flops).sum(),
            _ => 0,
        }
    }

    /// Total bytes written (recursively).
    pub fn bytes_written(&self) -> u64 {
        match self {
            PhaseOp::DiskWrite { bytes, .. } => *bytes,
            PhaseOp::Concurrent(ops) => ops.iter().map(PhaseOp::bytes_written).sum(),
            _ => 0,
        }
    }

    /// Total bytes read (recursively).
    pub fn bytes_read(&self) -> u64 {
        match self {
            PhaseOp::DiskRead { bytes, .. } => *bytes,
            PhaseOp::Concurrent(ops) => ops.iter().map(PhaseOp::bytes_read).sum(),
            _ => 0,
        }
    }
}

/// A synthetic application: an ordered list of phases executed one
/// after another (ops inside a [`PhaseOp::Concurrent`] run together).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseScript {
    /// The phases, in execution order.
    pub phases: Vec<PhaseOp>,
    /// Scratch directory for disk phases (temp dir by default).
    pub scratch: Option<PathBuf>,
}

/// Outcome of a real execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScriptReport {
    /// FLOPs executed.
    pub flops: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Peak additional bytes held by Allocate phases.
    pub allocated: u64,
}

impl PhaseScript {
    /// A script made of the given phases using the default scratch dir.
    pub fn new(phases: Vec<PhaseOp>) -> Self {
        PhaseScript {
            phases,
            scratch: None,
        }
    }

    /// The paper's Fig. 2 example: serial compute and disk phases with
    /// one concurrent stretch, sized so the whole run takes roughly
    /// `scale` × 100 ms of compute on a laptop-class core.
    pub fn fig2_example(scale: u64) -> Self {
        let c = 40_000_000 * scale; // flops per compute phase
        let d = 4 * 1024 * 1024 * scale; // bytes per disk phase
        PhaseScript::new(vec![
            PhaseOp::Compute { flops: c },
            PhaseOp::DiskWrite {
                bytes: d,
                block: 1 << 20,
            },
            PhaseOp::Compute { flops: c / 2 },
            PhaseOp::Concurrent(vec![
                PhaseOp::Compute { flops: c },
                PhaseOp::DiskWrite {
                    bytes: d / 2,
                    block: 1 << 20,
                },
            ]),
            PhaseOp::DiskRead {
                bytes: d,
                block: 1 << 20,
            },
            PhaseOp::Compute { flops: c / 2 },
        ])
    }

    /// Total expected FLOPs of the script.
    pub fn total_flops(&self) -> u64 {
        self.phases.iter().map(PhaseOp::flops).sum()
    }

    /// Total expected bytes written.
    pub fn total_bytes_written(&self) -> u64 {
        self.phases.iter().map(PhaseOp::bytes_written).sum()
    }

    /// Total expected bytes read.
    pub fn total_bytes_read(&self) -> u64 {
        self.phases.iter().map(PhaseOp::bytes_read).sum()
    }

    /// Execute the script for real on this host.
    pub fn execute(&self) -> std::io::Result<ScriptReport> {
        let scratch = self
            .scratch
            .clone()
            .unwrap_or_else(std::env::temp_dir)
            .join(format!("synapse-synth-{}.dat", std::process::id()));
        let mut report = ScriptReport::default();
        let mut held: Vec<Vec<u8>> = Vec::new();
        for (i, phase) in self.phases.iter().enumerate() {
            execute_op(phase, &scratch, i, &mut report, &mut held)?;
        }
        let _ = std::fs::remove_file(&scratch);
        Ok(report)
    }
}

fn execute_op(
    op: &PhaseOp,
    scratch: &PathBuf,
    index: usize,
    report: &mut ScriptReport,
    held: &mut Vec<Vec<u8>>,
) -> std::io::Result<()> {
    match op {
        PhaseOp::Compute { flops } => {
            std::hint::black_box(busy_flops(*flops));
            report.flops += flops;
        }
        PhaseOp::DiskWrite { bytes, block } => {
            let written = write_file(scratch, *bytes, *block)?;
            report.bytes_written += written;
        }
        PhaseOp::DiskRead { bytes, block } => {
            // Ensure the file is large enough, then read.
            if std::fs::metadata(scratch).map(|m| m.len()).unwrap_or(0) < *bytes {
                write_file(scratch, *bytes, (*block).max(1 << 20))?;
                report.bytes_written += *bytes;
            }
            report.bytes_read += read_file(scratch, *bytes, *block)?;
        }
        PhaseOp::Allocate { bytes } => {
            let mut buf = vec![0u8; *bytes as usize];
            // Touch each page so the allocation becomes resident.
            for i in (0..buf.len()).step_by(4096) {
                buf[i] = 1;
            }
            report.allocated += *bytes;
            held.push(buf);
        }
        PhaseOp::Concurrent(ops) => {
            let results: Vec<std::io::Result<ScriptReport>> = thread::scope(|s| {
                let handles: Vec<_> = ops
                    .iter()
                    .enumerate()
                    .map(|(j, inner)| {
                        let path = scratch.with_extension(format!("c{index}-{j}"));
                        s.spawn(move || {
                            let mut r = ScriptReport::default();
                            let mut h = Vec::new();
                            execute_op(inner, &path, j, &mut r, &mut h)?;
                            let _ = std::fs::remove_file(&path);
                            Ok(r)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in results {
                let r = r?;
                report.flops += r.flops;
                report.bytes_written += r.bytes_written;
                report.bytes_read += r.bytes_read;
                report.allocated += r.allocated;
            }
        }
    }
    Ok(())
}

fn write_file(path: &PathBuf, bytes: u64, block: u64) -> std::io::Result<u64> {
    let block = block.max(1) as usize;
    let buf = vec![0xabu8; block];
    let mut f = File::create(path)?;
    let mut remaining = bytes;
    while remaining > 0 {
        let n = remaining.min(block as u64) as usize;
        f.write_all(&buf[..n])?;
        remaining -= n as u64;
    }
    f.flush()?;
    Ok(bytes)
}

fn read_file(path: &PathBuf, bytes: u64, block: u64) -> std::io::Result<u64> {
    let block = block.max(1) as usize;
    let mut buf = vec![0u8; block];
    let mut f = File::open(path)?;
    let mut total = 0u64;
    while total < bytes {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        total += n as u64;
    }
    Ok(total)
}

/// Execute approximately `flops` floating-point operations (a fused
/// multiply-add chain, 2 FLOPs per iteration), returning a value that
/// defeats constant folding.
#[inline(never)]
pub fn busy_flops(flops: u64) -> f64 {
    let iters = flops / 2;
    let mut acc = 1.000000001f64;
    let mut x = 0.999999999f64;
    for _ in 0..iters {
        acc = acc.mul_add(x, 1e-12); // 2 flops
        if acc > 1e12 {
            x = 1.0 / acc; // rare rescale, keeps values finite
        }
    }
    acc + x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_flops_is_deterministic_and_scaling() {
        assert_eq!(busy_flops(1000).to_bits(), busy_flops(1000).to_bits());
        assert!(busy_flops(0).is_finite());
        assert!(busy_flops(100_000).is_finite());
    }

    #[test]
    fn script_accounting_matches_expectations() {
        let s = PhaseScript::fig2_example(1);
        assert!(s.total_flops() > 0);
        assert!(s.total_bytes_written() > 0);
        assert!(s.total_bytes_read() > 0);
        // flops: c + c/2 + c + c/2 = 3c with c = 40M
        assert_eq!(s.total_flops(), 3 * 40_000_000);
    }

    #[test]
    fn executes_serial_phases_for_real() {
        let s = PhaseScript::new(vec![
            PhaseOp::Compute { flops: 1_000_000 },
            PhaseOp::DiskWrite {
                bytes: 64 * 1024,
                block: 4096,
            },
            PhaseOp::DiskRead {
                bytes: 64 * 1024,
                block: 4096,
            },
        ]);
        let r = s.execute().unwrap();
        assert_eq!(r.flops, 1_000_000);
        assert_eq!(r.bytes_written, 64 * 1024);
        assert_eq!(r.bytes_read, 64 * 1024);
    }

    #[test]
    fn executes_concurrent_phase() {
        let s = PhaseScript::new(vec![PhaseOp::Concurrent(vec![
            PhaseOp::Compute { flops: 500_000 },
            PhaseOp::DiskWrite {
                bytes: 32 * 1024,
                block: 4096,
            },
            PhaseOp::Compute { flops: 500_000 },
        ])]);
        let r = s.execute().unwrap();
        assert_eq!(r.flops, 1_000_000);
        assert_eq!(r.bytes_written, 32 * 1024);
    }

    #[test]
    fn allocation_phase_holds_memory() {
        let s = PhaseScript::new(vec![PhaseOp::Allocate { bytes: 1 << 20 }]);
        let r = s.execute().unwrap();
        assert_eq!(r.allocated, 1 << 20);
    }

    #[test]
    fn read_of_missing_data_backfills_the_file() {
        // A script that reads before writing still succeeds: the
        // executor materializes the scratch file first.
        let s = PhaseScript::new(vec![PhaseOp::DiskRead {
            bytes: 16 * 1024,
            block: 4096,
        }]);
        let r = s.execute().unwrap();
        assert_eq!(r.bytes_read, 16 * 1024);
    }

    #[test]
    fn recursive_accounting_through_concurrent() {
        let op = PhaseOp::Concurrent(vec![
            PhaseOp::Compute { flops: 10 },
            PhaseOp::Concurrent(vec![
                PhaseOp::DiskWrite { bytes: 5, block: 1 },
                PhaseOp::DiskRead { bytes: 7, block: 1 },
            ]),
        ]);
        assert_eq!(op.flops(), 10);
        assert_eq!(op.bytes_written(), 5);
        assert_eq!(op.bytes_read(), 7);
    }
}
