//! A real mini molecular-dynamics application (the Gromacs stand-in).
//!
//! Lennard-Jones particles in a cubic box, velocity-Verlet
//! integration, O(n²) force evaluation per step, and a trajectory
//! frame appended to an output file every `frame_interval` steps. The
//! externally observable behaviour matches how the paper uses Gromacs:
//!
//! * CPU cycles/FLOPs scale linearly with `steps`,
//! * disk *output* scales with `steps` (one frame per interval),
//! * disk *input* (the topology read at startup) and resident memory
//!   are constant in `steps`.
//!
//! The `synapse-mdsim` binary wraps this for black-box profiling.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::PathBuf;

/// Configuration of one MD run.
#[derive(Debug, Clone, PartialEq)]
pub struct MdConfig {
    /// Number of particles (memory footprint; FLOPs scale with n²).
    pub particles: usize,
    /// Number of integration steps (the paper's `tag_step` parameter).
    pub steps: u64,
    /// Steps between trajectory frames (disk output granularity).
    pub frame_interval: u64,
    /// Trajectory output path; `None` disables disk output.
    pub output: Option<PathBuf>,
    /// Optional topology file to read at startup (constant disk input).
    pub input: Option<PathBuf>,
    /// Integration time step.
    pub dt: f64,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            particles: 64,
            steps: 1000,
            frame_interval: 100,
            output: None,
            input: None,
            dt: 1e-3,
        }
    }
}

/// What one run did — used by tests and by the harness to know the
/// ground truth the profiler should have observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdReport {
    /// Steps executed.
    pub steps: u64,
    /// Frames written.
    pub frames_written: u64,
    /// Bytes written to the trajectory.
    pub bytes_written: u64,
    /// Bytes read from the topology file.
    pub bytes_read: u64,
    /// Final total energy (physics sanity check and optimization
    /// barrier — the value depends on every force evaluation).
    pub total_energy: f64,
    /// Floating-point operations executed (counted analytically from
    /// the loop structure).
    pub flops: u64,
}

/// The simulation state.
pub struct MdSim {
    config: MdConfig,
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
    box_len: f64,
}

/// FLOPs per pair interaction in `compute_forces` (counted from the
/// arithmetic below: 3 sub, 3 mul + 2 add (r2), ~10 for the LJ term,
/// 9 for accumulation).
pub const FLOPS_PER_PAIR: u64 = 27;
/// FLOPs per particle in the integrator (2×3 fused update steps).
pub const FLOPS_PER_PARTICLE_STEP: u64 = 18;

impl MdSim {
    /// Initialize particles on a cubic lattice with deterministic
    /// pseudo-velocities (runs are reproducible).
    pub fn new(config: MdConfig) -> MdSim {
        let n = config.particles.max(2);
        let side = (n as f64).cbrt().ceil() as usize;
        let box_len = side as f64 * 1.2;
        let mut pos = Vec::with_capacity(n);
        let mut vel = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % side) as f64 * 1.2;
            let y = ((i / side) % side) as f64 * 1.2;
            let z = (i / (side * side)) as f64 * 1.2;
            pos.push([x, y, z]);
            // Deterministic small velocities from a hash of the index.
            let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            let v = |shift: u32| ((h >> shift) & 0xff) as f64 / 255.0 - 0.5;
            vel.push([v(0) * 0.1, v(8) * 0.1, v(16) * 0.1]);
        }
        MdSim {
            config,
            force: vec![[0.0; 3]; n],
            pos,
            vel,
            box_len,
        }
    }

    fn compute_forces(&mut self) -> f64 {
        let n = self.pos.len();
        for f in &mut self.force {
            *f = [0.0; 3];
        }
        let mut potential = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let mut d = [0.0; 3];
                let mut r2 = 0.0;
                for (k, dk) in d.iter_mut().enumerate() {
                    let mut x = self.pos[i][k] - self.pos[j][k];
                    // Minimum-image convention.
                    if x > self.box_len * 0.5 {
                        x -= self.box_len;
                    } else if x < -self.box_len * 0.5 {
                        x += self.box_len;
                    }
                    *dk = x;
                    r2 += x * x;
                }
                let r2 = r2.max(0.64); // soft core to keep integration stable
                let inv_r2 = 1.0 / r2;
                let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                // Lennard-Jones: V = 4(r^-12 - r^-6), F = 24(2 r^-12 - r^-6)/r².
                potential += 4.0 * (inv_r6 * inv_r6 - inv_r6);
                let fmag = 24.0 * (2.0 * inv_r6 * inv_r6 - inv_r6) * inv_r2;
                for (k, dk) in d.iter().enumerate() {
                    self.force[i][k] += fmag * dk;
                    self.force[j][k] -= fmag * dk;
                }
            }
        }
        potential
    }

    fn kinetic_energy(&self) -> f64 {
        self.vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    fn step(&mut self) -> f64 {
        let dt = self.config.dt;
        let n = self.pos.len();
        // Velocity Verlet: half-kick, drift, recompute, half-kick.
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
                self.pos[i][k] += dt * self.vel[i][k];
                // Wrap into the box.
                if self.pos[i][k] < 0.0 {
                    self.pos[i][k] += self.box_len;
                } else if self.pos[i][k] >= self.box_len {
                    self.pos[i][k] -= self.box_len;
                }
            }
        }
        let potential = self.compute_forces();
        for i in 0..n {
            for k in 0..3 {
                self.vel[i][k] += 0.5 * dt * self.force[i][k];
            }
        }
        potential
    }

    /// Expected FLOP count for a configuration (analytic; used to
    /// validate profiled totals).
    pub fn expected_flops(config: &MdConfig) -> u64 {
        let n = config.particles.max(2) as u64;
        let pairs = n * (n - 1) / 2;
        config.steps * (pairs * FLOPS_PER_PAIR + n * FLOPS_PER_PARTICLE_STEP)
    }

    /// Run the simulation to completion.
    pub fn run(mut self) -> std::io::Result<MdReport> {
        // Constant disk input: read the topology if configured.
        let mut bytes_read = 0u64;
        if let Some(path) = &self.config.input {
            let mut buf = Vec::new();
            bytes_read = File::open(path)?.read_to_end(&mut buf)? as u64;
        }
        let mut writer = match &self.config.output {
            Some(path) => Some(BufWriter::new(File::create(path)?)),
            None => None,
        };

        self.compute_forces();
        let mut frames = 0u64;
        let mut bytes_written = 0u64;
        let mut potential = 0.0;
        for s in 0..self.config.steps {
            potential = self.step();
            if self.config.frame_interval > 0 && (s + 1) % self.config.frame_interval == 0 {
                if let Some(w) = writer.as_mut() {
                    bytes_written += write_frame(w, s + 1, &self.pos)?;
                    frames += 1;
                }
            }
        }
        if let Some(mut w) = writer {
            w.flush()?;
        }
        let total_energy = potential + self.kinetic_energy();
        Ok(MdReport {
            steps: self.config.steps,
            frames_written: frames,
            bytes_written,
            bytes_read,
            total_energy,
            flops: Self::expected_flops(&self.config),
        })
    }
}

fn write_frame<W: Write>(w: &mut W, step: u64, pos: &[[f64; 3]]) -> std::io::Result<u64> {
    let mut bytes = 0u64;
    let header = format!("FRAME {step} {}\n", pos.len());
    w.write_all(header.as_bytes())?;
    bytes += header.len() as u64;
    for p in pos {
        let line = format!("{:.6} {:.6} {:.6}\n", p[0], p[1], p[2]);
        w.write_all(line.as_bytes())?;
        bytes += line.len() as u64;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("synapse-md-{tag}-{}.trj", std::process::id()))
    }

    #[test]
    fn runs_deterministically() {
        let cfg = MdConfig {
            particles: 27,
            steps: 50,
            ..Default::default()
        };
        let a = MdSim::new(cfg.clone()).run().unwrap();
        let b = MdSim::new(cfg).run().unwrap();
        assert_eq!(a.total_energy.to_bits(), b.total_energy.to_bits());
        assert_eq!(a.flops, b.flops);
    }

    #[test]
    fn flops_scale_linearly_with_steps() {
        let base = MdConfig {
            particles: 27,
            steps: 100,
            ..Default::default()
        };
        let double = MdConfig {
            steps: 200,
            ..base.clone()
        };
        assert_eq!(
            2 * MdSim::expected_flops(&base),
            MdSim::expected_flops(&double)
        );
    }

    #[test]
    fn output_scales_with_steps_input_constant() {
        let out1 = tmpfile("s1");
        let out2 = tmpfile("s2");
        let r1 = MdSim::new(MdConfig {
            particles: 27,
            steps: 100,
            frame_interval: 10,
            output: Some(out1.clone()),
            ..Default::default()
        })
        .run()
        .unwrap();
        let r2 = MdSim::new(MdConfig {
            particles: 27,
            steps: 200,
            frame_interval: 10,
            output: Some(out2.clone()),
            ..Default::default()
        })
        .run()
        .unwrap();
        assert_eq!(r1.frames_written, 10);
        assert_eq!(r2.frames_written, 20);
        assert!(r2.bytes_written > r1.bytes_written);
        // Bytes on disk match the report.
        assert_eq!(std::fs::metadata(&out1).unwrap().len(), r1.bytes_written);
        std::fs::remove_file(out1).unwrap();
        std::fs::remove_file(out2).unwrap();
    }

    #[test]
    fn reads_constant_topology_input() {
        let input = tmpfile("topo");
        std::fs::write(&input, vec![7u8; 4096]).unwrap();
        let r = MdSim::new(MdConfig {
            particles: 8,
            steps: 10,
            input: Some(input.clone()),
            ..Default::default()
        })
        .run()
        .unwrap();
        assert_eq!(r.bytes_read, 4096);
        std::fs::remove_file(input).unwrap();
    }

    #[test]
    fn energy_stays_finite() {
        // The soft-core LJ keeps the integrator stable.
        let r = MdSim::new(MdConfig {
            particles: 64,
            steps: 200,
            ..Default::default()
        })
        .run()
        .unwrap();
        assert!(
            r.total_energy.is_finite(),
            "energy diverged: {}",
            r.total_energy
        );
    }

    #[test]
    fn zero_frame_interval_disables_output() {
        let out = tmpfile("nofrm");
        let r = MdSim::new(MdConfig {
            particles: 8,
            steps: 20,
            frame_interval: 0,
            output: Some(out.clone()),
            ..Default::default()
        })
        .run()
        .unwrap();
        assert_eq!(r.frames_written, 0);
        assert_eq!(r.bytes_written, 0);
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn missing_input_file_errors() {
        let r = MdSim::new(MdConfig {
            input: Some(PathBuf::from("/no/such/topology")),
            ..Default::default()
        })
        .run();
        assert!(r.is_err());
    }

    #[test]
    fn tiny_particle_counts_clamp() {
        // particles < 2 clamps to 2 so pair loops stay meaningful.
        let r = MdSim::new(MdConfig {
            particles: 1,
            steps: 5,
            ..Default::default()
        })
        .run()
        .unwrap();
        assert!(r.flops > 0);
    }
}
