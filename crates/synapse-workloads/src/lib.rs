#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Applications under test for the Synapse reproduction.
//!
//! The paper validates Synapse against **Gromacs**, a molecular
//! dynamics code whose CPU consumption and disk *output* scale with
//! the configured iteration count while disk input and memory stay
//! constant (§5, "Application"). Gromacs itself is not available here,
//! so this crate provides (substitution documented in DESIGN.md):
//!
//! * [`mdsim`] — a real, runnable mini molecular-dynamics application
//!   (Lennard-Jones particles, velocity-Verlet integration, trajectory
//!   frames written to disk) with the same externally observable
//!   scaling signature. Built as the `synapse-mdsim` binary so the
//!   black-box profiler can observe it like any other executable.
//! * [`synthetic`] — phase-scripted workloads (serial and concurrent
//!   CPU/disk phases) used by the sampling-effect experiments
//!   (Figs 2–3) and by I/O experiments (E.5).
//! * [`appmodel`] — the *analytic* Gromacs-like application behaviour
//!   on a [`synapse_sim::MachineModel`], used by every simulated
//!   experiment: expected cycles/FLOPs/bytes for a step count,
//!   simulated execution reports with realistic noise, simulated
//!   profile generation at any sampling rate, and parallel (OpenMP /
//!   MPI) execution times for Figs 12–14.

pub mod appmodel;
pub mod mdsim;
pub mod synthetic;

pub use appmodel::{AppModel, SimRun};
pub use mdsim::{MdConfig, MdReport, MdSim};
pub use synthetic::{busy_flops, PhaseOp, PhaseScript};
