//! Analytic Gromacs-like application behaviour on machine models.
//!
//! Every simulated experiment needs two things the real testbeds would
//! have provided: the application's execution behaviour on a machine
//! (for "execution" data series) and profiles of that behaviour (for
//! the emulator to replay). This module provides both, parameterized
//! the way the paper describes Gromacs (§5): CPU consumption and disk
//! output scale with the iteration count, disk input and memory stay
//! constant.

use synapse_model::{
    ComputeSample, MemorySample, Profile, ProfileKey, Sample, StorageSample, Tags,
};
use synapse_sim::{IoOp, KernelClass, MachineModel, Noise, ParallelMode};

/// Parameters of the modelled application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppModel {
    /// Fixed startup cycles (input parsing, setup).
    pub base_cycles: u64,
    /// Cycles per iteration step.
    pub cycles_per_step: u64,
    /// Constant input read at startup, bytes.
    pub input_bytes: u64,
    /// Bytes per trajectory frame.
    pub frame_bytes: u64,
    /// Steps between frames.
    pub frame_interval: u64,
    /// Resident set at process start (binary + libraries).
    pub rss_base: u64,
    /// Resident set once fully ramped.
    pub rss_max: u64,
    /// Seconds over which the resident set ramps from base to max.
    pub rss_ramp_secs: f64,
    /// Floating-point operations per used cycle.
    pub flops_per_cycle: f64,
}

impl Default for AppModel {
    fn default() -> Self {
        AppModel {
            base_cycles: 500_000_000,
            cycles_per_step: 100_000,
            input_bytes: 2 << 20,
            frame_bytes: 32 << 10,
            frame_interval: 1000,
            rss_base: 2_000_000,
            rss_max: 6_000_000,
            rss_ramp_secs: 0.5,
            flops_per_cycle: 0.5,
        }
    }
}

/// A simulated application (or emulation) run's ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimRun {
    /// Wall-clock execution time Tx in seconds.
    pub tx: f64,
    /// Used CPU cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Bytes read from storage.
    pub bytes_read: u64,
}

impl AppModel {
    /// The Gromacs-like default (identical to `Default`).
    pub fn gromacs() -> Self {
        AppModel::default()
    }

    /// An Amber-like variant: the paper provides "specialized kernels
    /// for applications related to our own research (incl. Gromacs and
    /// Amber)". Amber's MD engine carries a heavier per-step cost and
    /// writes denser trajectories, with a larger resident set.
    pub fn amber() -> Self {
        AppModel {
            base_cycles: 900_000_000,
            cycles_per_step: 180_000,
            frame_bytes: 64 << 10,
            frame_interval: 500,
            rss_base: 4_000_000,
            rss_max: 14_000_000,
            ..AppModel::default()
        }
    }

    /// The canonical profile key for a run of this application.
    pub fn key(&self, steps: u64) -> ProfileKey {
        ProfileKey::new("gromacs mdrun", Tags::new().with("steps", steps))
    }

    /// Noise-free cycle count of a run on the profiling reference
    /// (machine factors are applied separately).
    pub fn cycles(&self, steps: u64) -> u64 {
        self.base_cycles + self.cycles_per_step.saturating_mul(steps)
    }

    /// Trajectory bytes written for a step count.
    pub fn bytes_out(&self, steps: u64) -> u64 {
        if self.frame_interval == 0 {
            return 0;
        }
        (steps / self.frame_interval) * self.frame_bytes
    }

    /// Resident set size at `t` seconds into the run.
    pub fn rss_at(&self, t: f64) -> u64 {
        let ramp = (t / self.rss_ramp_secs.max(1e-9)).clamp(0.0, 1.0);
        self.rss_base + ((self.rss_max - self.rss_base) as f64 * ramp) as u64
    }

    /// Simulate an application execution on a machine. Noise perturbs
    /// the modelled quantities like run-to-run system jitter would.
    pub fn execute(&self, machine: &MachineModel, steps: u64, noise: &mut Noise) -> SimRun {
        let app = machine.kernel(KernelClass::Application);
        let cycles = noise.apply_u64((self.cycles(steps) as f64 * machine.app_cycle_factor) as u64);
        let compute_time = machine.compute_time(cycles, KernelClass::Application);
        let bytes_written = self.bytes_out(steps);
        let io_time = machine.io_time(bytes_written, 1 << 20, IoOp::Write, machine.default_fs)
            + machine.io_time(self.input_bytes, 1 << 20, IoOp::Read, machine.default_fs);
        let tx = noise.apply(compute_time + io_time);
        SimRun {
            tx,
            cycles,
            instructions: (cycles as f64 * app.ipc) as u64,
            flops: (cycles as f64 * self.flops_per_cycle) as u64,
            bytes_written,
            bytes_read: self.input_bytes,
        }
    }

    /// Simulate a parallel application execution (Figs 13–14: the
    /// *actual* Gromacs scaling on Titan). Compute parallelizes per
    /// the machine's mode model; I/O stays serial.
    pub fn execute_parallel(
        &self,
        machine: &MachineModel,
        steps: u64,
        workers: u32,
        mode: ParallelMode,
        noise: &mut Noise,
    ) -> SimRun {
        let serial = self.execute(machine, steps, &mut Noise::none());
        let compute_serial = machine.compute_time(serial.cycles, KernelClass::Application);
        let io_time = serial.tx - compute_serial;
        let compute_parallel =
            machine
                .parallel(mode)
                .time(compute_serial, workers, machine.cpu.ncores);
        SimRun {
            tx: noise.apply(compute_parallel + io_time),
            ..serial
        }
    }

    /// Simulate profiling this application on a machine at a sampling
    /// rate, producing the [`Profile`] the emulator will replay.
    ///
    /// Faithful to the paper's sampling semantics (§4.1, §4.4):
    ///
    /// * samples cover equidistant intervals of `1/rate_hz` seconds;
    ///   profiling "only terminates when full sample periods have
    ///   passed", so the last interval is a full one even when the
    ///   application ends inside it;
    /// * compute activity spreads over the whole runtime; frame writes
    ///   land in the interval containing their completion time; the
    ///   input read lands in the first interval;
    /// * memory gauges are read at the interval *start* (the first one
    ///   shortly after spawn, ~5 ms), which is what makes single-sample
    ///   profiles underestimate the resident set (Fig. 6 bottom).
    pub fn simulate_profile(
        &self,
        machine: &MachineModel,
        steps: u64,
        rate_hz: f64,
        noise: &mut Noise,
    ) -> Profile {
        let run = self.execute(machine, steps, noise);
        let app = machine.kernel(KernelClass::Application);
        let dt = 1.0 / rate_hz.max(1e-3);
        let nsamples = ((run.tx / dt).ceil() as usize).max(1);
        let mut profile = Profile::new(self.key(steps), machine.system_info(), rate_hz);
        profile.runtime = run.tx;

        let frames = steps.checked_div(self.frame_interval).unwrap_or(0);
        // Frame j completes at a fraction (j+1)/frames of the runtime.
        let mut frame_times: Vec<f64> = (0..frames)
            .map(|j| run.tx * (j + 1) as f64 / frames.max(1) as f64)
            .collect();
        // Make the final frame land strictly inside the last interval.
        if let Some(last) = frame_times.last_mut() {
            *last = (*last).min(run.tx * 0.999);
        }

        let mut cycles_left = run.cycles;
        let mut frame_idx = 0usize;
        for i in 0..nsamples {
            let t0 = i as f64 * dt;
            let t1 = t0 + dt;
            // Active fraction of this interval.
            let active = ((run.tx.min(t1) - t0).max(0.0)) / run.tx.max(1e-9);
            let cycles = if i + 1 == nsamples {
                cycles_left
            } else {
                let c = (run.cycles as f64 * active) as u64;
                c.min(cycles_left)
            };
            cycles_left -= cycles;
            let stalled =
                (cycles as f64 * (1.0 - app.efficiency) / app.efficiency.max(1e-6)) as u64;
            let mut storage = StorageSample::default();
            if i == 0 {
                storage.bytes_read = run.bytes_read;
                storage.read_ops = run.bytes_read.div_ceil(1 << 20);
            }
            while frame_idx < frame_times.len() && frame_times[frame_idx] < t1 {
                storage.bytes_written += self.frame_bytes;
                storage.write_ops += 1;
                frame_idx += 1;
            }
            // Memory gauge at interval start; the very first reading
            // happens just after spawn.
            let gauge_t = if i == 0 { 0.005 } else { t0.min(run.tx) };
            let rss = self.rss_at(gauge_t);
            let memory = MemorySample {
                allocated: if i == 0 { self.rss_max } else { 0 },
                freed: if i + 1 == nsamples { self.rss_max } else { 0 },
                rss,
                peak: rss,
            };
            let sample = Sample {
                t: t0,
                dt,
                compute: ComputeSample {
                    cycles,
                    instructions: (cycles as f64 * app.ipc) as u64,
                    stalled_frontend: stalled / 4,
                    stalled_backend: stalled - stalled / 4,
                    flops: (cycles as f64 * self.flops_per_cycle) as u64,
                    threads: 1,
                },
                memory,
                storage,
                network: Default::default(),
            };
            profile.push(sample).expect("samples generated in order");
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_sim::{comet, thinkie, titan};

    #[test]
    fn cycles_scale_linearly_io_input_constant() {
        let app = AppModel::default();
        let c1 = app.cycles(10_000);
        let c2 = app.cycles(20_000);
        assert_eq!(c2 - c1, 10_000 * app.cycles_per_step);
        assert!(app.bytes_out(1_000_000) > app.bytes_out(10_000));
    }

    #[test]
    fn execution_tx_grows_with_steps() {
        let app = AppModel::default();
        let m = thinkie();
        let mut noise = Noise::none();
        let short = app.execute(&m, 10_000, &mut noise);
        let long = app.execute(&m, 1_000_000, &mut noise);
        assert!(long.tx > 10.0 * short.tx);
        assert!(long.bytes_written > short.bytes_written);
        assert_eq!(long.bytes_read, short.bytes_read, "input constant");
    }

    #[test]
    fn thinkie_runtimes_span_paper_range() {
        // Fig. 4: Tx from ~1 s (1e4 steps) to a few hundred seconds
        // (1e7 steps), log-spaced.
        let app = AppModel::default();
        let m = thinkie();
        let mut noise = Noise::none();
        let t4 = app.execute(&m, 10_000, &mut noise).tx;
        let t7 = app.execute(&m, 10_000_000, &mut noise).tx;
        assert!(t4 > 0.3 && t4 < 3.0, "1e4 steps: {t4}");
        assert!(t7 > 100.0 && t7 < 1000.0, "1e7 steps: {t7}");
    }

    #[test]
    fn profile_totals_match_run_ground_truth() {
        let app = AppModel::default();
        let m = thinkie();
        let profile = app.simulate_profile(&m, 100_000, 2.0, &mut Noise::none());
        let totals = profile.totals();
        let run = app.execute(&m, 100_000, &mut Noise::none());
        assert_eq!(totals.cycles, run.cycles, "all cycles accounted");
        assert_eq!(totals.bytes_written, run.bytes_written);
        assert_eq!(totals.bytes_read, run.bytes_read);
        assert!(profile.validate().is_ok());
        assert!(profile.len() >= 2);
    }

    #[test]
    fn profile_cycle_totals_are_rate_independent() {
        // Fig. 6 top: consumed CPU operations are consistent across
        // sampling rates.
        let app = AppModel::default();
        let m = thinkie();
        let mut cycles = Vec::new();
        for rate in [0.1, 0.5, 1.0, 5.0, 10.0] {
            let p = app.simulate_profile(&m, 200_000, rate, &mut Noise::none());
            cycles.push(p.totals().cycles);
        }
        for w in cycles.windows(2) {
            assert_eq!(w[0], w[1], "totals must not depend on rate");
        }
    }

    #[test]
    fn slow_rates_underestimate_resident_memory() {
        // Fig. 6 bottom mechanism: a single early sample catches the
        // pre-ramp resident set.
        let app = AppModel::default();
        let m = thinkie();
        let steps = 20_000; // Tx ~ 1.3 s
        let slow = app.simulate_profile(&m, steps, 0.1, &mut Noise::none());
        let fast = app.simulate_profile(&m, steps, 10.0, &mut Noise::none());
        let rss_slow = slow.totals().mem_peak;
        let rss_fast = fast.totals().mem_peak;
        assert!(
            rss_slow < rss_fast / 2,
            "slow {rss_slow} should underestimate vs fast {rss_fast}"
        );
        assert!(rss_fast >= app.rss_max * 9 / 10);
        assert!(rss_slow <= app.rss_base * 11 / 10);
    }

    #[test]
    fn sample_count_rounds_up_to_full_periods() {
        let app = AppModel::default();
        let m = thinkie();
        let p = app.simulate_profile(&m, 20_000, 1.0, &mut Noise::none());
        // Tx ~1.3 s at 1 Hz -> 2 full periods.
        assert_eq!(p.len(), (p.runtime / 1.0).ceil() as usize);
        assert!(p.observed_span() >= p.runtime);
    }

    #[test]
    fn frames_land_within_runtime_intervals() {
        let app = AppModel::default();
        let m = thinkie();
        let p = app.simulate_profile(&m, 1_000_000, 1.0, &mut Noise::none());
        let total_frames: u64 = p.samples.iter().map(|s| s.storage.write_ops).sum();
        assert_eq!(total_frames, 1_000_000 / app.frame_interval);
        // No frame in intervals entirely past the runtime.
        for s in &p.samples {
            if s.t > p.runtime {
                assert_eq!(s.storage.bytes_written, 0);
            }
        }
    }

    #[test]
    fn parallel_execution_scales_with_diminishing_returns() {
        let app = AppModel::default();
        let m = titan();
        let mut noise = Noise::none();
        let steps = 2_000_000;
        let t1 = app
            .execute_parallel(&m, steps, 1, ParallelMode::OpenMp, &mut noise)
            .tx;
        let t4 = app
            .execute_parallel(&m, steps, 4, ParallelMode::OpenMp, &mut noise)
            .tx;
        let t16 = app
            .execute_parallel(&m, steps, 16, ParallelMode::OpenMp, &mut noise)
            .tx;
        assert!(t4 < t1);
        assert!(t16 < t4);
        let speedup = t1 / t16;
        assert!(speedup < 16.0, "sublinear: {speedup}");
        assert!(speedup > 3.0, "but real: {speedup}");
    }

    #[test]
    fn noise_produces_jitter_with_stable_mean() {
        let app = AppModel::default();
        let m = comet();
        let mut noise = Noise::new(11, 0.02);
        let runs: Vec<f64> = (0..30)
            .map(|_| app.execute(&m, 100_000, &mut noise).tx)
            .collect();
        let s = synapse_model::Summary::of(&runs).unwrap();
        let clean = app.execute(&m, 100_000, &mut Noise::none()).tx;
        assert!((s.mean - clean).abs() / clean < 0.02);
        assert!(s.std > 0.0);
    }

    #[test]
    fn amber_is_heavier_than_gromacs() {
        let m = thinkie();
        let mut noise = Noise::none();
        let steps = 500_000;
        let g = AppModel::gromacs().execute(&m, steps, &mut noise);
        let a = AppModel::amber().execute(&m, steps, &mut noise);
        assert!(a.tx > g.tx, "amber per-step cost is higher");
        assert!(a.bytes_written > g.bytes_written, "denser trajectories");
        let gp = AppModel::gromacs().simulate_profile(&m, steps, 1.0, &mut Noise::none());
        let ap = AppModel::amber().simulate_profile(&m, steps, 1.0, &mut Noise::none());
        assert!(ap.totals().mem_peak > gp.totals().mem_peak);
    }

    #[test]
    fn key_embeds_steps_tag() {
        let app = AppModel::default();
        let k = app.key(12345);
        assert_eq!(k.tags.get("steps"), Some("12345"));
        assert!(k.command.contains("gromacs"));
    }
}
