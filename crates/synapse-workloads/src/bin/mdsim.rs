//! `synapse-mdsim` — the Gromacs stand-in as a black-box executable.
//!
//! Usage:
//! ```text
//! synapse-mdsim --steps 10000 [--particles 64] [--frame-interval 100]
//!               [--out /tmp/traj.trj] [--in topology.dat] [--quiet]
//! ```
//!
//! The profiler observes this process exactly like the paper observes
//! `gromacs mdrun`: it only sees `/proc` counters and CPU activity.

use std::path::PathBuf;
use std::process::ExitCode;

use synapse_workloads::{MdConfig, MdSim};

fn main() -> ExitCode {
    let mut config = MdConfig::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--steps" => config.steps = value("--steps").parse().expect("--steps"),
            "--particles" => config.particles = value("--particles").parse().expect("--particles"),
            "--frame-interval" => {
                config.frame_interval = value("--frame-interval").parse().expect("--frame-interval")
            }
            "--out" => config.output = Some(PathBuf::from(value("--out"))),
            "--in" => config.input = Some(PathBuf::from(value("--in"))),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "synapse-mdsim --steps N [--particles N] [--frame-interval N] \
                     [--out PATH] [--in PATH] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    match MdSim::new(config).run() {
        Ok(report) => {
            if !quiet {
                println!(
                    "steps={} frames={} bytes_written={} bytes_read={} flops={} energy={:.6}",
                    report.steps,
                    report.frames_written,
                    report.bytes_written,
                    report.bytes_read,
                    report.flops,
                    report.total_energy
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mdsim failed: {e}");
            ExitCode::FAILURE
        }
    }
}
