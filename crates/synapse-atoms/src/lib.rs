#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Emulation atoms: "fine-grained and tunable software elements that
//! consume one type of system resource" (§4).
//!
//! The Synapse emulator feeds profile samples to one atom per resource
//! type; atoms run concurrently (one thread each) and a sample ends
//! when the last atom finishes its share (§4.4). This crate implements
//! the atoms and their exchangeable kernels:
//!
//! * [`compute`] — cycle-budgeted matrix-multiplication kernels. The
//!   **ASM-analogue** kernel multiplies small matrices that fit in L1
//!   cache (maximum efficiency, like the paper's hand-written assembly
//!   loop); the **C-analogue** kernel multiplies matrices that do not
//!   fit in cache (realistic memory access, lower IPC). Users can
//!   implement [`compute::ComputeKernel`] for application-specific
//!   kernels, the paper's escape hatch for fidelity (§4.5, E.3).
//! * [`memory`] — `malloc`/`free`-style allocation with tunable block
//!   size, holding memory across samples (net residency).
//! * [`storage`] — file read/write with tunable block sizes and target
//!   directory, the E.5 malleability dimensions.
//! * [`network`] — loopback socket traffic (the paper's "emulation of
//!   simple socket-based network communication").
//! * [`atom`] — the shared report/demand types.

pub mod atom;
pub mod compute;
pub mod memory;
pub mod network;
pub mod storage;

pub use atom::{AtomDemand, AtomReport};
pub use compute::{CMatmulKernel, ComputeKernel, InCacheAsmKernel, KernelRun, SpinKernel};
pub use memory::MemoryAtom;
pub use network::NetworkAtom;
pub use storage::StorageAtom;
