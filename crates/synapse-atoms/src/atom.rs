//! Shared demand/report types for emulation atoms.

use std::time::Duration;

/// What one profile sample asks of the atoms (per-resource deltas,
/// extracted from a `synapse_model::Sample` by the emulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AtomDemand {
    /// CPU cycles to consume.
    pub cycles: u64,
    /// Bytes to allocate.
    pub mem_alloc: u64,
    /// Bytes to free.
    pub mem_free: u64,
    /// Bytes to read from storage.
    pub bytes_read: u64,
    /// Bytes to write to storage.
    pub bytes_written: u64,
    /// Bytes to send over the network.
    pub net_sent: u64,
    /// Bytes to receive over the network.
    pub net_recv: u64,
}

impl AtomDemand {
    /// Whether this demand asks for anything at all.
    pub fn is_empty(&self) -> bool {
        *self == AtomDemand::default()
    }
}

/// What an atom actually did for one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AtomReport {
    /// Cycles actually consumed (compute atom; ≥ directed because of
    /// work-unit quantization).
    pub cycles_consumed: u64,
    /// Bytes actually moved (storage/network/memory atoms).
    pub bytes_processed: u64,
    /// Operations performed (write calls, allocations, ...).
    pub operations: u64,
    /// Wall time the atom spent on this sample.
    pub elapsed: Duration,
}

impl AtomReport {
    /// Merge another report into this one (accumulation across
    /// samples; elapsed adds, counters add).
    pub fn accumulate(&mut self, other: &AtomReport) {
        self.cycles_consumed += other.cycles_consumed;
        self.bytes_processed += other.bytes_processed;
        self.operations += other.operations;
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_demand_detection() {
        assert!(AtomDemand::default().is_empty());
        let d = AtomDemand {
            cycles: 1,
            ..Default::default()
        };
        assert!(!d.is_empty());
    }

    #[test]
    fn report_accumulation() {
        let mut a = AtomReport {
            cycles_consumed: 10,
            bytes_processed: 100,
            operations: 2,
            elapsed: Duration::from_millis(5),
        };
        let b = AtomReport {
            cycles_consumed: 5,
            bytes_processed: 50,
            operations: 1,
            elapsed: Duration::from_millis(3),
        };
        a.accumulate(&b);
        assert_eq!(a.cycles_consumed, 15);
        assert_eq!(a.bytes_processed, 150);
        assert_eq!(a.operations, 3);
        assert_eq!(a.elapsed, Duration::from_millis(8));
    }
}
