//! The network atom: loopback socket traffic.
//!
//! The paper implements "emulation of simple socket-based network
//! communication" (§4.5, IPC/MPI). This atom drives a real TCP
//! connection to a peer thread on the loopback interface: *send*
//! demand streams bytes to the peer (which sinks them); *receive*
//! demand asks the peer to stream bytes back. The request protocol is
//! a 16-byte header (`send_len`, `want_back_len`) followed by the
//! payload.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::atom::AtomReport;

const CHUNK: usize = 64 * 1024;

/// The network emulation atom (client side + embedded peer).
pub struct NetworkAtom {
    stream: TcpStream,
    peer: Option<JoinHandle<()>>,
    sent_total: u64,
    recv_total: u64,
}

impl NetworkAtom {
    /// Start the peer thread and connect to it over loopback.
    pub fn new() -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let peer = std::thread::Builder::new()
            .name("synapse-net-peer".into())
            .spawn(move || {
                if let Ok((stream, _)) = listener.accept() {
                    let _ = peer_loop(stream);
                }
            })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetworkAtom {
            stream,
            peer: Some(peer),
            sent_total: 0,
            recv_total: 0,
        })
    }

    /// Total bytes sent so far.
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Total bytes received so far.
    pub fn recv_total(&self) -> u64 {
        self.recv_total
    }

    /// One sample's worth of network activity: stream `send` bytes to
    /// the peer and request `recv` bytes back.
    pub fn consume(&mut self, send: u64, recv: u64) -> std::io::Result<AtomReport> {
        if send == 0 && recv == 0 {
            return Ok(AtomReport::default());
        }
        let start = Instant::now();
        let mut header = [0u8; 16];
        header[..8].copy_from_slice(&send.to_le_bytes());
        header[8..].copy_from_slice(&recv.to_le_bytes());
        self.stream.write_all(&header)?;
        // Stream the outgoing payload.
        let buf = [0x42u8; CHUNK];
        let mut remaining = send;
        let mut ops = 0u64;
        while remaining > 0 {
            let n = remaining.min(CHUNK as u64) as usize;
            self.stream.write_all(&buf[..n])?;
            remaining -= n as u64;
            ops += 1;
        }
        self.stream.flush()?;
        // Drain the requested return traffic.
        let mut rbuf = vec![0u8; CHUNK];
        let mut to_read = recv;
        while to_read > 0 {
            let want = to_read.min(CHUNK as u64) as usize;
            let n = self.stream.read(&mut rbuf[..want])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-transfer",
                ));
            }
            to_read -= n as u64;
            ops += 1;
        }
        self.sent_total += send;
        self.recv_total += recv;
        Ok(AtomReport {
            cycles_consumed: 0,
            bytes_processed: send + recv,
            operations: ops,
            elapsed: start.elapsed(),
        })
    }

    /// Shut the connection and join the peer thread.
    pub fn shutdown(mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(peer) = self.peer.take() {
            let _ = peer.join();
        }
    }
}

impl Drop for NetworkAtom {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(peer) = self.peer.take() {
            let _ = peer.join();
        }
    }
}

/// Peer side: sink incoming payloads, produce requested return
/// traffic, until the client closes.
fn peer_loop(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut header = [0u8; 16];
    let mut buf = vec![0u8; CHUNK];
    loop {
        // Read a full header or detect a clean close.
        let mut got = 0;
        while got < 16 {
            let n = stream.read(&mut header[got..])?;
            if n == 0 {
                return Ok(()); // clean shutdown
            }
            got += n;
        }
        let send_len = u64::from_le_bytes(header[..8].try_into().unwrap());
        let want_back = u64::from_le_bytes(header[8..].try_into().unwrap());
        // Sink the payload.
        let mut remaining = send_len;
        while remaining > 0 {
            let want = remaining.min(CHUNK as u64) as usize;
            let n = stream.read(&mut buf[..want])?;
            if n == 0 {
                return Ok(());
            }
            remaining -= n as u64;
        }
        // Produce the return traffic.
        let out = [0x24u8; CHUNK];
        let mut to_send = want_back;
        while to_send > 0 {
            let n = to_send.min(CHUNK as u64) as usize;
            stream.write_all(&out[..n])?;
            to_send -= n as u64;
        }
        stream.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_only() {
        let mut a = NetworkAtom::new().unwrap();
        let rep = a.consume(100_000, 0).unwrap();
        assert_eq!(rep.bytes_processed, 100_000);
        assert_eq!(a.sent_total(), 100_000);
        assert_eq!(a.recv_total(), 0);
        a.shutdown();
    }

    #[test]
    fn recv_only() {
        let mut a = NetworkAtom::new().unwrap();
        let rep = a.consume(0, 50_000).unwrap();
        assert_eq!(rep.bytes_processed, 50_000);
        assert_eq!(a.recv_total(), 50_000);
        a.shutdown();
    }

    #[test]
    fn bidirectional_and_repeated() {
        let mut a = NetworkAtom::new().unwrap();
        for _ in 0..5 {
            let rep = a.consume(10_000, 20_000).unwrap();
            assert_eq!(rep.bytes_processed, 30_000);
        }
        assert_eq!(a.sent_total(), 50_000);
        assert_eq!(a.recv_total(), 100_000);
        a.shutdown();
    }

    #[test]
    fn zero_demand_is_noop() {
        let mut a = NetworkAtom::new().unwrap();
        let rep = a.consume(0, 0).unwrap();
        assert_eq!(rep.bytes_processed, 0);
        assert_eq!(rep.operations, 0);
        a.shutdown();
    }

    #[test]
    fn large_transfer_crosses_chunk_boundaries() {
        let mut a = NetworkAtom::new().unwrap();
        let big = (CHUNK * 3 + 123) as u64;
        let rep = a.consume(big, big).unwrap();
        assert_eq!(rep.bytes_processed, 2 * big);
        assert!(rep.operations >= 8);
        a.shutdown();
    }
}
