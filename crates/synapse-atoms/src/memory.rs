//! The memory atom: canonical `malloc`/`free` behaviour with tunable
//! block size (§4.2).
//!
//! Allocations are held across samples (the emulated application's
//! resident set is the running net of allocations minus frees), every
//! allocated page is touched so the memory actually becomes resident,
//! and frees release the oldest blocks first.

use std::collections::VecDeque;
use std::time::Instant;

use crate::atom::AtomReport;

/// Default allocation block size (1 MiB, like the paper's default
/// "tunable but static" block configuration).
pub const DEFAULT_MEM_BLOCK: u64 = 1 << 20;

/// The memory emulation atom.
pub struct MemoryAtom {
    block_size: u64,
    held: VecDeque<Vec<u8>>,
    held_bytes: u64,
    peak_bytes: u64,
    /// Cap on residency, protecting the host when a profile replays a
    /// larger machine's footprint.
    limit_bytes: u64,
}

impl MemoryAtom {
    /// Atom with the default block size and a 1 GiB safety cap.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_MEM_BLOCK, 1 << 30)
    }

    /// Atom with explicit block size and residency cap.
    pub fn with_config(block_size: u64, limit_bytes: u64) -> Self {
        MemoryAtom {
            block_size: block_size.max(4096),
            held: VecDeque::new(),
            held_bytes: 0,
            peak_bytes: 0,
            limit_bytes,
        }
    }

    /// Currently held bytes.
    pub fn held_bytes(&self) -> u64 {
        self.held_bytes
    }

    /// Peak held bytes over the atom's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Configured block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Allocate (and touch) `bytes`, in blocks.
    pub fn allocate(&mut self, bytes: u64) -> AtomReport {
        let start = Instant::now();
        let mut remaining = bytes.min(self.limit_bytes.saturating_sub(self.held_bytes));
        let mut ops = 0u64;
        let mut processed = 0u64;
        while remaining > 0 {
            let n = remaining.min(self.block_size) as usize;
            let mut block = vec![0u8; n];
            // Touch one byte per page so the block becomes resident.
            for i in (0..n).step_by(4096) {
                block[i] = 0xa5;
            }
            self.held_bytes += n as u64;
            processed += n as u64;
            self.held.push_back(block);
            ops += 1;
            remaining -= n as u64;
        }
        self.peak_bytes = self.peak_bytes.max(self.held_bytes);
        AtomReport {
            cycles_consumed: 0,
            bytes_processed: processed,
            operations: ops,
            elapsed: start.elapsed(),
        }
    }

    /// Free `bytes`, oldest blocks first (partial blocks shrink).
    pub fn free(&mut self, bytes: u64) -> AtomReport {
        let start = Instant::now();
        let mut remaining = bytes.min(self.held_bytes);
        let mut ops = 0u64;
        let mut processed = 0u64;
        while remaining > 0 {
            let Some(mut block) = self.held.pop_front() else {
                break;
            };
            let len = block.len() as u64;
            if len <= remaining {
                remaining -= len;
                self.held_bytes -= len;
                processed += len;
                ops += 1;
            } else {
                block.truncate((len - remaining) as usize);
                block.shrink_to_fit();
                self.held_bytes -= remaining;
                processed += remaining;
                remaining = 0;
                ops += 1;
                self.held.push_front(block);
            }
        }
        AtomReport {
            cycles_consumed: 0,
            bytes_processed: processed,
            operations: ops,
            elapsed: start.elapsed(),
        }
    }

    /// One sample's worth of memory activity: allocations then frees.
    pub fn consume(&mut self, alloc: u64, free: u64) -> AtomReport {
        let mut rep = self.allocate(alloc);
        rep.accumulate(&self.free(free));
        rep
    }

    /// Release everything (end of emulation).
    pub fn release_all(&mut self) {
        self.held.clear();
        self.held_bytes = 0;
    }
}

impl Default for MemoryAtom {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_holds_and_free_releases() {
        let mut m = MemoryAtom::with_config(1 << 16, 1 << 26);
        let rep = m.allocate(200_000);
        assert_eq!(m.held_bytes(), 200_000);
        assert_eq!(rep.bytes_processed, 200_000);
        // 200000 / 65536 = 3.05 -> 4 blocks
        assert_eq!(rep.operations, 4);
        let rep2 = m.free(150_000);
        assert_eq!(rep2.bytes_processed, 150_000);
        assert_eq!(m.held_bytes(), 50_000);
        assert_eq!(m.peak_bytes(), 200_000);
    }

    #[test]
    fn free_more_than_held_clamps() {
        let mut m = MemoryAtom::new();
        m.allocate(10_000);
        let rep = m.free(1_000_000);
        assert_eq!(rep.bytes_processed, 10_000);
        assert_eq!(m.held_bytes(), 0);
    }

    #[test]
    fn residency_cap_is_respected() {
        let mut m = MemoryAtom::with_config(1 << 20, 4 << 20);
        let rep = m.allocate(100 << 20);
        assert_eq!(m.held_bytes(), 4 << 20);
        assert_eq!(rep.bytes_processed, 4 << 20);
    }

    #[test]
    fn consume_is_alloc_then_free() {
        let mut m = MemoryAtom::new();
        let rep = m.consume(5_000_000, 2_000_000);
        assert_eq!(m.held_bytes(), 3_000_000);
        assert_eq!(rep.bytes_processed, 7_000_000);
        assert!(rep.operations > 0);
    }

    #[test]
    fn partial_block_free_keeps_remainder() {
        let mut m = MemoryAtom::with_config(1 << 20, 1 << 30);
        m.allocate(1 << 20); // one block
        m.free(1 << 19); // half of it
        assert_eq!(m.held_bytes(), 1 << 19);
        m.free(1 << 19);
        assert_eq!(m.held_bytes(), 0);
    }

    #[test]
    fn release_all_clears_everything() {
        let mut m = MemoryAtom::new();
        m.allocate(10 << 20);
        m.release_all();
        assert_eq!(m.held_bytes(), 0);
        // Peak survives release (it is a high-water mark).
        assert_eq!(m.peak_bytes(), 10 << 20);
    }

    #[test]
    fn block_size_floor() {
        let m = MemoryAtom::with_config(1, 1 << 20);
        assert_eq!(m.block_size(), 4096);
    }

    #[test]
    fn zero_requests_are_noops() {
        let mut m = MemoryAtom::new();
        let rep = m.consume(0, 0);
        assert_eq!(rep.bytes_processed, 0);
        assert_eq!(rep.operations, 0);
        assert_eq!(m.held_bytes(), 0);
    }
}
