//! Cycle-budgeted compute kernels.
//!
//! "The default compute atom implementation contains a kernel running
//! a loop of assembly code that performs a matrix multiplication with
//! small matrices (they fit into the CPU cache) very efficiently. ...
//! Other kernels ... perform matrix multiplications on data which do
//! not usually fit into the CPU caches. Those kernels have a lower
//! efficiency, but they represent actual application codes more
//! realistically." (§4.2)
//!
//! A kernel advances in whole *work units* (one matrix multiplication)
//! whose cycle cost is calibrated once at startup; to consume a
//! directed cycle budget it executes `ceil(budget / unit_cycles)`
//! units. The overshoot this quantization causes — large for small
//! budgets, converging to the per-unit overhead for large ones — is
//! exactly the E.3 error-convergence behaviour.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use synapse_perf::calibrate_frequency;
use synapse_perf::calibration::spin_cycles;
use synapse_sim::KernelClass;

use crate::atom::AtomReport;

/// Outcome of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRun {
    /// Cycles the emulator asked for.
    pub directed_cycles: u64,
    /// Cycles the kernel actually consumed (units × unit cost).
    pub consumed_cycles: u64,
    /// Work units executed.
    pub units: u64,
    /// Wall time spent.
    pub elapsed: Duration,
}

/// A compute kernel: the exchangeable work-generating core of the
/// compute atom. Implement this to provide application-specific
/// kernels (the paper's fidelity escape hatch).
pub trait ComputeKernel: Send + Sync {
    /// Kernel name for reports and provenance.
    fn name(&self) -> &'static str;

    /// Which modelled kernel class this corresponds to (used when the
    /// same emulation plan runs on a simulated machine).
    fn class(&self) -> KernelClass;

    /// Calibrated cycle cost of one work unit on this host.
    fn unit_cycles(&self) -> u64;

    /// Execute `units` work units, returning a checksum that the
    /// caller black-boxes (defeats dead-code elimination).
    fn run_units(&self, units: u64) -> f64;

    /// Consume a directed cycle budget by executing whole work units.
    fn execute_cycles(&self, directed: u64) -> KernelRun {
        let unit = self.unit_cycles().max(1);
        let units = if directed == 0 {
            0
        } else {
            directed.div_ceil(unit)
        };
        let start = Instant::now();
        std::hint::black_box(self.run_units(units));
        KernelRun {
            directed_cycles: directed,
            consumed_cycles: units * unit,
            units,
            elapsed: start.elapsed(),
        }
    }

    /// Consume a budget with `threads`-way data parallelism (the
    /// OpenMP-style emulation of E.4): units are split evenly, each
    /// thread runs its share, the run ends when the last finishes.
    fn execute_cycles_parallel(&self, directed: u64, threads: u32) -> KernelRun
    where
        Self: Sized,
    {
        let threads = threads.max(1);
        if threads == 1 {
            return self.execute_cycles(directed);
        }
        let unit = self.unit_cycles().max(1);
        let units = if directed == 0 {
            0
        } else {
            directed.div_ceil(unit)
        };
        let per = units / threads as u64;
        let extra = units % threads as u64;
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let share = per + u64::from(t < extra);
                if share > 0 {
                    s.spawn(move || std::hint::black_box(self.run_units(share)));
                }
            }
        });
        KernelRun {
            directed_cycles: directed,
            consumed_cycles: units * unit,
            units,
            elapsed: start.elapsed(),
        }
    }

    /// An [`AtomReport`] for a directed budget (the emulator's view).
    fn consume(&self, directed: u64) -> AtomReport {
        let run = self.execute_cycles(directed);
        AtomReport {
            cycles_consumed: run.consumed_cycles,
            bytes_processed: 0,
            operations: run.units,
            elapsed: run.elapsed,
        }
    }
}

/// Calibrate the wall-clock cost of one work unit by running a few and
/// taking the fastest (least-disturbed) observation, converted to
/// cycles via the calibrated frequency.
fn calibrate_unit<F: FnMut()>(mut run_one: F) -> u64 {
    // Warm caches and frequency scaling.
    run_one();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        run_one();
        best = best.min(t.elapsed().as_secs_f64());
    }
    ((best * calibrate_frequency()) as u64).max(1)
}

/// Naive `n×n` f64 matrix multiplication (ijk order), returning a
/// checksum element.
fn matmul(a: &[f64], b: &[f64], c: &mut [f64], n: usize) -> f64 {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c[0]
}

fn filled(n: usize, seed: f64) -> Vec<f64> {
    (0..n * n).map(|i| seed + (i % 17) as f64 * 1e-3).collect()
}

/// The in-cache kernel (the paper's hand-optimized assembly loop):
/// 24×24 matrices — three of them occupy ~14 KiB, comfortably inside
/// L1d — multiplied repeatedly. Maximum efficiency, minimal memory
/// traffic.
pub struct InCacheAsmKernel {
    n: usize,
}

impl InCacheAsmKernel {
    /// Matrix dimension used by the in-cache kernel.
    pub const N: usize = 24;

    /// Create the kernel (calibration happens lazily on first use).
    pub fn new() -> Self {
        InCacheAsmKernel { n: Self::N }
    }
}

impl Default for InCacheAsmKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl ComputeKernel for InCacheAsmKernel {
    fn name(&self) -> &'static str {
        "asm-matmul-incache"
    }

    fn class(&self) -> KernelClass {
        KernelClass::AsmMatmul
    }

    fn unit_cycles(&self) -> u64 {
        static UNIT: OnceLock<u64> = OnceLock::new();
        *UNIT.get_or_init(|| {
            let n = InCacheAsmKernel::N;
            let a = filled(n, 1.0);
            let b = filled(n, 2.0);
            let mut c = vec![0.0; n * n];
            // One calibration unit = many multiplications so the timer
            // resolution does not dominate.
            calibrate_unit(|| {
                for _ in 0..REPS_PER_UNIT {
                    std::hint::black_box(matmul(&a, &b, &mut c, n));
                }
            })
        })
    }

    fn run_units(&self, units: u64) -> f64 {
        let n = self.n;
        let a = filled(n, 1.0);
        let b = filled(n, 2.0);
        let mut c = vec![0.0; n * n];
        let mut acc = 0.0;
        for _ in 0..units {
            for _ in 0..REPS_PER_UNIT {
                acc += matmul(&a, &b, &mut c, n);
            }
        }
        acc
    }
}

/// Repetitions of the small matmul bundled into one work unit, so a
/// unit is large enough to time (~0.3–1 ms) but small enough that the
/// quantization error stays modest.
const REPS_PER_UNIT: u64 = 24;

/// The out-of-cache kernel (the paper's C kernel): 256×256 matrices —
/// three of them occupy 1.5 MiB, exceeding typical L2 — multiplied
/// once per unit. Lower efficiency, realistic memory access.
pub struct CMatmulKernel {
    n: usize,
}

impl CMatmulKernel {
    /// Matrix dimension used by the out-of-cache kernel.
    pub const N: usize = 256;

    /// Create the kernel.
    pub fn new() -> Self {
        CMatmulKernel { n: Self::N }
    }
}

impl Default for CMatmulKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl ComputeKernel for CMatmulKernel {
    fn name(&self) -> &'static str {
        "c-matmul-outofcache"
    }

    fn class(&self) -> KernelClass {
        KernelClass::CMatmul
    }

    fn unit_cycles(&self) -> u64 {
        static UNIT: OnceLock<u64> = OnceLock::new();
        *UNIT.get_or_init(|| {
            let n = CMatmulKernel::N;
            let a = filled(n, 1.0);
            let b = filled(n, 2.0);
            let mut c = vec![0.0; n * n];
            calibrate_unit(|| {
                std::hint::black_box(matmul(&a, &b, &mut c, n));
            })
        })
    }

    fn run_units(&self, units: u64) -> f64 {
        let n = self.n;
        let a = filled(n, 1.0);
        let b = filled(n, 2.0);
        let mut c = vec![0.0; n * n];
        let mut acc = 0.0;
        for _ in 0..units {
            acc += matmul(&a, &b, &mut c, n);
        }
        acc
    }
}

/// A fine-grained integer spin kernel: negligible quantization (unit =
/// 100k iterations), useful for tests and as a user-kernel example.
pub struct SpinKernel;

impl ComputeKernel for SpinKernel {
    fn name(&self) -> &'static str {
        "spin"
    }

    fn class(&self) -> KernelClass {
        KernelClass::AsmMatmul
    }

    fn unit_cycles(&self) -> u64 {
        100_000
    }

    fn run_units(&self, units: u64) -> f64 {
        spin_cycles(units * self.unit_cycles()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_have_distinct_footprints() {
        // In-cache: 3 × 24² × 8 B ≈ 14 KiB; out-of-cache: 3 × 256² ×
        // 8 B ≈ 1.5 MiB.
        let small = 3 * InCacheAsmKernel::N * InCacheAsmKernel::N * 8;
        let large = 3 * CMatmulKernel::N * CMatmulKernel::N * 8;
        assert!(small < 32 * 1024, "fits L1: {small}");
        assert!(large > 1024 * 1024, "exceeds L2: {large}");
    }

    #[test]
    fn execute_cycles_meets_or_exceeds_budget() {
        let k = SpinKernel;
        let run = k.execute_cycles(1_234_567);
        assert!(run.consumed_cycles >= run.directed_cycles);
        // Overshoot bounded by one unit.
        assert!(run.consumed_cycles - run.directed_cycles < k.unit_cycles());
        assert_eq!(run.units, 13);
    }

    #[test]
    fn zero_budget_is_free() {
        let run = SpinKernel.execute_cycles(0);
        assert_eq!(run.units, 0);
        assert_eq!(run.consumed_cycles, 0);
    }

    #[test]
    fn overshoot_fraction_shrinks_with_budget() {
        let k = SpinKernel;
        let err = |d: u64| {
            let r = k.execute_cycles(d);
            r.consumed_cycles as f64 / d as f64 - 1.0
        };
        assert!(err(150_000) > err(15_000_000));
    }

    #[test]
    fn matmul_kernels_calibrate_and_run() {
        for k in [
            &InCacheAsmKernel::new() as &dyn ComputeKernel,
            &CMatmulKernel::new(),
        ] {
            let unit = k.unit_cycles();
            assert!(
                unit > 1000,
                "{}: unit {unit} too small to be real",
                k.name()
            );
            let run = k.execute_cycles(unit * 2);
            assert_eq!(run.units, 2);
            assert!(run.elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn incache_kernel_is_faster_per_flop() {
        // The same number of *FLOPs* takes less wall time in cache.
        // One unit of ASM = REPS × 2×24³ flops; one unit of C = 2×256³.
        let asm = InCacheAsmKernel::new();
        let c = CMatmulKernel::new();
        let asm_flops_per_unit = REPS_PER_UNIT as f64 * 2.0 * 24f64.powi(3);
        let c_flops_per_unit = 2.0 * 256f64.powi(3);
        // Wall seconds per flop ~ unit_cycles / flops_per_unit.
        let asm_cost = asm.unit_cycles() as f64 / asm_flops_per_unit;
        let c_cost = c.unit_cycles() as f64 / c_flops_per_unit;
        assert!(asm_cost > 0.0 && c_cost > 0.0);
        // The cache advantage only exists in optimized builds: debug
        // code is dominated by bounds checks and uninlined indexing,
        // which cost both kernels the same.
        #[cfg(not(debug_assertions))]
        assert!(
            asm_cost < c_cost,
            "in-cache flops must be cheaper: {asm_cost} vs {c_cost}"
        );
    }

    #[test]
    fn parallel_execution_covers_all_units() {
        let k = SpinKernel;
        let run = k.execute_cycles_parallel(1_000_000, 4);
        assert_eq!(run.units, 10);
        assert_eq!(run.consumed_cycles, 1_000_000);
        // One thread degenerates to serial.
        let serial = k.execute_cycles_parallel(1_000_000, 1);
        assert_eq!(serial.units, run.units);
    }

    #[test]
    fn consume_reports_atom_fields() {
        let rep = SpinKernel.consume(500_000);
        assert_eq!(rep.operations, 5);
        assert_eq!(rep.cycles_consumed, 500_000);
        assert_eq!(rep.bytes_processed, 0);
    }

    #[test]
    fn kernel_classes_map_to_sim_model() {
        assert_eq!(InCacheAsmKernel::new().class(), KernelClass::AsmMatmul);
        assert_eq!(CMatmulKernel::new().class(), KernelClass::CMatmul);
    }

    #[test]
    fn matmul_is_deterministic() {
        let a = filled(8, 1.0);
        let b = filled(8, 2.0);
        let mut c1 = vec![0.0; 64];
        let mut c2 = vec![0.0; 64];
        let r1 = matmul(&a, &b, &mut c1, 8);
        let r2 = matmul(&a, &b, &mut c2, 8);
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(c1, c2);
    }
}
