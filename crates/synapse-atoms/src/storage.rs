//! The storage atom: file read/write with tunable block sizes and
//! target filesystem (§4.2, E.5).
//!
//! "The I/O can be emulated toward any available filesystem, any
//! number of files, and any combination of I/O granularity for those
//! files." The atom owns a scratch file in a configurable directory
//! (pointing it at a different mount emulates a different filesystem),
//! writes append in `write_block`-sized calls, reads stream from the
//! start in `read_block`-sized calls, wrapping around as needed.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::atom::AtomReport;

/// Default I/O block size (1 MiB — the paper's "large blocks where
/// possible" default assumption).
pub const DEFAULT_IO_BLOCK: u64 = 1 << 20;

/// The storage emulation atom.
pub struct StorageAtom {
    path: PathBuf,
    write_block: u64,
    read_block: u64,
    /// Rewind point: written bytes wrap at this size so long
    /// emulations do not fill the disk.
    max_file_bytes: u64,
    written_total: u64,
    read_total: u64,
}

impl StorageAtom {
    /// Atom writing to a scratch file in `dir` with default blocks and
    /// a 256 MiB file-size cap.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_config(dir, DEFAULT_IO_BLOCK, DEFAULT_IO_BLOCK, 256 << 20)
    }

    /// Fully configured atom.
    pub fn with_config(
        dir: impl AsRef<Path>,
        write_block: u64,
        read_block: u64,
        max_file_bytes: u64,
    ) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("synapse-storage-{}.dat", std::process::id()));
        Ok(StorageAtom {
            path,
            write_block: write_block.max(1),
            read_block: read_block.max(1),
            max_file_bytes: max_file_bytes.max(1 << 20),
            written_total: 0,
            read_total: 0,
        })
    }

    /// Configured write block size.
    pub fn write_block(&self) -> u64 {
        self.write_block
    }

    /// Configured read block size.
    pub fn read_block(&self) -> u64 {
        self.read_block
    }

    /// Scratch file path (for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes written over the atom's lifetime.
    pub fn written_total(&self) -> u64 {
        self.written_total
    }

    /// Total bytes read over the atom's lifetime.
    pub fn read_total(&self) -> u64 {
        self.read_total
    }

    /// Write `bytes` to the scratch file in write-block-sized calls.
    pub fn write(&mut self, bytes: u64) -> std::io::Result<AtomReport> {
        if bytes == 0 {
            return Ok(AtomReport::default());
        }
        let start = Instant::now();
        let block = self.write_block as usize;
        let buf = vec![0x5au8; block];
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&self.path)?;
        let mut pos = f.metadata()?.len() % self.max_file_bytes;
        f.seek(SeekFrom::Start(pos))?;
        let mut remaining = bytes;
        let mut ops = 0u64;
        while remaining > 0 {
            let n = remaining.min(block as u64) as usize;
            f.write_all(&buf[..n])?;
            pos += n as u64;
            if pos >= self.max_file_bytes {
                f.seek(SeekFrom::Start(0))?;
                pos = 0;
            }
            ops += 1;
            remaining -= n as u64;
        }
        f.flush()?;
        self.written_total += bytes;
        Ok(AtomReport {
            cycles_consumed: 0,
            bytes_processed: bytes,
            operations: ops,
            elapsed: start.elapsed(),
        })
    }

    /// Read `bytes` from the scratch file in read-block-sized calls,
    /// wrapping to the start as needed. The file is grown first if it
    /// cannot satisfy a single wrap (reads before any write).
    pub fn read(&mut self, bytes: u64) -> std::io::Result<AtomReport> {
        if bytes == 0 {
            return Ok(AtomReport::default());
        }
        // Ensure there is something to read.
        let existing = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if existing < self.read_block {
            let grow = self.read_block.max(1 << 20).min(self.max_file_bytes);
            self.write(grow)?;
        }
        let start = Instant::now();
        let block = self.read_block as usize;
        let mut buf = vec![0u8; block];
        let mut f = File::open(&self.path)?;
        let mut remaining = bytes;
        let mut ops = 0u64;
        while remaining > 0 {
            let want = remaining.min(block as u64) as usize;
            let n = f.read(&mut buf[..want])?;
            if n == 0 {
                f.seek(SeekFrom::Start(0))?;
                continue;
            }
            ops += 1;
            remaining -= n as u64;
        }
        self.read_total += bytes;
        Ok(AtomReport {
            cycles_consumed: 0,
            bytes_processed: bytes,
            operations: ops,
            elapsed: start.elapsed(),
        })
    }

    /// One sample's worth of storage activity (reads then writes, both
    /// optional).
    pub fn consume(&mut self, bytes_read: u64, bytes_written: u64) -> std::io::Result<AtomReport> {
        let mut rep = self.read(bytes_read)?;
        rep.accumulate(&self.write(bytes_written)?);
        Ok(rep)
    }

    /// Remove the scratch file (end of emulation).
    pub fn cleanup(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for StorageAtom {
    fn drop(&mut self) {
        self.cleanup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("synapse-storage-test-{tag}"));
        let _ = std::fs::create_dir_all(&d);
        d
    }

    #[test]
    fn write_produces_bytes_and_ops() {
        let mut a = StorageAtom::with_config(dir("w"), 4096, 4096, 1 << 24).unwrap();
        let rep = a.write(10_000).unwrap();
        assert_eq!(rep.bytes_processed, 10_000);
        assert_eq!(rep.operations, 3); // 4096+4096+1808
        assert!(a.path().exists());
        assert_eq!(a.written_total(), 10_000);
    }

    #[test]
    fn read_streams_with_wraparound() {
        let mut a = StorageAtom::with_config(dir("r"), 1 << 16, 8192, 1 << 24).unwrap();
        a.write(20_000).unwrap();
        // Read more than the file holds: must wrap, not hang.
        let rep = a.read(100_000).unwrap();
        assert_eq!(rep.bytes_processed, 100_000);
        assert!(rep.operations >= 13);
    }

    #[test]
    fn read_before_write_materializes_data() {
        let mut a = StorageAtom::with_config(dir("rbw"), 4096, 4096, 1 << 24).unwrap();
        let rep = a.read(8192).unwrap();
        assert_eq!(rep.bytes_processed, 8192);
    }

    #[test]
    fn file_size_capped_by_wraparound() {
        let cap = 1 << 20;
        let mut a = StorageAtom::with_config(dir("cap"), 1 << 16, 1 << 16, cap).unwrap();
        a.write(5 * cap).unwrap();
        let size = std::fs::metadata(a.path()).unwrap().len();
        assert!(size <= cap, "file {size} exceeds cap {cap}");
        assert_eq!(a.written_total(), 5 * cap);
    }

    #[test]
    fn consume_combines_read_and_write() {
        let mut a = StorageAtom::new(dir("c")).unwrap();
        let rep = a.consume(4096, 8192).unwrap();
        assert_eq!(rep.bytes_processed, 4096 + 8192);
        assert_eq!(a.read_total(), 4096);
        assert_eq!(a.written_total(), 8192 + a.read_block().max(1 << 20));
    }

    #[test]
    fn zero_requests_are_noops() {
        let mut a = StorageAtom::new(dir("z")).unwrap();
        let rep = a.consume(0, 0).unwrap();
        assert_eq!(rep.bytes_processed, 0);
        assert_eq!(rep.operations, 0);
    }

    #[test]
    fn smaller_blocks_mean_more_operations() {
        let mut small = StorageAtom::with_config(dir("bs1"), 1024, 1024, 1 << 24).unwrap();
        let mut large = StorageAtom::with_config(dir("bs2"), 1 << 20, 1 << 20, 1 << 24).unwrap();
        let bytes = 1 << 20;
        let rs = small.write(bytes).unwrap();
        let rl = large.write(bytes).unwrap();
        assert_eq!(rs.operations, 1024);
        assert_eq!(rl.operations, 1);
    }

    #[test]
    fn cleanup_removes_scratch() {
        let mut a = StorageAtom::new(dir("clean")).unwrap();
        a.write(1024).unwrap();
        let p = a.path().to_path_buf();
        a.cleanup();
        assert!(!p.exists());
    }
}
