//! Error type for the counter layer.

use std::fmt;

/// Errors opening or reading hardware counters.
#[derive(Debug)]
pub enum PerfError {
    /// The kernel denied `perf_event_open` (paranoid level, seccomp,
    /// missing PMU). The caller should fall back to the calibrated
    /// model.
    NotPermitted(i32),
    /// A syscall failed for another reason.
    Sys {
        /// The call that failed.
        call: &'static str,
        /// errno value.
        errno: i32,
    },
    /// Reading a counter returned a short or malformed value.
    BadRead(String),
    /// The target process vanished.
    ProcessGone(i32),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::NotPermitted(errno) => {
                write!(f, "perf_event_open not permitted (errno {errno})")
            }
            PerfError::Sys { call, errno } => write!(f, "{call} failed with errno {errno}"),
            PerfError::BadRead(what) => write!(f, "bad counter read: {what}"),
            PerfError::ProcessGone(pid) => write!(f, "process {pid} is gone"),
        }
    }
}

impl std::error::Error for PerfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PerfError::NotPermitted(1).to_string().contains("permitted"));
        assert!(PerfError::Sys {
            call: "read",
            errno: 9
        }
        .to_string()
        .contains("read"));
        assert!(PerfError::BadRead("short".into())
            .to_string()
            .contains("short"));
        assert!(PerfError::ProcessGone(5).to_string().contains('5'));
    }
}
