//! Backend-independent counter interface and runtime selection.

use crate::calibrated::CalibratedProvider;
use crate::error::PerfError;
use crate::event::CounterSnapshot;
use crate::perf::{perf_available, PerfProvider};

/// A live counter session attached to one process. Snapshots are
/// cumulative since attach; callers difference consecutive snapshots
/// into per-sample deltas with [`CounterSnapshot::delta_since`].
pub trait CounterSession: Send {
    /// Read the cumulative counters.
    fn snapshot(&mut self) -> Result<CounterSnapshot, PerfError>;
}

/// A counter backend.
pub trait CounterProvider: Send + Sync {
    /// Backend name, recorded in profiles for provenance.
    fn name(&self) -> &'static str;

    /// Attach to a process (pid 0 = the calling process).
    fn attach(&self, pid: i32) -> Result<Box<dyn CounterSession>, PerfError>;
}

/// Pick the best available backend: real hardware counters when the
/// kernel permits them, the calibrated model otherwise. This is the
/// "profile once, emulate anywhere" enabling decision — profiling code
/// never needs to care which backend is active.
pub fn default_provider() -> Box<dyn CounterProvider> {
    if perf_available() {
        Box::new(PerfProvider)
    } else {
        Box::new(CalibratedProvider::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_provider_attaches_to_self() {
        let provider = default_provider();
        assert!(!provider.name().is_empty());
        let mut session = provider.attach(0).expect("attach to self");
        let snap = session.snapshot().expect("snapshot");
        // Counters are cumulative and non-negative by type; a second
        // snapshot never goes backwards.
        let snap2 = session.snapshot().expect("snapshot2");
        assert!(snap2.cycles >= snap.cycles || snap.cycles == 0);
    }

    #[test]
    fn default_provider_is_deterministic_choice() {
        let a = default_provider().name();
        let b = default_provider().name();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod tid_tests {
    use super::*;

    #[test]
    fn attach_to_own_tid_counts_this_thread() {
        let provider = default_provider();
        // SAFETY: gettid takes no arguments and cannot fail.
        let tid = unsafe { libc::syscall(libc::SYS_gettid) } as i32;
        let mut s = provider.attach(tid).expect("attach to own tid");
        let mut acc = 1u64;
        for i in 1..50_000_000u64 {
            acc = acc.wrapping_mul(i).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let snap = s.snapshot().expect("snapshot");
        assert!(
            snap.cycles > 0,
            "provider {} must count this thread's burn",
            provider.name()
        );
    }
}
