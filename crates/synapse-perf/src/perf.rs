//! Direct `perf_event_open(2)` counter sessions.
//!
//! This is the native equivalent of wrapping `perf stat`: one fd per
//! hardware event, attached to the observed pid, read on demand. The
//! counters are opened with `inherit` so threads spawned by the
//! observed process are included — matching `perf stat`'s default
//! process-tree accounting.

use std::io;

use crate::error::PerfError;
use crate::event::{CounterSnapshot, HardwareEvent};
use crate::provider::{CounterProvider, CounterSession};

// ioctl request values from include/uapi/linux/perf_event.h.
const PERF_EVENT_IOC_ENABLE: libc::c_ulong = 0x2400;
const PERF_EVENT_IOC_DISABLE: libc::c_ulong = 0x2401;
const PERF_EVENT_IOC_RESET: libc::c_ulong = 0x2403;
const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_FLAG_FD_CLOEXEC: libc::c_ulong = 1 << 3;

// perf_event_attr flag bits (the bitfield word after read_format).
const ATTR_DISABLED: u64 = 1 << 0;
const ATTR_INHERIT: u64 = 1 << 1;
const ATTR_EXCLUDE_KERNEL: u64 = 1 << 5;
const ATTR_EXCLUDE_HV: u64 = 1 << 6;

/// `struct perf_event_attr` from include/uapi/linux/perf_event.h,
/// defined locally because this environment's libc does not ship the
/// binding. Field layout follows the kernel ABI; the flags bitfield is
/// a single u64 word.
#[repr(C)]
#[derive(Clone, Copy)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup: u32,
    bp_type: u32,
    config1: u64,
    config2: u64,
    branch_sample_type: u64,
    sample_regs_user: u64,
    sample_stack_user: u32,
    clockid: i32,
    sample_regs_intr: u64,
    aux_watermark: u32,
    sample_max_stack: u16,
    reserved_2: u16,
    aux_sample_size: u32,
    reserved_3: u32,
}

/// A single opened hardware counter (one fd).
struct Counter {
    fd: libc::c_int,
    event: HardwareEvent,
}

impl Counter {
    /// Open a counter for `event` on `pid` (any CPU), disabled,
    /// inherited by children threads.
    fn open(event: HardwareEvent, pid: i32) -> Result<Counter, PerfError> {
        // SAFETY: PerfEventAttr is a plain-data repr(C) struct for
        // which all-zero bytes are a valid (default) value.
        let mut attr: PerfEventAttr = unsafe { std::mem::zeroed() };
        attr.type_ = PERF_TYPE_HARDWARE;
        attr.size = std::mem::size_of::<PerfEventAttr>() as u32;
        attr.config = event.perf_config();
        attr.flags = ATTR_DISABLED | ATTR_INHERIT | ATTR_EXCLUDE_KERNEL | ATTR_EXCLUDE_HV;
        // SAFETY: attr is a valid perf_event_attr; remaining args follow
        // the syscall ABI (pid, cpu = -1 -> any, group_fd = -1, flags).
        let fd = unsafe {
            libc::syscall(
                libc::SYS_perf_event_open,
                &attr as *const PerfEventAttr,
                pid as libc::pid_t,
                -1 as libc::c_int,
                -1 as libc::c_int,
                PERF_FLAG_FD_CLOEXEC,
            )
        } as libc::c_int;
        if fd < 0 {
            let errno = io::Error::last_os_error().raw_os_error().unwrap_or(0);
            return Err(match errno {
                libc::EACCES | libc::EPERM => PerfError::NotPermitted(errno),
                libc::ESRCH => PerfError::ProcessGone(pid),
                _ => PerfError::Sys {
                    call: "perf_event_open",
                    errno,
                },
            });
        }
        Ok(Counter { fd, event })
    }

    fn ioctl(&self, request: libc::c_ulong) -> Result<(), PerfError> {
        // SAFETY: fd is a live perf event fd; request is a valid
        // perf ioctl without an argument.
        let rc = unsafe { libc::ioctl(self.fd, request, 0) };
        if rc != 0 {
            return Err(PerfError::Sys {
                call: "ioctl(perf)",
                errno: io::Error::last_os_error().raw_os_error().unwrap_or(0),
            });
        }
        Ok(())
    }

    fn read(&self) -> Result<u64, PerfError> {
        let mut value: u64 = 0;
        // SAFETY: value is 8 writable bytes; perf counter reads return
        // a u64 for non-grouped counters.
        let n = unsafe {
            libc::read(
                self.fd,
                &mut value as *mut u64 as *mut libc::c_void,
                std::mem::size_of::<u64>(),
            )
        };
        if n != std::mem::size_of::<u64>() as isize {
            return Err(PerfError::BadRead(format!(
                "{}: read returned {n}",
                self.event.name()
            )));
        }
        Ok(value)
    }
}

impl Drop for Counter {
    fn drop(&mut self) {
        // SAFETY: fd was returned by perf_event_open and not closed.
        unsafe {
            libc::close(self.fd);
        }
    }
}

/// A live counter group observing one process.
pub struct PerfSession {
    counters: Vec<Counter>,
}

impl PerfSession {
    /// Open the four Table 1 hardware events on `pid` and enable them.
    ///
    /// Stalled-cycle events are optional: some PMUs (and most VMs) do
    /// not expose them; those counters then read as zero, which the
    /// paper's efficiency metric tolerates.
    pub fn attach(pid: i32) -> Result<PerfSession, PerfError> {
        let mut counters = Vec::new();
        for event in HardwareEvent::ALL {
            match Counter::open(event, pid) {
                Ok(c) => counters.push(c),
                Err(PerfError::NotPermitted(e)) => return Err(PerfError::NotPermitted(e)),
                Err(_e)
                    if matches!(
                        event,
                        HardwareEvent::StalledFrontend | HardwareEvent::StalledBackend
                    ) =>
                {
                    // Optional event unsupported on this PMU: skip.
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        if counters.is_empty() {
            return Err(PerfError::Sys {
                call: "perf_event_open",
                errno: libc::ENOENT,
            });
        }
        for c in &counters {
            c.ioctl(PERF_EVENT_IOC_RESET)?;
            c.ioctl(PERF_EVENT_IOC_ENABLE)?;
        }
        Ok(PerfSession { counters })
    }

    /// Stop counting (used at post-processing time).
    pub fn disable(&self) -> Result<(), PerfError> {
        for c in &self.counters {
            c.ioctl(PERF_EVENT_IOC_DISABLE)?;
        }
        Ok(())
    }
}

impl CounterSession for PerfSession {
    fn snapshot(&mut self) -> Result<CounterSnapshot, PerfError> {
        let mut snap = CounterSnapshot::default();
        for c in &self.counters {
            let v = c.read()?;
            match c.event {
                HardwareEvent::Cycles => snap.cycles = v,
                HardwareEvent::Instructions => snap.instructions = v,
                HardwareEvent::StalledFrontend => snap.stalled_frontend = v,
                HardwareEvent::StalledBackend => snap.stalled_backend = v,
            }
        }
        Ok(snap)
    }
}

/// The perf-backed provider.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfProvider;

impl CounterProvider for PerfProvider {
    fn name(&self) -> &'static str {
        "perf_event"
    }

    fn attach(&self, pid: i32) -> Result<Box<dyn CounterSession>, PerfError> {
        Ok(Box::new(PerfSession::attach(pid)?))
    }
}

/// Whether `perf_event_open` works here (probed by opening a cycles
/// counter on the current process).
pub fn perf_available() -> bool {
    PerfSession::attach(0).is_ok() // pid 0 = calling process
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burn CPU so counters have something to count.
    fn burn() -> u64 {
        let mut acc = 1u64;
        for i in 1..2_000_000u64 {
            acc = acc.wrapping_mul(i).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn attach_probes_cleanly() {
        // Either perf works here or it reports NotPermitted/Sys —
        // never a panic or a hang.
        match PerfSession::attach(0) {
            Ok(mut s) => {
                std::hint::black_box(burn());
                let snap = s.snapshot().unwrap();
                assert!(snap.cycles > 0, "cycles counted");
                assert!(snap.instructions > 0, "instructions counted");
                s.disable().unwrap();
            }
            Err(PerfError::NotPermitted(_)) | Err(PerfError::Sys { .. }) => {
                // Expected inside restricted containers.
            }
            Err(other) => panic!("unexpected attach error: {other}"),
        }
    }

    #[test]
    fn counters_grow_monotonically_when_available() {
        if !perf_available() {
            return; // substitution documented; calibrated tests cover this path
        }
        let mut s = PerfSession::attach(0).unwrap();
        std::hint::black_box(burn());
        let a = s.snapshot().unwrap();
        std::hint::black_box(burn());
        let b = s.snapshot().unwrap();
        assert!(b.cycles >= a.cycles);
        assert!(b.instructions > a.instructions);
    }

    #[test]
    fn provider_name() {
        assert_eq!(PerfProvider.name(), "perf_event");
    }

    #[test]
    fn attach_to_absent_process_fails() {
        if !perf_available() {
            return;
        }
        // A pid that cannot exist.
        let r = PerfSession::attach(i32::MAX - 1);
        assert!(r.is_err());
    }
}
