//! Calibrated counter model: the documented substitution for hosts
//! where `perf_event_open` is denied.
//!
//! Cycles are modelled from the observed CPU time of the target
//! process (`/proc/<pid>/stat` utime+stime) multiplied by a calibrated
//! effective frequency; instructions follow from a configurable IPC;
//! stalls follow from a configurable efficiency, using the paper's own
//! definition `efficiency = cycles_used / (cycles_used +
//! cycles_stalled)` solved for the stall count.

use std::fs;

use crate::calibration::calibrate_frequency;
use crate::error::PerfError;
use crate::event::CounterSnapshot;
use crate::provider::{CounterProvider, CounterSession};

/// Parameters of the counter model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterModel {
    /// Effective clock frequency in Hz. `None` means "calibrate at
    /// attach time".
    pub frequency_hz: Option<f64>,
    /// Modelled instructions per cycle (the paper measures ~2.0–2.2
    /// for Gromacs; kernels differ, see E.3).
    pub ipc: f64,
    /// Modelled efficiency (used/spent cycles); determines stalls.
    pub efficiency: f64,
    /// Fraction of stalled cycles attributed to the frontend (the rest
    /// go to the backend; compute codes are typically backend-bound).
    pub frontend_fraction: f64,
}

impl Default for CounterModel {
    fn default() -> Self {
        CounterModel {
            frequency_hz: None,
            ipc: 2.0,
            efficiency: 0.85,
            frontend_fraction: 0.25,
        }
    }
}

impl CounterModel {
    /// Derive a snapshot from an amount of consumed CPU seconds.
    pub fn snapshot_for_cpu_seconds(&self, cpu_seconds: f64, frequency_hz: f64) -> CounterSnapshot {
        let cycles = (cpu_seconds.max(0.0) * frequency_hz) as u64;
        let instructions = (cycles as f64 * self.ipc) as u64;
        // efficiency = cycles / (cycles + stalled)  =>
        // stalled = cycles * (1 - eff) / eff
        let eff = self.efficiency.clamp(1e-6, 1.0);
        let stalled = (cycles as f64 * (1.0 - eff) / eff) as u64;
        let stalled_frontend = (stalled as f64 * self.frontend_fraction.clamp(0.0, 1.0)) as u64;
        CounterSnapshot {
            cycles,
            instructions,
            stalled_frontend,
            stalled_backend: stalled - stalled_frontend,
        }
    }
}

/// CPU seconds consumed so far by `pid` (utime+stime from
/// `/proc/<pid>/stat`; pid 0 means the calling process).
fn cpu_seconds_of(pid: i32) -> Result<f64, PerfError> {
    let path = if pid == 0 {
        "/proc/self/stat".to_string()
    } else {
        format!("/proc/{pid}/stat")
    };
    let content = fs::read_to_string(&path).map_err(|_| PerfError::ProcessGone(pid))?;
    // Fields after the last ')' — see procfs(5); utime and stime are
    // the 12th and 13th fields after the comm.
    let close = content
        .rfind(')')
        .ok_or_else(|| PerfError::BadRead("stat without comm".into()))?;
    let rest: Vec<&str> = content[close + 1..].split_whitespace().collect();
    if rest.len() < 13 {
        return Err(PerfError::BadRead(format!(
            "stat too short: {} fields",
            rest.len()
        )));
    }
    let utime: u64 = rest[11]
        .parse()
        .map_err(|e| PerfError::BadRead(format!("utime: {e}")))?;
    let stime: u64 = rest[12]
        .parse()
        .map_err(|e| PerfError::BadRead(format!("stime: {e}")))?;
    // SAFETY: sysconf takes no pointers and has no preconditions.
    let hz = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    let hz = if hz <= 0 { 100.0 } else { hz as f64 };
    Ok((utime + stime) as f64 / hz)
}

/// A calibrated-model session observing one process.
pub struct CalibratedSession {
    pid: i32,
    model: CounterModel,
    frequency_hz: f64,
    baseline_cpu: f64,
    /// Last CPU reading, kept so a vanished process still yields the
    /// final snapshot instead of an error mid-teardown.
    last_cpu: f64,
}

impl CounterSession for CalibratedSession {
    fn snapshot(&mut self) -> Result<CounterSnapshot, PerfError> {
        match cpu_seconds_of(self.pid) {
            Ok(cpu) => {
                self.last_cpu = cpu;
                Ok(self
                    .model
                    .snapshot_for_cpu_seconds(cpu - self.baseline_cpu, self.frequency_hz))
            }
            Err(PerfError::ProcessGone(_)) => Ok(self
                .model
                .snapshot_for_cpu_seconds(self.last_cpu - self.baseline_cpu, self.frequency_hz)),
            Err(e) => Err(e),
        }
    }
}

/// The calibrated-model provider.
#[derive(Debug, Clone, Copy)]
pub struct CalibratedProvider {
    model: CounterModel,
}

impl CalibratedProvider {
    /// Provider with the default model (calibrating frequency lazily).
    pub fn new() -> Self {
        CalibratedProvider {
            model: CounterModel::default(),
        }
    }

    /// Provider with a custom model.
    pub fn with_model(model: CounterModel) -> Self {
        CalibratedProvider { model }
    }

    /// The configured model.
    pub fn model(&self) -> CounterModel {
        self.model
    }
}

impl Default for CalibratedProvider {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterProvider for CalibratedProvider {
    fn name(&self) -> &'static str {
        "calibrated-model"
    }

    fn attach(&self, pid: i32) -> Result<Box<dyn CounterSession>, PerfError> {
        let frequency_hz = self.model.frequency_hz.unwrap_or_else(calibrate_frequency);
        let baseline_cpu = cpu_seconds_of(pid)?;
        Ok(Box::new(CalibratedSession {
            pid,
            model: self.model,
            frequency_hz,
            baseline_cpu,
            last_cpu: baseline_cpu,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::spin_cycles;

    #[test]
    fn model_snapshot_arithmetic() {
        let m = CounterModel {
            frequency_hz: Some(1e9),
            ipc: 2.0,
            efficiency: 0.8,
            frontend_fraction: 0.25,
        };
        let s = m.snapshot_for_cpu_seconds(2.0, 1e9);
        assert_eq!(s.cycles, 2_000_000_000);
        assert_eq!(s.instructions, 4_000_000_000);
        // stalled = cycles * 0.25/1 -> eff = c/(c+s) = 0.8
        let eff = s.cycles as f64 / (s.cycles + s.stalled_frontend + s.stalled_backend) as f64;
        assert!((eff - 0.8).abs() < 1e-6);
        // frontend fraction
        let total_stall = s.stalled_frontend + s.stalled_backend;
        assert!((s.stalled_frontend as f64 / total_stall as f64 - 0.25).abs() < 1e-6);
    }

    #[test]
    fn negative_cpu_clamps_to_zero() {
        let m = CounterModel::default();
        let s = m.snapshot_for_cpu_seconds(-1.0, 1e9);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.instructions, 0);
    }

    #[test]
    fn session_observes_own_cpu_burn() {
        let provider = CalibratedProvider::with_model(CounterModel {
            frequency_hz: Some(1e9), // skip calibration in tests
            ..CounterModel::default()
        });
        let mut session = provider.attach(0).unwrap();
        let before = session.snapshot().unwrap();
        // Burn a measurable amount of CPU (~50ms at any realistic clock).
        std::hint::black_box(spin_cycles(60_000_000));
        let after = session.snapshot().unwrap();
        assert!(
            after.cycles > before.cycles,
            "cycles should grow: {} -> {}",
            before.cycles,
            after.cycles
        );
        assert!(
            after.instructions >= after.cycles,
            "ipc >= 1 in default model"
        );
    }

    #[test]
    fn attach_to_missing_pid_fails() {
        let provider = CalibratedProvider::new();
        assert!(provider.attach(i32::MAX - 2).is_err());
    }

    #[test]
    fn cpu_seconds_of_self_is_nonnegative_and_growing() {
        let a = cpu_seconds_of(0).unwrap();
        std::hint::black_box(spin_cycles(20_000_000));
        let b = cpu_seconds_of(0).unwrap();
        assert!(b >= a);
    }

    #[test]
    fn provider_name_and_model_access() {
        let p = CalibratedProvider::new();
        assert_eq!(p.name(), "calibrated-model");
        assert_eq!(p.model().ipc, 2.0);
    }
}
