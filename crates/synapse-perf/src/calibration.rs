//! Frequency calibration for the counter fallback model and for the
//! compute atoms' cycle budgeting.
//!
//! A tight integer spin loop executes a known number of iterations;
//! timing it yields an *effective* frequency in "loop cycles" per
//! second. On a superscalar CPU one loop iteration is close to one
//! cycle (the loop is a dependent chain), so the calibrated value
//! approximates the sustained clock rate — which is all the fallback
//! model and the cycle-budgeted kernels need.

use std::sync::OnceLock;
use std::time::Instant;

/// Execute a dependent-chain spin of `n` iterations and return a value
/// that defeats constant folding. Roughly one cycle per iteration on
/// modern cores.
#[inline(never)]
pub fn spin_cycles(n: u64) -> u64 {
    let mut acc: u64 = 0x9e3779b97f4a7c15;
    let mut i = 0u64;
    while i < n {
        // A single-dependency chain: each iteration needs the previous
        // result, preventing instruction-level parallelism from
        // collapsing many iterations into one cycle.
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        i += 1;
    }
    acc
}

/// Measure the spin-loop rate in iterations/second over roughly
/// `sample_ms` milliseconds.
pub fn measure_spin_rate(sample_ms: u64) -> f64 {
    // Warm up scheduling and caches.
    std::hint::black_box(spin_cycles(100_000));
    let mut iters: u64 = 1_000_000;
    loop {
        let start = Instant::now();
        std::hint::black_box(spin_cycles(iters));
        let dt = start.elapsed();
        if dt.as_millis() as u64 >= sample_ms {
            return iters as f64 / dt.as_secs_f64();
        }
        iters = iters.saturating_mul(2);
    }
}

/// Calibrated effective frequency in Hz (cached after first call).
///
/// The spin loop's iteration latency is ~1 cycle (multiply-add
/// dependent chain has latency ≈ the multiplier latency, typically 3
/// cycles fused to ~1 effective on wide cores; we accept that factor —
/// what matters is *consistency*: the same constant converts cycles to
/// iterations in the kernels and iterations to cycles in the model).
pub fn calibrate_frequency() -> f64 {
    static FREQ: OnceLock<f64> = OnceLock::new();
    *FREQ.get_or_init(|| measure_spin_rate(60))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_does_work_and_differs_by_n() {
        // Different iteration counts must give different results;
        // equal counts equal results (determinism).
        assert_eq!(spin_cycles(1000), spin_cycles(1000));
        assert_ne!(spin_cycles(1000), spin_cycles(1001));
        assert_ne!(spin_cycles(0), spin_cycles(1));
    }

    #[test]
    fn measured_rate_is_plausible() {
        let rate = measure_spin_rate(30);
        // Between 10 MHz (absurdly slow VM) and 100 GHz (impossible).
        assert!(rate > 1e7, "rate {rate} too slow");
        assert!(rate < 1e11, "rate {rate} impossibly fast");
    }

    #[test]
    fn calibration_is_cached_and_stable() {
        let a = calibrate_frequency();
        let b = calibrate_frequency();
        assert_eq!(a, b, "OnceLock must cache");
        assert!(a > 0.0);
    }

    #[test]
    fn spin_scales_roughly_linearly() {
        use std::time::Instant;
        std::hint::black_box(spin_cycles(1_000_000)); // warm-up
        let t1 = Instant::now();
        std::hint::black_box(spin_cycles(4_000_000));
        let d1 = t1.elapsed();
        let t2 = Instant::now();
        std::hint::black_box(spin_cycles(16_000_000));
        let d2 = t2.elapsed();
        let ratio = d2.as_secs_f64() / d1.as_secs_f64().max(1e-9);
        // 4x the work should take 2x..8x the time even on noisy hosts.
        assert!(ratio > 1.5, "ratio {ratio} too flat");
        assert!(ratio < 16.0, "ratio {ratio} too steep");
    }
}
