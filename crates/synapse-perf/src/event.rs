//! Hardware event identifiers and counter snapshots.

/// The hardware events Synapse profiles (the compute rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareEvent {
    /// CPU cycles attributed to the task (`perf stat`'s `cycles`).
    Cycles,
    /// Retired instructions.
    Instructions,
    /// Cycles during which the frontend stalled.
    StalledFrontend,
    /// Cycles during which the backend stalled.
    StalledBackend,
}

impl HardwareEvent {
    /// All events a counter group tracks, in snapshot order.
    pub const ALL: [HardwareEvent; 4] = [
        HardwareEvent::Cycles,
        HardwareEvent::Instructions,
        HardwareEvent::StalledFrontend,
        HardwareEvent::StalledBackend,
    ];

    /// The `perf_event_open` config value for this event
    /// (PERF_COUNT_HW_*).
    pub fn perf_config(self) -> u64 {
        match self {
            // Values from include/uapi/linux/perf_event.h.
            HardwareEvent::Cycles => 0,       // PERF_COUNT_HW_CPU_CYCLES
            HardwareEvent::Instructions => 1, // PERF_COUNT_HW_INSTRUCTIONS
            HardwareEvent::StalledFrontend => 7, // PERF_COUNT_HW_STALLED_CYCLES_FRONTEND
            HardwareEvent::StalledBackend => 8, // PERF_COUNT_HW_STALLED_CYCLES_BACKEND
        }
    }

    /// Human-readable name (matches `perf stat` output naming).
    pub fn name(self) -> &'static str {
        match self {
            HardwareEvent::Cycles => "cycles",
            HardwareEvent::Instructions => "instructions",
            HardwareEvent::StalledFrontend => "stalled-cycles-frontend",
            HardwareEvent::StalledBackend => "stalled-cycles-backend",
        }
    }
}

/// Cumulative counter values since a session was attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Used CPU cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Frontend-stalled cycles.
    pub stalled_frontend: u64,
    /// Backend-stalled cycles.
    pub stalled_backend: u64,
}

impl CounterSnapshot {
    /// Saturating counter-wise difference (`self - earlier`), for
    /// converting cumulative readings into per-sample deltas.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            stalled_frontend: self
                .stalled_frontend
                .saturating_sub(earlier.stalled_frontend),
            stalled_backend: self.stalled_backend.saturating_sub(earlier.stalled_backend),
        }
    }

    /// Instructions per used cycle, `None` when no cycles elapsed.
    pub fn ipc(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.instructions as f64 / self.cycles as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_configs_match_kernel_abi() {
        assert_eq!(HardwareEvent::Cycles.perf_config(), 0);
        assert_eq!(HardwareEvent::Instructions.perf_config(), 1);
        assert_eq!(HardwareEvent::StalledFrontend.perf_config(), 7);
        assert_eq!(HardwareEvent::StalledBackend.perf_config(), 8);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            HardwareEvent::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn snapshot_delta_and_ipc() {
        let a = CounterSnapshot {
            cycles: 100,
            instructions: 250,
            stalled_frontend: 10,
            stalled_backend: 20,
        };
        let b = CounterSnapshot {
            cycles: 300,
            instructions: 650,
            stalled_frontend: 15,
            stalled_backend: 40,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 200);
        assert_eq!(d.instructions, 400);
        assert_eq!(d.stalled_frontend, 5);
        assert_eq!(d.stalled_backend, 20);
        assert!((d.ipc().unwrap() - 2.0).abs() < 1e-12);
        assert!(CounterSnapshot::default().ipc().is_none());
        // Saturating on reset.
        assert_eq!(a.delta_since(&b).cycles, 0);
    }
}
