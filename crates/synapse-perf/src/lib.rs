#![warn(missing_docs)]

//! Hardware performance counters for the Synapse profiler.
//!
//! The paper's CPU watcher wraps `perf stat` to count cycles, retired
//! instructions and stalled (frontend/backend) cycles. This crate
//! provides the same measurements through two backends behind one
//! interface:
//!
//! * [`perf::PerfProvider`] — a direct `perf_event_open(2)` wrapper.
//!   Exactly what `perf stat` uses, with no subprocess. Requires
//!   kernel permission (`perf_event_paranoid`); many containers deny
//!   it.
//! * [`calibrated::CalibratedProvider`] — a documented **substitution**
//!   (see DESIGN.md): when hardware counters are unavailable, cycles
//!   are modelled as `cpu_time × calibrated_frequency` and
//!   instructions as `cycles × ipc`, with the frequency measured by a
//!   timed spin loop at startup. The model preserves the relationships
//!   the paper's experiments rely on (cycles ≈ Tx·f for compute-bound
//!   code; per-kernel IPC differences).
//!
//! [`provider::default_provider`] picks the perf backend when the
//! kernel permits it and falls back to the calibrated model otherwise,
//! so all profiling code runs unchanged on both kinds of hosts.

pub mod calibrated;
pub mod calibration;
pub mod error;
pub mod event;
pub mod perf;
pub mod provider;

pub use calibrated::{CalibratedProvider, CounterModel};
pub use calibration::{calibrate_frequency, spin_cycles};
pub use error::PerfError;
pub use event::{CounterSnapshot, HardwareEvent};
pub use perf::{perf_available, PerfProvider};
pub use provider::{default_provider, CounterProvider, CounterSession};
