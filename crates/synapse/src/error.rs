//! Unified error type for the core crate.

use std::fmt;

/// Errors from profiling or emulation.
#[derive(Debug)]
pub enum SynapseError {
    /// Process introspection failed.
    Proc(synapse_proc::ProcError),
    /// Hardware counter failure.
    Perf(synapse_perf::PerfError),
    /// Data-model validation failure.
    Model(synapse_model::ModelError),
    /// Profile storage failure.
    Store(synapse_store::StoreError),
    /// Filesystem failure during emulation.
    Io(std::io::Error),
    /// The requested profile was not found in the store.
    ProfileNotFound(String),
    /// A watcher thread panicked or misbehaved.
    Watcher {
        /// Which watcher.
        name: &'static str,
        /// What happened.
        reason: String,
    },
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for SynapseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynapseError::Proc(e) => write!(f, "proc: {e}"),
            SynapseError::Perf(e) => write!(f, "perf: {e}"),
            SynapseError::Model(e) => write!(f, "model: {e}"),
            SynapseError::Store(e) => write!(f, "store: {e}"),
            SynapseError::Io(e) => write!(f, "io: {e}"),
            SynapseError::ProfileNotFound(key) => write!(f, "no profile for {key}"),
            SynapseError::Watcher { name, reason } => write!(f, "watcher {name}: {reason}"),
            SynapseError::Config(what) => write!(f, "bad configuration: {what}"),
        }
    }
}

impl std::error::Error for SynapseError {}

impl From<synapse_proc::ProcError> for SynapseError {
    fn from(e: synapse_proc::ProcError) -> Self {
        SynapseError::Proc(e)
    }
}

impl From<synapse_perf::PerfError> for SynapseError {
    fn from(e: synapse_perf::PerfError) -> Self {
        SynapseError::Perf(e)
    }
}

impl From<synapse_model::ModelError> for SynapseError {
    fn from(e: synapse_model::ModelError) -> Self {
        SynapseError::Model(e)
    }
}

impl From<synapse_store::StoreError> for SynapseError {
    fn from(e: synapse_store::StoreError) -> Self {
        SynapseError::Store(e)
    }
}

impl From<std::io::Error> for SynapseError {
    fn from(e: std::io::Error) -> Self {
        SynapseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = SynapseError::ProfileNotFound("cmd#a=1".into());
        assert!(e.to_string().contains("cmd#a=1"));
        let w = SynapseError::Watcher {
            name: "cpu",
            reason: "lost pid".into(),
        };
        assert!(w.to_string().contains("cpu"));
        assert!(SynapseError::Config("rate".into())
            .to_string()
            .contains("rate"));
    }

    #[test]
    fn conversions_from_layers() {
        let e: SynapseError = synapse_model::ModelError::EmptyProfile.into();
        assert!(matches!(e, SynapseError::Model(_)));
        let e: SynapseError = std::io::Error::other("x").into();
        assert!(matches!(e, SynapseError::Io(_)));
    }
}
